//! The rule set: repo-specific invariants L001–L010.
//!
//! L001–L006 are token-pattern checks over the [`FileContext`], one
//! file at a time. L007–L010 are whole-program rules over the
//! [`Program`] view (symbol summaries + call graph); they implement the
//! provenance-completeness proof (L007), deadlock freedom (L008),
//! deadline propagation (L009), and the metric-name registry (L010).
//! See the crate docs for the one-line summaries and DESIGN.md for the
//! full rationale.

use crate::callgraph::{Program, LOCK_PRIMITIVES};
use crate::diag::{Severity, Violation};
use crate::engine::{FileContext, FnInfo};
use crate::symbols::CallFact;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// A single lint rule.
pub trait Rule {
    /// Stable rule id (`L001`…).
    fn id(&self) -> &'static str;
    /// One-line description for `bp-lint rules` and docs.
    fn description(&self) -> &'static str;
    /// Runs the rule over one file.
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation>;
}

/// Every built-in rule, in id order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoRawClock),
        Box::new(NoPanicInLib),
        Box::new(NoLossyCastInCodec),
        Box::new(DeterministicSerialization),
        Box::new(SloGuard),
        Box::new(NoRawLog),
    ]
}

/// A whole-program (interprocedural) rule.
pub trait GlobalRule {
    /// Stable rule id (`L007`…).
    fn id(&self) -> &'static str;
    /// One-line description for `bp-lint rules` and docs.
    fn description(&self) -> &'static str;
    /// Runs the rule over the whole program.
    fn check(&self, prog: &Program) -> Vec<Violation>;
}

/// Every built-in global rule, in id order.
pub fn all_global_rules() -> Vec<Box<dyn GlobalRule>> {
    vec![
        Box::new(WalBeforeMutate),
        Box::new(LockOrder),
        Box::new(DeadlinePropagation),
        Box::new(MetricNameRegistry),
    ]
}

/// Library crates whose non-test code must not abort (L002): the capture
/// and query paths must degrade, not panic.
const LIB_CRATES: [&str; 6] = [
    "crates/core/src/",
    "crates/storage/src/",
    "crates/places/src/",
    "crates/graph/src/",
    "crates/text/src/",
    "crates/query/src/",
];

/// Crates covered by L006: everything built as a library, including the
/// observability and simulator crates. User-facing printing belongs to
/// bp-cli and the bench/lint binaries, which are deliberately absent.
const NO_RAW_LOG_CRATES: [&str; 8] = [
    "crates/core/src/",
    "crates/storage/src/",
    "crates/places/src/",
    "crates/graph/src/",
    "crates/text/src/",
    "crates/query/src/",
    "crates/obs/src/",
    "crates/sim/src/",
];

/// The one sanctioned raw-stderr site: `bp_obs::log`'s own sink (L006).
const RAW_LOG_SINK_FILE: &str = "crates/obs/src/log.rs";

/// Printing macros L006 flags.
const RAW_LOG_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];

/// Files forming the on-disk codec (L003): every byte written here must
/// come from a checked conversion.
const CODEC_FILES: [&str; 5] = [
    "crates/storage/src/varint.rs",
    "crates/storage/src/record.rs",
    "crates/storage/src/wal.rs",
    "crates/storage/src/crc.rs",
    "crates/text/src/index.rs",
];

/// Integer target types whose `as` casts can silently truncate or
/// reinterpret (L003).
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Function-call names that feed bytes to an encoder or WAL frame (L004).
const ENCODE_SINKS: [&str; 8] = [
    "encode",
    "write_u64",
    "write_u32",
    "write_i64",
    "write_str",
    "write_bytes",
    "append",
    "serialize",
];

/// Iterator methods whose order leaks the hasher's state (L004).
const ORDER_LEAKING_ITERS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

// ---------------------------------------------------------------------------
// L001 — no-raw-clock
// ---------------------------------------------------------------------------

/// L001: all monotonic/wall-clock reads go through `bp_obs::clock`.
pub struct NoRawClock;

impl Rule for NoRawClock {
    fn id(&self) -> &'static str {
        "L001"
    }
    fn description(&self) -> &'static str {
        "Instant::now()/SystemTime::now() only inside crates/obs/src/clock.rs; \
         everything else uses bp_obs::clock so tests can mock time"
    }
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation> {
        if ctx.rel_path == "crates/obs/src/clock.rs" {
            return Vec::new();
        }
        let mut out = Vec::new();
        let toks = &ctx.lexed.tokens;
        // Token scans look behind and ahead of `i`; an index loop is the
        // clearer idiom here (same below).
        #[allow(clippy::needless_range_loop)]
        for i in 0..toks.len().saturating_sub(3) {
            let head = ctx.text(i);
            if (head == "Instant" || head == "SystemTime")
                && ctx.is(i + 1, ":")
                && ctx.is(i + 2, ":")
                && ctx.is(i + 3, "now")
                && !ctx.in_test(toks[i].start)
            {
                out.push(ctx.violation(
                    self.id(),
                    i,
                    format!(
                        "raw `{head}::now()` call; route timing through \
                         bp_obs::clock (ClockHandle / unix_time_ms) so tests can mock time"
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L002 — no-panic-in-lib
// ---------------------------------------------------------------------------

/// L002: library crates return errors instead of aborting.
pub struct NoPanicInLib;

impl Rule for NoPanicInLib {
    fn id(&self) -> &'static str {
        "L002"
    }
    fn description(&self) -> &'static str {
        "no unwrap()/expect()/panic!/unreachable! in non-test code of \
         core, storage, places, graph, text, query — degrade, don't abort"
    }
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation> {
        if !LIB_CRATES.iter().any(|p| ctx.rel_path.starts_with(p)) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let toks = &ctx.lexed.tokens;
        #[allow(clippy::needless_range_loop)]
        for i in 0..toks.len() {
            if ctx.in_test(toks[i].start) {
                continue;
            }
            let t = ctx.text(i);
            // `.unwrap(` / `.expect(` method calls.
            if (t == "unwrap" || t == "expect") && i > 0 && ctx.is(i - 1, ".") && ctx.is(i + 1, "(")
            {
                out.push(ctx.violation(
                    self.id(),
                    i,
                    format!(
                        "`.{t}()` in a library crate: capture/query paths must \
                         return an error (or degrade) instead of aborting"
                    ),
                ));
            }
            // panicking macros.
            if matches!(t, "panic" | "unreachable" | "todo" | "unimplemented") && ctx.is(i + 1, "!")
            {
                out.push(ctx.violation(
                    self.id(),
                    i,
                    format!(
                        "`{t}!` in a library crate: capture/query paths must \
                         return an error (or degrade) instead of aborting"
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L003 — no-lossy-cast-in-codec
// ---------------------------------------------------------------------------

/// L003: the codec files use checked conversions, never `as`.
pub struct NoLossyCastInCodec;

impl Rule for NoLossyCastInCodec {
    fn id(&self) -> &'static str {
        "L003"
    }
    fn description(&self) -> &'static str {
        "no integer `as` casts in storage/{varint,record,wal,crc}.rs and \
         text/index.rs — use try_from with an error path"
    }
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation> {
        if !CODEC_FILES.contains(&ctx.rel_path.as_str()) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let toks = &ctx.lexed.tokens;
        #[allow(clippy::needless_range_loop)]
        for i in 0..toks.len().saturating_sub(1) {
            if ctx.text(i) == "as"
                && INT_TYPES.contains(&ctx.text(i + 1))
                && !ctx.in_test(toks[i].start)
            {
                out.push(ctx.violation(
                    self.id(),
                    i,
                    format!(
                        "numeric `as {}` cast in a codec file can silently \
                         truncate on-disk values; use try_from with an error path",
                        ctx.text(i + 1)
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L004 — deterministic-serialization
// ---------------------------------------------------------------------------

/// L004: no default-hasher map iteration inside functions that feed an
/// encoder/WAL frame — on-disk bytes must be replay-deterministic.
pub struct DeterministicSerialization;

impl DeterministicSerialization {
    /// Collects struct fields declared with a hash-container type.
    fn hash_fields(ctx: &FileContext<'_>) -> BTreeSet<String> {
        let mut fields = BTreeSet::new();
        let toks = &ctx.lexed.tokens;
        // Pattern: `ident : … HashMap|HashSet … ,|}` inside struct bodies.
        // A simple approximation: any `name :` whose following tokens up
        // to the next `,` or `}` at the same depth mention HashMap/HashSet.
        for i in 0..toks.len() {
            if ctx.text(i) != "struct" {
                continue;
            }
            // find `{`
            let mut j = i + 1;
            let mut body = None;
            while j < toks.len() && j < i + 40 {
                match ctx.text(j) {
                    "{" => {
                        body = Some((j, ctx.match_close[j]));
                        break;
                    }
                    ";" | "(" => break,
                    _ => j += 1,
                }
            }
            let Some((open, close)) = body else { continue };
            if close == usize::MAX {
                continue;
            }
            let mut k = open + 1;
            while k < close {
                // field name followed by `:`
                if toks[k].kind == crate::lexer::TokenKind::Ident && ctx.is(k + 1, ":") {
                    let name = ctx.text(k).to_string();
                    let mut m = k + 2;
                    let mut mentions_hash = false;
                    let mut depth = 0i32;
                    while m < close {
                        match ctx.text(m) {
                            "<" => depth += 1,
                            ">" => depth -= 1,
                            "," if depth <= 0 => break,
                            "HashMap" | "HashSet" => mentions_hash = true,
                            _ => {}
                        }
                        m += 1;
                    }
                    if mentions_hash {
                        fields.insert(name);
                    }
                    k = m;
                } else {
                    k += 1;
                }
            }
        }
        fields
    }

    /// Collects local bindings / params with a hash-container type inside
    /// one function.
    fn hash_locals(ctx: &FileContext<'_>, f: &FnInfo) -> BTreeSet<String> {
        let mut names = BTreeSet::new();
        let toks = &ctx.lexed.tokens;
        // Params: split on top-level commas; a param mentioning
        // HashMap/HashSet marks its leading identifier.
        let (ps, pe) = f.params;
        let mut start = ps + 1;
        let mut depth = 0i32;
        for j in ps + 1..pe.saturating_sub(1) {
            let t = ctx.text(j);
            match t {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                "," if depth == 0 => {
                    mark_param(ctx, start, j, &mut names);
                    start = j + 1;
                }
                _ => {}
            }
        }
        mark_param(ctx, start, pe.saturating_sub(1), &mut names);
        // Lets: `let [mut] NAME … ;` whose statement mentions a hash type.
        if let Some((bs, be)) = f.body {
            let mut i = bs + 1;
            while i < be {
                if ctx.text(i) == "let" {
                    let mut j = i + 1;
                    if ctx.is(j, "mut") {
                        j += 1;
                    }
                    if j < be && toks[j].kind == crate::lexer::TokenKind::Ident {
                        let name = ctx.text(j).to_string();
                        // Scan to the end of the statement at brace depth 0.
                        let mut m = j + 1;
                        let mut mentions = false;
                        let mut d = 0i32;
                        while m < be {
                            match ctx.text(m) {
                                "(" | "[" | "{" => d += 1,
                                ")" | "]" | "}" => d -= 1,
                                ";" if d <= 0 => break,
                                "HashMap" | "HashSet" => mentions = true,
                                _ => {}
                            }
                            m += 1;
                        }
                        if mentions {
                            names.insert(name);
                        }
                        i = m;
                        continue;
                    }
                }
                i += 1;
            }
        }
        names
    }
}

fn mark_param(ctx: &FileContext<'_>, start: usize, end: usize, names: &mut BTreeSet<String>) {
    if start >= end {
        return;
    }
    let mut mentions = false;
    for j in start..end {
        if matches!(ctx.text(j), "HashMap" | "HashSet") {
            mentions = true;
        }
    }
    if !mentions {
        return;
    }
    // First ident before the `:` is the binding name (skip `mut`).
    let mut j = start;
    while j < end {
        let t = ctx.text(j);
        if t == "mut" {
            j += 1;
            continue;
        }
        if ctx.lexed.tokens[j].kind == crate::lexer::TokenKind::Ident && ctx.is(j + 1, ":") {
            names.insert(t.to_string());
        }
        break;
    }
}

impl Rule for DeterministicSerialization {
    fn id(&self) -> &'static str {
        "L004"
    }
    fn description(&self) -> &'static str {
        "no default-hasher HashMap/HashSet iteration inside functions that \
         feed an encoder/WAL frame — use BTreeMap or sort first"
    }
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation> {
        let fields = Self::hash_fields(ctx);
        let mut out = Vec::new();
        for f in &ctx.fns {
            let Some((bs, be)) = f.body else { continue };
            if ctx.in_test(ctx.lexed.tokens[bs].start) {
                continue;
            }
            // Does this function call an encode sink?
            let mut has_sink = false;
            for i in bs..be {
                if ENCODE_SINKS.contains(&ctx.text(i)) && ctx.is(i + 1, "(") {
                    has_sink = true;
                    break;
                }
            }
            if !has_sink {
                continue;
            }
            let locals = Self::hash_locals(ctx, f);
            // Iteration sites: NAME.iter()/… or `for … in … NAME …`.
            for i in bs..be {
                let t = ctx.text(i);
                if ORDER_LEAKING_ITERS.contains(&t)
                    && ctx.is(i + 1, "(")
                    && i > 0
                    && ctx.is(i - 1, ".")
                {
                    // receiver: NAME or self.FIELD
                    let recv = i.checked_sub(2).map(|r| ctx.text(r)).unwrap_or("");
                    let is_field = i >= 4
                        && ctx.is(i - 3, ".")
                        && ctx.is(i - 4, "self")
                        && fields.contains(recv);
                    if locals.contains(recv) || is_field {
                        out.push(ctx.violation(
                            self.id(),
                            i,
                            format!(
                                "iterating `{recv}` (std HashMap/HashSet) in a function \
                                 that feeds an encoder: iteration order is nondeterministic, \
                                 so on-disk bytes would differ across runs — use \
                                 BTreeMap/BTreeSet or collect-and-sort before encoding"
                            ),
                        ));
                    }
                }
                if t == "for" {
                    // header: tokens between `in` and the loop `{`.
                    let mut j = i + 1;
                    let mut saw_in = false;
                    while j < be {
                        let tj = ctx.text(j);
                        if tj == "in" {
                            saw_in = true;
                        } else if tj == "{" {
                            break;
                        } else if saw_in {
                            let named_local = locals.contains(tj);
                            let named_field = fields.contains(tj)
                                && j >= 2
                                && ctx.is(j - 1, ".")
                                && ctx.is(j - 2, "self");
                            // `for x in m.iter()` is already caught by the
                            // method-call check above; don't double-report.
                            let method_call_follows = ctx.is(j + 1, ".")
                                && ORDER_LEAKING_ITERS.contains(&ctx.text(j + 2));
                            if (named_local || named_field) && !method_call_follows {
                                out.push(ctx.violation(
                                    self.id(),
                                    j,
                                    format!(
                                        "`for` loop over `{tj}` (std HashMap/HashSet) in a \
                                         function that feeds an encoder: iteration order is \
                                         nondeterministic, so on-disk bytes would differ across \
                                         runs — use BTreeMap/BTreeSet or collect-and-sort first"
                                    ),
                                ));
                                break;
                            }
                        }
                        j += 1;
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L005 — slo-guard
// ---------------------------------------------------------------------------

/// L005: public query entry points consult `slo::Deadline` before
/// unbounded iteration (the paper's 200 ms bound, statically enforced).
pub struct SloGuard;

impl Rule for SloGuard {
    fn id(&self) -> &'static str {
        "L005"
    }
    fn description(&self) -> &'static str {
        "every pub fn in crates/query that executes a use-case query \
         (takes &ProvenanceBrowser and loops) must consult slo::Deadline"
    }
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation> {
        if !ctx.rel_path.starts_with("crates/query/src/") {
            return Vec::new();
        }
        let mut out = Vec::new();
        for f in &ctx.fns {
            if !f.is_pub {
                continue;
            }
            let Some((bs, be)) = f.body else { continue };
            if ctx.in_test(ctx.lexed.tokens[f.fn_tok].start) {
                continue;
            }
            // Use-case entry point: takes the browser.
            let takes_browser =
                (f.params.0..f.params.1).any(|i| ctx.text(i) == "ProvenanceBrowser");
            if !takes_browser {
                continue;
            }
            let mut loops = false;
            let mut consults_deadline = false;
            for i in bs..be {
                match ctx.text(i) {
                    "for" | "while" | "loop" => loops = true,
                    "Deadline" => consults_deadline = true,
                    _ => {}
                }
            }
            if loops && !consults_deadline {
                out.push(ctx.violation(
                    self.id(),
                    f.fn_tok,
                    format!(
                        "pub fn `{}` executes a query with loops but never consults \
                         slo::Deadline; construct one from the budget and check \
                         `expired()` before unbounded iteration (E2's 200 ms bound)",
                        f.name
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L006 — no-raw-log
// ---------------------------------------------------------------------------

/// L006: library crates emit structured log events, not bare prints.
///
/// A daemonized store ships its diagnostics as JSON lines with levels and
/// fields (`bp_obs::log`), which also land in the flight recorder; a bare
/// `eprintln!` bypasses filtering, the recorder, and any collector parsing
/// the stream. The log module's own stderr sink is the one exemption.
pub struct NoRawLog;

impl Rule for NoRawLog {
    fn id(&self) -> &'static str {
        "L006"
    }
    fn description(&self) -> &'static str {
        "no println!/eprintln!/print!/eprint!/dbg! in library-crate non-test \
         code — route diagnostics through bp_obs::log so they are leveled, \
         filterable, and flight-recorded (log.rs's own sink is exempt)"
    }
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation> {
        if !NO_RAW_LOG_CRATES
            .iter()
            .any(|p| ctx.rel_path.starts_with(p))
            || ctx.rel_path == RAW_LOG_SINK_FILE
        {
            return Vec::new();
        }
        let mut out = Vec::new();
        let toks = &ctx.lexed.tokens;
        #[allow(clippy::needless_range_loop)]
        for i in 0..toks.len().saturating_sub(1) {
            let t = ctx.text(i);
            if RAW_LOG_MACROS.contains(&t) && ctx.is(i + 1, "!") && !ctx.in_test(toks[i].start) {
                out.push(ctx.violation(
                    self.id(),
                    i,
                    format!(
                        "`{t}!` in a library crate writes unstructured output; use \
                         bp_obs::log (debug/info/warn/error) so the event is leveled, \
                         filterable via BP_LOG, and lands in the flight recorder"
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L007 — wal-before-mutate (the provenance-completeness proof)
// ---------------------------------------------------------------------------

/// The storage type whose state the WAL protects.
const STORE_TYPE: &str = "ProvenanceStore";

/// Store fields and the method names that mutate them (L007). The
/// interner is deliberately absent: `DefineString` frames are emitted by
/// `intern()` itself and replay is idempotent on the string table.
const MUTATION_SETS: &[(&str, &[&str])] = &[
    (
        "graph",
        &["add_node", "add_edge_full", "node_mut", "redact_node"],
    ),
    ("keys", &["insert", "remove_key"]),
    ("times", &["insert", "close"]),
];

/// L007: every store mutation is WAL-dominated on all public call paths.
///
/// The paper's completeness claim dies the moment one mutation path
/// skips the log: a crash then silently reverts provenance the user
/// believes is durable. This rule walks the call graph from every
/// public `ProvenanceStore` method; a path that reaches a mutating call
/// without passing through a function that (transitively) appends to
/// the WAL — or one that *reads* it, which marks the recovery/replay
/// context where mutations reconstruct already-logged state — is a
/// completeness hole, reported with the full call path.
pub struct WalBeforeMutate;

impl GlobalRule for WalBeforeMutate {
    fn id(&self) -> &'static str {
        "L007"
    }
    fn description(&self) -> &'static str {
        "every ProvenanceStore mutation must be dominated by a WAL append on \
         all call paths from public entry points (recovery's replay, which \
         reads the WAL, is the one sanctioned exception)"
    }
    fn check(&self, prog: &Program) -> Vec<Violation> {
        let files = &prog.files;
        let g = &prog.graph;
        let n = g.nodes.len();
        let mut direct_append = vec![false; n];
        let mut reads_wal = vec![false; n];
        let mut mutations: Vec<Vec<(u32, u32, String)>> = vec![Vec::new(); n];
        for i in 0..n {
            if g.is_test(files, i) {
                continue;
            }
            let f = g.fn_at(files, i);
            let file = g.file_at(files, i);
            for c in &f.calls {
                if c.is_method && c.name == "append" {
                    let tail = c.recv.rsplit('.').next().unwrap_or("");
                    if tail == "wal" || tail == "snap" {
                        direct_append[i] = true;
                    }
                }
                if c.is_method && c.name == "read_all" {
                    reads_wal[i] = true;
                }
                if file.crate_name == "storage" && f.impl_type == STORE_TYPE && c.is_method {
                    if let Some(field) = c.recv.strip_prefix("self.") {
                        let mutating = MUTATION_SETS
                            .iter()
                            .any(|(fld, names)| *fld == field && names.contains(&c.name.as_str()));
                        if mutating {
                            mutations[i].push((c.line, c.col, format!("{}.{}", c.recv, c.name)));
                        }
                    }
                }
            }
        }
        // can_append: does the function (transitively) append to the WAL?
        let mut can_append = direct_append;
        loop {
            let mut changed = false;
            for i in 0..n {
                if !can_append[i] && g.edges[i].iter().any(|e| can_append[e.to]) {
                    can_append[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let barrier = |i: usize| can_append[i] || reads_wal[i];

        let mut out = Vec::new();
        let mut reported: BTreeSet<(String, u32, u32)> = BTreeSet::new();
        for entry in 0..n {
            let f = g.fn_at(files, entry);
            let file = g.file_at(files, entry);
            if file.crate_name != "storage"
                || f.impl_type != STORE_TYPE
                || !f.is_pub
                || g.is_test(files, entry)
                || barrier(entry)
            {
                continue;
            }
            let mut parent: HashMap<usize, usize> = HashMap::new();
            let mut visited: HashSet<usize> = HashSet::from([entry]);
            let mut queue = VecDeque::from([entry]);
            while let Some(m) = queue.pop_front() {
                for (line, col, desc) in &mutations[m] {
                    let mf = g.file_at(files, m);
                    let key = (mf.rel_path.clone(), *line, *col);
                    if !reported.insert(key) {
                        continue;
                    }
                    let mut path_nodes = vec![m];
                    let mut cur = m;
                    while let Some(&p) = parent.get(&cur) {
                        path_nodes.push(p);
                        cur = p;
                    }
                    path_nodes.reverse();
                    let path_str = path_nodes
                        .iter()
                        .map(|&x| g.fn_at(files, x).display())
                        .collect::<Vec<_>>()
                        .join(" -> ");
                    out.push(Violation {
                        rule: self.id(),
                        path: mf.rel_path.clone(),
                        line: *line,
                        col: *col,
                        message: format!(
                            "store mutation `{desc}` is reachable from public entry \
                             `{}` with no dominating WAL append (call path: {path_str}); \
                             a crash here silently loses provenance — route the \
                             mutation through commit() or append the frame first",
                            g.fn_at(files, entry).display()
                        ),
                        severity: Severity::Error,
                    });
                }
                for e in &g.edges[m] {
                    if !barrier(e.to) && visited.insert(e.to) {
                        parent.insert(e.to, m);
                        queue.push_back(e.to);
                    }
                }
            }
        }
        sort_violations(&mut out);
        out
    }
}

// ---------------------------------------------------------------------------
// L008 — lock-order
// ---------------------------------------------------------------------------

/// A lock identity: a concrete field/static, or "the caller's i-th
/// parameter" awaiting substitution at call sites.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum LockId {
    Concrete(String),
    Param(usize),
}

/// Maps a receiver/argument chain to a lock identity. `self.<field>`
/// receivers are qualified by the impl type so `Journal.inner` and
/// `SloEngine.inner` stay distinct locks.
fn lock_id_of_chain(chain: &str, impl_type: &str, params: &[String]) -> Option<LockId> {
    if chain.is_empty() || chain == "_" || chain == "self" {
        return None;
    }
    if let Some(rest) = chain.strip_prefix("self.") {
        let qual = if impl_type.is_empty() {
            format!("self.{rest}")
        } else {
            format!("{impl_type}.{rest}")
        };
        return Some(LockId::Concrete(qual));
    }
    if let Some(i) = params.iter().position(|p| p == chain) {
        return Some(LockId::Param(i));
    }
    Some(LockId::Concrete(
        chain.rsplit('.').next().unwrap_or(chain).to_string(),
    ))
}

/// L008: the cross-crate lock-order graph must be acyclic.
///
/// Collects every `*.lock()`/`.read()`/`.write()` acquisition, computes
/// which locks each function (transitively) acquires — substituting
/// parameters at call sites so helpers like `push_ring(&self.traces)`
/// resolve to the caller's lock — and records an ordered pair whenever a
/// second lock is acquired after an earlier one in the same function. A
/// cycle in the resulting order graph is a potential deadlock. Self-pairs
/// (`A` then `A` again) are excluded: guard drops are invisible to this
/// analysis, and read-then-write on the same `RwLock` is the metrics
/// registry's normal upgrade pattern.
pub struct LockOrder;

impl GlobalRule for LockOrder {
    fn id(&self) -> &'static str {
        "L008"
    }
    fn description(&self) -> &'static str {
        "nested lock acquisitions must follow one global order — a cycle in \
         the lock-order graph across serve/capture/obs is a potential deadlock"
    }
    fn check(&self, prog: &Program) -> Vec<Violation> {
        let files = &prog.files;
        let g = &prog.graph;
        let n = g.nodes.len();

        // Direct lock events per node, in call order: (call index, ids).
        let mut direct: Vec<Vec<(usize, LockId)>> = vec![Vec::new(); n];
        for (i, events) in direct.iter_mut().enumerate() {
            if g.is_test(files, i) {
                continue;
            }
            let f = g.fn_at(files, i);
            for (ci, c) in f.calls.iter().enumerate() {
                if c.is_method && c.argc == 0 && LOCK_PRIMITIVES.contains(&c.name.as_str()) {
                    if let Some(id) = lock_id_of_chain(&c.recv, &f.impl_type, &f.param_names) {
                        events.push((ci, id));
                    }
                }
            }
        }

        // lockset: all locks a function may acquire, transitively, with
        // callee params substituted through call arguments.
        let mut lockset: Vec<BTreeSet<LockId>> = direct
            .iter()
            .map(|evs| evs.iter().map(|(_, id)| id.clone()).collect())
            .collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                let f = g.fn_at(files, i);
                let mut add: Vec<LockId> = Vec::new();
                for e in &g.edges[i] {
                    let call = &f.calls[e.call_idx];
                    for id in substituted_lockset(&lockset[e.to], call, i, prog) {
                        if !lockset[i].contains(&id) {
                            add.push(id);
                        }
                    }
                }
                for id in add {
                    lockset[i].insert(id);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Ordered pairs: lock A held (directly acquired earlier in this
        // fn), then lock B acquired — directly or inside a callee.
        type Site = (String, u32, u32, String);
        let mut pairs: BTreeMap<(String, String), Site> = BTreeMap::new();
        for (i, events) in direct.iter().enumerate() {
            if g.is_test(files, i) {
                continue;
            }
            let f = g.fn_at(files, i);
            let file = g.file_at(files, i);
            let mut held: Vec<String> = Vec::new();
            let mut direct_iter = events.iter().peekable();
            for (ci, c) in f.calls.iter().enumerate() {
                // Locks this call contributes.
                let mut contributed: Vec<String> = Vec::new();
                if let Some((dci, id)) = direct_iter.peek() {
                    if *dci == ci {
                        if let LockId::Concrete(name) = id {
                            contributed.push(name.clone());
                        }
                        direct_iter.next();
                    }
                }
                for e in g.edges[i].iter().filter(|e| e.call_idx == ci) {
                    for id in substituted_lockset(&lockset[e.to], c, i, prog) {
                        if let LockId::Concrete(name) = id {
                            contributed.push(name);
                        }
                    }
                }
                for b in &contributed {
                    for a in &held {
                        if a != b {
                            pairs.entry((a.clone(), b.clone())).or_insert_with(|| {
                                (file.rel_path.clone(), c.line, c.col, f.display())
                            });
                        }
                    }
                }
                // Only direct acquisitions stay held past the call.
                if let Some(last) = contributed.first() {
                    let was_direct = direct[i].iter().any(|(dci, id)| {
                        *dci == ci && matches!(id, LockId::Concrete(nm) if nm == last)
                    });
                    if was_direct && !held.contains(last) {
                        held.push(last.clone());
                    }
                }
            }
        }

        // Cycle detection: an edge (u, v) participates in a cycle iff v
        // reaches u in the pair graph.
        let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for (u, v) in pairs.keys() {
            adj.entry(u).or_default().push(v);
        }
        let reaches = |from: &String, to: &String| -> bool {
            let mut seen: BTreeSet<&String> = BTreeSet::new();
            let mut stack = vec![from];
            while let Some(x) = stack.pop() {
                if x == to {
                    return true;
                }
                if seen.insert(x) {
                    if let Some(next) = adj.get(x) {
                        stack.extend(next.iter().copied());
                    }
                }
            }
            false
        };
        let mut out = Vec::new();
        for ((u, v), (path, line, col, fn_disp)) in &pairs {
            if reaches(v, u) {
                let counter = pairs
                    .get(&(v.clone(), u.clone()))
                    .map(|(p, l, _, _)| format!("`{v}` -> `{u}` at {p}:{l}"))
                    .unwrap_or_else(|| format!("`{v}` transitively orders before `{u}`"));
                out.push(Violation {
                    rule: self.id(),
                    path: path.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "lock-order cycle: `{fn_disp}` acquires `{v}` while holding \
                         `{u}`, but elsewhere {counter} — a concurrent interleaving \
                         can deadlock; pick one global order for these locks"
                    ),
                    severity: Severity::Error,
                });
            }
        }
        sort_violations(&mut out);
        out
    }
}

/// Substitutes a callee's lockset through one call site: concrete locks
/// pass through, parameter locks resolve via the matching argument chain
/// (and may resolve to a caller parameter, staying symbolic).
fn substituted_lockset(
    callee_set: &BTreeSet<LockId>,
    call: &CallFact,
    caller_node: usize,
    prog: &Program,
) -> Vec<LockId> {
    let g = &prog.graph;
    let caller = g.fn_at(&prog.files, caller_node);
    let mut out = Vec::new();
    for id in callee_set {
        match id {
            LockId::Concrete(_) => out.push(id.clone()),
            LockId::Param(j) => {
                // The callee's params may include `self`; call args never
                // do. Try both alignments — at worst we substitute the
                // wrong chain and over-approximate one lock name.
                for pos in [*j, j.wrapping_sub(1)] {
                    if let Some((_, chain)) = call.path_args.iter().find(|(p, _)| *p == pos) {
                        if let Some(sub) =
                            lock_id_of_chain(chain, &caller.impl_type, &caller.param_names)
                        {
                            out.push(sub);
                            break;
                        }
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L009 — deadline-propagation
// ---------------------------------------------------------------------------

/// Method names that walk graph structure (L009): a loop calling one of
/// these touches an unbounded amount of history.
const GRAPH_WALK_NAMES: &[&str] = &[
    "nodes",
    "edges",
    "node",
    "edge",
    "parents",
    "children",
    "neighbors",
    "out_edges",
    "in_edges",
    "edges_from",
    "edges_to",
    "bfs",
    "expand",
];

/// L009: interprocedural deadline propagation (L005's closure).
///
/// L005 checks the seven public query entry points; this rule follows
/// the call graph, so a helper three calls deep that loops over graph
/// nodes without taking or constructing an `slo::Deadline`/`Budget`
/// still breaks the 200 ms interactive bound — invisible to any
/// file-local check.
pub struct DeadlinePropagation;

impl GlobalRule for DeadlinePropagation {
    fn id(&self) -> &'static str {
        "L009"
    }
    fn description(&self) -> &'static str {
        "any function reachable from a query entry point that loops over \
         graph nodes/edges must take or construct an slo::Deadline/Budget"
    }
    fn check(&self, prog: &Program) -> Vec<Violation> {
        let files = &prog.files;
        let g = &prog.graph;
        let n = g.nodes.len();
        // Entry points live in the query crate, but propagation follows
        // the call graph into the graph crate too: the relevance kernels
        // (frozen PPR, expansion, HITS) do the actual unbounded walking
        // on the query paths' behalf, and a kernel loop that cannot see a
        // Deadline/Budget breaks the interactive bound just as surely as
        // a query-crate loop.
        let in_scope = |i: usize| {
            let c = g.file_at(files, i).crate_name.as_str();
            (c == "query" || c == "graph") && !g.is_test(files, i)
        };

        // Multi-source BFS from the public browser-taking entry points,
        // remembering one representative entry per reached node.
        let mut entry_of: Vec<Option<usize>> = vec![None; n];
        let mut queue = VecDeque::new();
        for (i, slot) in entry_of.iter_mut().enumerate() {
            if g.file_at(files, i).crate_name != "query" || g.is_test(files, i) {
                continue;
            }
            let f = g.fn_at(files, i);
            if f.is_pub && f.param_tys.iter().any(|t| t.contains("ProvenanceBrowser")) {
                *slot = Some(i);
                queue.push_back(i);
            }
        }
        while let Some(m) = queue.pop_front() {
            for e in &g.edges[m] {
                if in_scope(e.to) && entry_of[e.to].is_none() {
                    entry_of[e.to] = entry_of[m];
                    queue.push_back(e.to);
                }
            }
        }

        let mut out = Vec::new();
        for (i, slot) in entry_of.iter().enumerate() {
            let Some(entry) = *slot else { continue };
            let f = g.fn_at(files, i);
            let protected = f.mentions_deadline
                || f.param_tys
                    .iter()
                    .any(|t| t.contains("Deadline") || t.contains("Budget"));
            if protected {
                continue;
            }
            let graph_loop = f.calls.iter().find(|c| {
                c.in_loop
                    && (c.recv.contains("graph") || GRAPH_WALK_NAMES.contains(&c.name.as_str()))
            });
            if let Some(c) = graph_loop {
                let file = g.file_at(files, i);
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: c.line,
                    col: c.col,
                    message: format!(
                        "`{}` loops over graph structure (`{}`) but neither takes nor \
                         constructs an slo::Deadline/Budget, and it is reachable from \
                         query entry point `{}` — thread the deadline through so the \
                         200ms interactive bound can truncate this walk",
                        f.display(),
                        c.name,
                        g.fn_at(files, entry).display()
                    ),
                    severity: Severity::Error,
                });
            }
        }
        sort_violations(&mut out);
        out
    }
}

// ---------------------------------------------------------------------------
// L010 — metric-name-registry
// ---------------------------------------------------------------------------

/// The registry file's workspace-relative path.
pub const METRICS_REGISTRY_PATH: &str = "METRICS.registry";

/// Emission methods on the bp-obs handle.
const METRIC_EMITTERS: &[&str] = &["counter", "gauge", "histogram"];

/// One parsed registry entry.
struct RegEntry {
    kind: String,
    pattern: String,
    line: u32,
}

/// L010: every emitted metric name appears in `METRICS.registry`.
///
/// Dashboards and SLO alerts reference metric names as strings; a typo
/// at an emit site silently produces a dead series and a flatlined
/// alert. The registry is the single checked-in source of truth: emit
/// sites must match it (literal names, `format!` patterns via `*`
/// wildcards, and names threaded through parameters — `slo::observe`'s
/// `latency_metric` — are all resolved through the call graph), unused
/// entries are flagged as dead, and names that collide after Prometheus
/// sanitization are rejected.
pub struct MetricNameRegistry;

impl GlobalRule for MetricNameRegistry {
    fn id(&self) -> &'static str {
        "L010"
    }
    fn description(&self) -> &'static str {
        "every metric name emitted through bp-obs must appear in \
         METRICS.registry (and every registry entry must still be emitted); \
         `*` wildcards cover format!-built names"
    }
    fn check(&self, prog: &Program) -> Vec<Violation> {
        let files = &prog.files;
        let g = &prog.graph;
        let n = g.nodes.len();
        let mut out = Vec::new();

        // --- collect emissions, propagating names through parameters ---
        // (kind, name-or-pattern, is_pattern, path, line, col)
        type Emission = (String, String, bool, String, u32, u32);
        let mut emissions: Vec<Emission> = Vec::new();
        // (node, param index) -> kinds emitted through that parameter.
        let mut param_sinks: HashMap<(usize, usize), BTreeSet<String>> = HashMap::new();
        for i in 0..n {
            if g.is_test(files, i) {
                continue;
            }
            let f = g.fn_at(files, i);
            let file = g.file_at(files, i);
            for c in &f.calls {
                if !(c.is_method && c.argc == 1 && METRIC_EMITTERS.contains(&c.name.as_str())) {
                    continue;
                }
                if let Some((_, name)) = c.str_args.first() {
                    emissions.push((
                        c.name.clone(),
                        name.clone(),
                        false,
                        file.rel_path.clone(),
                        c.line,
                        c.col,
                    ));
                } else if let Some((_, pat)) = c.fmt_args.first() {
                    emissions.push((
                        c.name.clone(),
                        pat.clone(),
                        true,
                        file.rel_path.clone(),
                        c.line,
                        c.col,
                    ));
                } else if let Some((_, pi)) = c.param_args.first() {
                    param_sinks
                        .entry((i, *pi))
                        .or_default()
                        .insert(c.name.clone());
                }
            }
        }
        // Fixpoint: resolve arguments feeding parameter sinks.
        loop {
            let mut changed = false;
            for i in 0..n {
                if g.is_test(files, i) {
                    continue;
                }
                let f = g.fn_at(files, i);
                let file = g.file_at(files, i);
                for e in &g.edges[i] {
                    let call = &f.calls[e.call_idx];
                    let callee = g.fn_at(files, e.to);
                    let callee_self = callee.param_names.first().is_some_and(|p| p == "self");
                    let param_of_pos = |pos: usize| pos + usize::from(callee_self);
                    for (pos, name) in &call.str_args {
                        if let Some(kinds) = param_sinks.get(&(e.to, param_of_pos(*pos))) {
                            for k in kinds.clone() {
                                let em = (
                                    k,
                                    name.clone(),
                                    false,
                                    file.rel_path.clone(),
                                    call.line,
                                    call.col,
                                );
                                if !emissions.contains(&em) {
                                    emissions.push(em);
                                    changed = true;
                                }
                            }
                        }
                    }
                    for (pos, pat) in &call.fmt_args {
                        if let Some(kinds) = param_sinks.get(&(e.to, param_of_pos(*pos))) {
                            for k in kinds.clone() {
                                let em = (
                                    k,
                                    pat.clone(),
                                    true,
                                    file.rel_path.clone(),
                                    call.line,
                                    call.col,
                                );
                                if !emissions.contains(&em) {
                                    emissions.push(em);
                                    changed = true;
                                }
                            }
                        }
                    }
                    for (pos, caller_pi) in &call.param_args {
                        if let Some(kinds) = param_sinks.get(&(e.to, param_of_pos(*pos))).cloned() {
                            let slot = param_sinks.entry((i, *caller_pi)).or_default();
                            for k in kinds {
                                if slot.insert(k) {
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // --- parse the registry ---
        let Some(text) = &prog.registry else {
            if !emissions.is_empty() {
                out.push(Violation {
                    rule: self.id(),
                    path: METRICS_REGISTRY_PATH.to_string(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "{} metric emission(s) found but METRICS.registry does not \
                         exist — create it with one `<counter|gauge|histogram> <name>` \
                         line per metric (`*` wildcards allowed)",
                        emissions.len()
                    ),
                    severity: Severity::Error,
                });
            }
            sort_violations(&mut out);
            return out;
        };
        let mut entries: Vec<RegEntry> = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = u32::try_from(ln + 1).unwrap_or(u32::MAX);
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let mut parts = body.split_whitespace();
            let (kind, pattern) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            if !METRIC_EMITTERS.contains(&kind) || pattern.is_empty() || parts.next().is_some() {
                out.push(Violation {
                    rule: self.id(),
                    path: METRICS_REGISTRY_PATH.to_string(),
                    line,
                    col: 1,
                    message: format!(
                        "malformed registry line `{body}` — expected \
                         `<counter|gauge|histogram> <name>`"
                    ),
                    severity: Severity::Error,
                });
                continue;
            }
            entries.push(RegEntry {
                kind: kind.to_string(),
                pattern: pattern.to_string(),
                line,
            });
        }

        // --- emit sites vs. registry ---
        let mut used = vec![false; entries.len()];
        for (kind, name, is_pattern, path, line, col) in &emissions {
            let mut any_name_match = false;
            let mut kind_match = false;
            for (ei, entry) in entries.iter().enumerate() {
                let matches = if *is_pattern {
                    patterns_intersect(name, &entry.pattern)
                } else {
                    glob_match(&entry.pattern, name)
                };
                if matches {
                    any_name_match = true;
                    if entry.kind == *kind {
                        kind_match = true;
                        used[ei] = true;
                    }
                }
            }
            if !any_name_match {
                out.push(Violation {
                    rule: self.id(),
                    path: path.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "metric `{name}` ({kind}) is not in METRICS.registry — \
                         add it, or fix the emit-site typo (dashboards reference \
                         registry names verbatim)"
                    ),
                    severity: Severity::Error,
                });
            } else if !kind_match {
                out.push(Violation {
                    rule: self.id(),
                    path: path.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "metric `{name}` is emitted as a {kind} but registered \
                         with a different type in METRICS.registry"
                    ),
                    severity: Severity::Error,
                });
            }
        }
        // --- dead registry entries ---
        for (ei, entry) in entries.iter().enumerate() {
            if !used[ei] {
                out.push(Violation {
                    rule: self.id(),
                    path: METRICS_REGISTRY_PATH.to_string(),
                    line: entry.line,
                    col: 1,
                    message: format!(
                        "registry entry `{} {}` matches no emit site — the metric \
                         was removed or renamed; delete the entry or fix the name",
                        entry.kind, entry.pattern
                    ),
                    severity: Severity::Error,
                });
            }
        }
        // --- post-sanitization collisions ---
        for (ai, a) in entries.iter().enumerate() {
            if a.pattern.contains('*') {
                continue;
            }
            for b in entries.iter().skip(ai + 1) {
                if b.pattern.contains('*') || a.pattern == b.pattern {
                    continue;
                }
                if prom_sanitize(&a.pattern) == prom_sanitize(&b.pattern) {
                    out.push(Violation {
                        rule: self.id(),
                        path: METRICS_REGISTRY_PATH.to_string(),
                        line: b.line,
                        col: 1,
                        message: format!(
                            "registry names `{}` and `{}` collide after Prometheus \
                             sanitization (both become `{}`) — their exposition \
                             series would merge",
                            a.pattern,
                            b.pattern,
                            prom_sanitize(&a.pattern)
                        ),
                        severity: Severity::Error,
                    });
                }
            }
        }
        sort_violations(&mut out);
        out
    }
}

/// Glob match: `*` in `pattern` matches any (possibly empty) substring.
fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // dp[i][j]: p[..i] matches t[..j]
    let mut dp = vec![vec![false; t.len() + 1]; p.len() + 1];
    dp[0][0] = true;
    for i in 1..=p.len() {
        if p[i - 1] == '*' {
            dp[i][0] = dp[i - 1][0];
        }
        for j in 1..=t.len() {
            dp[i][j] = if p[i - 1] == '*' {
                dp[i - 1][j] || dp[i][j - 1]
            } else {
                dp[i - 1][j - 1] && p[i - 1] == t[j - 1]
            };
        }
    }
    dp[p.len()][t.len()]
}

/// `true` when two `*`-wildcard patterns can match a common string.
fn patterns_intersect(a: &str, b: &str) -> bool {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // dp[i][j]: a[i..] and b[j..] share a common expansion. Computed
    // backwards so each cell only depends on later ones.
    let mut dp = vec![vec![false; b.len() + 1]; a.len() + 1];
    dp[a.len()][b.len()] = true;
    for i in (0..=a.len()).rev() {
        for j in (0..=b.len()).rev() {
            if i == a.len() && j == b.len() {
                continue;
            }
            let mut ok = false;
            if i < a.len() && a[i] == '*' {
                ok = dp[i + 1][j] || (j < b.len() && dp[i][j + 1]);
            }
            if !ok && j < b.len() && b[j] == '*' {
                ok = dp[i][j + 1] || (i < a.len() && dp[i + 1][j]);
            }
            if !ok && i < a.len() && j < b.len() && a[i] == b[j] && a[i] != '*' && b[j] != '*' {
                ok = dp[i + 1][j + 1];
            }
            dp[i][j] = ok;
        }
    }
    dp[0][0]
}

/// Mirrors `bp_obs`'s Prometheus exposition sanitizer: non
/// `[a-zA-Z0-9:]` bytes become `_`, and a leading digit gains a `_`
/// prefix.
fn prom_sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Sorts violations into the canonical (path, line, col, rule) order.
fn sort_violations(v: &mut [Violation]) {
    v.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
}

#[cfg(test)]
mod tests {
    use crate::engine::{CheckReport, Engine};

    fn check(path: &str, src: &str) -> CheckReport {
        let mut r = CheckReport::default();
        Engine::new().check_file(path, src, &mut r);
        r
    }

    #[test]
    fn l001_flags_raw_clock_outside_clock_rs() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let r = check("crates/graph/src/x.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L001");
        assert!(check("crates/obs/src/clock.rs", src).is_clean());
    }

    #[test]
    fn l002_flags_only_lib_crates_and_spares_unwrap_or() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\nfn g(x: Option<u32>) -> u32 { x.unwrap() }";
        let r = check("crates/storage/src/x.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("unwrap"));
        assert!(
            check("crates/cli/src/x.rs", src).is_clean(),
            "cli may panic"
        );
    }

    #[test]
    fn l003_flags_codec_casts_only() {
        let src = "fn f(x: usize) -> u64 { x as u64 }";
        let r = check("crates/storage/src/varint.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L003");
        assert!(check("crates/storage/src/store.rs", src).is_clean());
        // float casts are not integer truncation
        let fsrc = "fn f(x: u64) -> f64 { x as f64 }";
        assert!(check("crates/storage/src/varint.rs", fsrc).is_clean());
    }

    #[test]
    fn l004_flags_hash_iteration_feeding_encoder() {
        let src = "use std::collections::HashMap;\n\
                   fn encode_all(m: &HashMap<u32, u32>, out: &mut Vec<u8>) {\n\
                       for (k, v) in m.iter() { write_u64(out, *k); write_u64(out, *v); }\n\
                   }\nfn write_u64(_o: &mut Vec<u8>, _v: u32) {}\n";
        let r = check("crates/storage/src/factorize.rs", src);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, "L004");
    }

    #[test]
    fn l004_spares_btreemap_and_sinkless_fns() {
        let clean = "use std::collections::BTreeMap;\n\
                     fn encode_all(m: &BTreeMap<u32, u32>, out: &mut Vec<u8>) {\n\
                         for (k, v) in m.iter() { write_u64(out, *k); }\n\
                     }\nfn write_u64(_o: &mut Vec<u8>, _v: u32) {}\n";
        assert!(check("crates/storage/src/factorize.rs", clean).is_clean());
        let no_sink = "use std::collections::HashMap;\n\
                       fn tally(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }\n";
        assert!(check("crates/storage/src/factorize.rs", no_sink).is_clean());
    }

    #[test]
    fn l005_requires_deadline_in_looping_pub_query_fns() {
        let bad = "pub fn search(b: &ProvenanceBrowser) -> u32 {\n\
                       let mut n = 0; for _ in 0..10 { n += 1; } n\n\
                   }\n";
        let r = check("crates/query/src/context.rs", bad);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L005");
        let good = "pub fn search(b: &ProvenanceBrowser) -> u32 {\n\
                        let d = crate::slo::Deadline::unbounded();\n\
                        let mut n = 0; for _ in 0..10 { if d.expired() { break; } n += 1; } n\n\
                    }\n";
        assert!(check("crates/query/src/context.rs", good).is_clean());
        // Non-browser helpers and private fns are exempt.
        let helper = "pub fn rank(xs: &[u32]) -> u32 { let mut n = 0; for x in xs { n += x; } n }";
        assert!(check("crates/query/src/context.rs", helper).is_clean());
    }

    #[test]
    fn l006_flags_raw_prints_in_library_crates_only() {
        let src = "fn f() { eprintln!(\"recovered\"); }";
        let r = check("crates/storage/src/store.rs", src);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, "L006");
        assert!(r.violations[0].message.contains("bp_obs::log"));
        // User-facing binaries may print freely.
        assert!(check("crates/cli/src/commands.rs", src).is_clean());
        assert!(check("crates/bench/src/bin/bench.rs", src).is_clean());
        assert!(check("crates/lint/src/main.rs", src).is_clean());
    }

    #[test]
    fn l006_exempts_the_log_sink_and_test_code() {
        let sink = "pub fn emit(line: &str) { eprintln!(\"{line}\"); }";
        assert!(check("crates/obs/src/log.rs", sink).is_clean());
        let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"debugging a test is fine\"); }\n}\n";
        assert!(check("crates/graph/src/x.rs", in_test).is_clean());
        // dbg! is flagged too — it is the easiest macro to leave behind.
        let dbg = "fn f(x: u32) -> u32 { dbg!(x) }";
        assert_eq!(check("crates/query/src/x.rs", dbg).violations.len(), 1);
    }
}

#[cfg(test)]
mod global_tests {
    use super::*;
    use crate::diag::LineMap;
    use crate::engine::match_delims;
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::symbols::summarize;

    fn program(files: &[(&str, &str)], registry: Option<&str>) -> Program {
        let summaries = files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let close = match_delims(&lexed, src);
                let ast = parse_file(src, &lexed, &close);
                summarize(path, &ast, &LineMap::new(src))
            })
            .collect();
        Program::new(summaries, registry.map(str::to_string))
    }

    fn run(
        rule: &dyn GlobalRule,
        files: &[(&str, &str)],
        registry: Option<&str>,
    ) -> Vec<Violation> {
        rule.check(&program(files, registry))
    }

    // ---- L007 ----

    const STORE_OK: &str = r#"
        impl ProvenanceStore {
            pub fn add_node(&mut self, ev: Event) { self.commit(op, batch); }
            fn commit(&mut self, op: Op, batch: Batch) {
                self.apply_structural(op);
                self.append_frame(op);
            }
            fn apply_structural(&mut self, op: Op) {
                self.graph.add_node(op);
                self.keys.insert(k, v);
            }
            fn append_frame(&mut self, op: Op) { self.wal.append(frame); }
            pub fn recover(&mut self) {
                for frame in self.wal.read_all() { self.replay(frame); }
            }
            fn replay(&mut self, frame: Frame) { self.apply_structural(op); }
        }
    "#;

    #[test]
    fn l007_guarded_flow_and_recovery_are_clean() {
        let out = run(
            &WalBeforeMutate,
            &[("crates/storage/src/store.rs", STORE_OK)],
            None,
        );
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn l007_seeded_bypass_caught_with_call_path() {
        let src = r#"
            impl ProvenanceStore {
                pub fn fast_annotate(&mut self, id: NodeId, note: Str) {
                    self.poke(id, note);
                }
                fn poke(&mut self, id: NodeId, note: Str) {
                    self.graph.node_mut(id);
                }
                pub fn add_node(&mut self, ev: Event) { self.commit(op); }
                fn commit(&mut self, op: Op) {
                    self.graph.add_node(op);
                    self.wal.append(frame);
                }
            }
        "#;
        let out = run(
            &WalBeforeMutate,
            &[("crates/storage/src/store.rs", src)],
            None,
        );
        assert_eq!(out.len(), 1, "got: {out:?}");
        let v = &out[0];
        assert_eq!(v.rule, "L007");
        assert!(v.message.contains("self.graph.node_mut"));
        assert!(v.message.contains("ProvenanceStore::fast_annotate"));
        assert!(
            v.message
                .contains("ProvenanceStore::fast_annotate -> ProvenanceStore::poke"),
            "missing call path: {}",
            v.message
        );
    }

    // ---- L008 ----

    #[test]
    fn l008_inverted_pair_is_a_cycle() {
        let src = r#"
            impl Daemon {
                fn render(&self) {
                    let t = self.traces.lock();
                    let p = self.profiles.lock();
                }
                fn snapshot(&self) {
                    let p = self.profiles.lock();
                    let t = self.traces.lock();
                }
            }
        "#;
        let out = run(&LockOrder, &[("crates/cli/src/serve.rs", src)], None);
        assert_eq!(out.len(), 2, "got: {out:?}");
        assert!(out.iter().all(|v| v.rule == "L008"));
        assert!(out[0].message.contains("Daemon.profiles"));
        assert!(out[0].message.contains("Daemon.traces"));
    }

    #[test]
    fn l008_consistent_order_is_clean() {
        let src = r#"
            impl Daemon {
                fn render(&self) {
                    let t = self.traces.lock();
                    let p = self.profiles.lock();
                }
                fn snapshot(&self) {
                    let t = self.traces.lock();
                    let p = self.profiles.lock();
                }
            }
        "#;
        let out = run(&LockOrder, &[("crates/cli/src/serve.rs", src)], None);
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn l008_read_then_write_same_lock_is_clean() {
        let src = r#"
            impl Registry {
                fn get_or_insert(&self, name: Str) -> Handle {
                    if let Some(h) = self.map.read().get(name) { return h; }
                    self.map.write().insert(name)
                }
            }
        "#;
        let out = run(&LockOrder, &[("crates/obs/src/metrics.rs", src)], None);
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn l008_cycle_through_param_helper() {
        // One side of the inversion happens inside a helper that takes the
        // lock as a parameter — only visible after substitution.
        let src = r#"
            impl Daemon {
                fn a(&self) {
                    let t = self.traces.lock();
                    push_ring(&self.profiles, item);
                }
                fn b(&self) {
                    let p = self.profiles.lock();
                    let t = self.traces.lock();
                }
            }
            fn push_ring(ring: &Ring, item: Item) {
                let g = ring.lock();
            }
        "#;
        let out = run(&LockOrder, &[("crates/cli/src/serve.rs", src)], None);
        assert!(!out.is_empty(), "cycle through helper not detected");
        assert!(out.iter().any(|v| v.message.contains("Daemon.profiles")));
    }

    // ---- L009 ----

    #[test]
    fn l009_deadline_free_helper_flagged() {
        let files = [(
            "crates/query/src/lineage.rs",
            r#"
                pub fn lineage(b: &ProvenanceBrowser, id: NodeId) -> Vec<NodeId> {
                    walk_up(b, id)
                }
                fn walk_up(b: &ProvenanceBrowser, id: NodeId) -> Vec<NodeId> {
                    for e in b.graph.edges_to(id) { out.push(e); }
                    out
                }
                "#,
        )];
        let out = run(&DeadlinePropagation, &files, None);
        assert_eq!(out.len(), 1, "got: {out:?}");
        assert_eq!(out[0].rule, "L009");
        assert!(out[0].message.contains("walk_up"));
        assert!(out[0].message.contains("lineage"));
    }

    #[test]
    fn l009_threaded_budget_is_clean() {
        let files = [(
            "crates/query/src/lineage.rs",
            r#"
                pub fn lineage(b: &ProvenanceBrowser, id: NodeId, dl: &Deadline) -> Vec<NodeId> {
                    walk_up(b, id, dl)
                }
                fn walk_up(b: &ProvenanceBrowser, id: NodeId, dl: &Deadline) -> Vec<NodeId> {
                    for e in b.graph.edges_to(id) {
                        if dl.expired() { break; }
                        out.push(e);
                    }
                    out
                }
                "#,
        )];
        let out = run(&DeadlinePropagation, &files, None);
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn l009_unreachable_loop_not_flagged() {
        // A graph loop in a non-query crate, or unreachable from entries,
        // is out of scope for L009.
        let files = [(
            "crates/storage/src/compact.rs",
            "pub fn sweep(g: &Graph) { for n in g.nodes() { visit(n); } }",
        )];
        let out = run(&DeadlinePropagation, &files, None);
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    // ---- L010 ----

    #[test]
    fn l010_typo_flagged_against_registry() {
        let files = [(
            "crates/query/src/context.rs",
            r#"fn f(obs: &Obs) { obs.counter("query.dedline.hit"); }"#,
        )];
        let out = run(
            &MetricNameRegistry,
            &files,
            Some("counter query.deadline.hit\n"),
        );
        assert_eq!(out.len(), 2, "got: {out:?}");
        // Emit-site typo…
        assert!(out
            .iter()
            .any(|v| v.path.ends_with("context.rs") && v.message.contains("query.dedline.hit")));
        // …and the now-dead registry entry.
        assert!(
            out.iter()
                .any(|v| v.path == METRICS_REGISTRY_PATH
                    && v.message.contains("matches no emit site"))
        );
    }

    #[test]
    fn l010_exact_and_wildcard_matches_are_clean() {
        let files = [(
            "crates/bench/src/main.rs",
            r#"
            fn f(obs: &Obs, name: Str) {
                obs.counter("wal.appends_total");
                obs.histogram(&format!("bench.query.{name}.latency_us"));
            }
            "#,
        )];
        let registry = "counter wal.appends_total\nhistogram bench.query.*.latency_us\n";
        let out = run(&MetricNameRegistry, &files, Some(registry));
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn l010_param_flow_through_observe() {
        // The name is a literal at the call site of a helper; the helper
        // emits through its parameter. The diagnostic lands on the caller.
        let files = [
            (
                "crates/query/src/slo.rs",
                r#"
                pub fn observe(obs: &Obs, use_case: Str, latency_metric: Str, us: u64) {
                    obs.histogram(latency_metric);
                }
                "#,
            ),
            (
                "crates/query/src/context.rs",
                r#"
                pub fn search(b: &ProvenanceBrowser) {
                    crate::slo::observe(obs, uc, "query.context.latency_us", us);
                }
                "#,
            ),
        ];
        let out = run(&MetricNameRegistry, &files, Some("counter other\n"));
        assert!(
            out.iter().any(|v| v.path.ends_with("context.rs")
                && v.message.contains("query.context.latency_us")),
            "param flow missed: {out:?}"
        );
    }

    #[test]
    fn l010_kind_mismatch_and_sanitize_collision() {
        let files = [(
            "crates/obs/src/slo.rs",
            r#"fn f(obs: &Obs) { obs.gauge("bp_slo_burn_rate.5m"); obs.counter("bp_slo_burn_rate.1h"); }"#,
        )];
        let registry = "counter bp_slo_burn_rate.5m\ncounter bp_slo_burn_rate.1h\ncounter bp_slo_burn_rate_5m\n";
        let out = run(&MetricNameRegistry, &files, Some(registry));
        // gauge vs counter mismatch on .5m …
        assert!(
            out.iter().any(|v| v.message.contains("different type")),
            "no kind mismatch: {out:?}"
        );
        // … and .5m vs _5m collide post-sanitization.
        assert!(
            out.iter()
                .any(|v| v.message.contains("collide after Prometheus")),
            "no collision: {out:?}"
        );
    }

    #[test]
    fn l010_missing_registry_only_when_emitting() {
        let emitting = [(
            "crates/obs/src/x.rs",
            r#"fn f(obs: &Obs) { obs.counter("a.b"); }"#,
        )];
        let silent = [("crates/obs/src/x.rs", "fn f() {}")];
        assert_eq!(run(&MetricNameRegistry, &emitting, None).len(), 1);
        assert!(run(&MetricNameRegistry, &silent, None).is_empty());
    }

    #[test]
    fn l010_malformed_line_flagged() {
        let files = [(
            "crates/obs/src/x.rs",
            r#"fn f(obs: &Obs) { obs.counter("a.b"); }"#,
        )];
        let out = run(
            &MetricNameRegistry,
            &files,
            Some("counter a.b\nbogus-kind name\n"),
        );
        assert!(
            out.iter().any(|v| v.message.contains("malformed")),
            "got: {out:?}"
        );
    }

    #[test]
    fn glob_and_intersection_helpers() {
        assert!(glob_match(
            "bench.query.*.latency_us",
            "bench.query.context.latency_us"
        ));
        assert!(!glob_match(
            "bench.query.*.latency_us",
            "bench.query.context.count"
        ));
        assert!(glob_match("*", ""));
        assert!(patterns_intersect("bench.*.latency_us", "bench.query.*"));
        assert!(!patterns_intersect("bench.*.latency_us", "wal.*"));
        assert_eq!(prom_sanitize("bp_slo_burn_rate.5m"), "bp_slo_burn_rate_5m");
        assert_eq!(prom_sanitize("5xx"), "_5xx");
    }
}
