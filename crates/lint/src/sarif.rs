//! SARIF 2.1.0 export.
//!
//! Renders a check report as a Static Analysis Results Interchange
//! Format log so CI can upload findings and annotate PR diffs. The
//! writer is hand-rolled (no serde in this workspace): a tiny JSON
//! string builder with correct escaping, emitting exactly the subset of
//! SARIF that github/codeql-action/upload-sarif consumes — driver
//! metadata, rule descriptors, and one `result` per violation with a
//! physical location.

use crate::diag::Violation;

/// One rule descriptor for the `tool.driver.rules` array.
pub struct RuleMeta {
    /// Rule id (`L001`…).
    pub id: &'static str,
    /// One-line description.
    pub description: String,
}

/// Escapes a string for embedding inside a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full SARIF document.
pub fn render(violations: &[Violation], rules: &[RuleMeta]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"bp-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/browser-provenance/bp\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        esc(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("          \"rules\": [\n");
    for (i, r) in rules.iter().enumerate() {
        out.push_str(&format!(
            "            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}{}\n",
            esc(r.id),
            esc(&r.description),
            if i + 1 < rules.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, v) in violations.iter().enumerate() {
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", esc(v.rule)));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{ \"text\": \"{}\" }},\n",
            esc(&v.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": \"{}\", \"uriBaseId\": \"SRCROOT\" }},\n",
            esc(&v.path)
        ));
        out.push_str(&format!(
            "                \"region\": {{ \"startLine\": {}, \"startColumn\": {} }}\n",
            v.line, v.col
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(&format!(
            "        }}{}\n",
            if i + 1 < violations.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn v(rule: &'static str, path: &str, line: u32, msg: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line,
            col: 3,
            message: msg.to_string(),
            severity: Severity::Error,
        }
    }

    // ---- a minimal JSON parser, used only to validate writer output ----

    #[derive(Debug, PartialEq)]
    enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        fn arr(&self) -> &[Json] {
            match self {
                Json::Arr(a) => a,
                _ => panic!("not an array: {self:?}"),
            }
        }
        fn str(&self) -> &str {
            match self {
                Json::Str(s) => s,
                _ => panic!("not a string: {self:?}"),
            }
        }
    }

    fn parse_json(s: &str) -> Json {
        let b: Vec<char> = s.chars().collect();
        let mut i = 0usize;
        let v = parse_value(&b, &mut i);
        skip_ws(&b, &mut i);
        assert_eq!(i, b.len(), "trailing garbage at {i}");
        v
    }

    fn skip_ws(b: &[char], i: &mut usize) {
        while *i < b.len() && b[*i].is_whitespace() {
            *i += 1;
        }
    }

    fn parse_value(b: &[char], i: &mut usize) -> Json {
        skip_ws(b, i);
        match b[*i] {
            '{' => {
                *i += 1;
                let mut kvs = Vec::new();
                skip_ws(b, i);
                if b[*i] == '}' {
                    *i += 1;
                    return Json::Obj(kvs);
                }
                loop {
                    skip_ws(b, i);
                    let k = match parse_value(b, i) {
                        Json::Str(s) => s,
                        other => panic!("bad key {other:?}"),
                    };
                    skip_ws(b, i);
                    assert_eq!(b[*i], ':');
                    *i += 1;
                    kvs.push((k, parse_value(b, i)));
                    skip_ws(b, i);
                    match b[*i] {
                        ',' => *i += 1,
                        '}' => {
                            *i += 1;
                            return Json::Obj(kvs);
                        }
                        c => panic!("bad obj sep {c}"),
                    }
                }
            }
            '[' => {
                *i += 1;
                let mut arr = Vec::new();
                skip_ws(b, i);
                if b[*i] == ']' {
                    *i += 1;
                    return Json::Arr(arr);
                }
                loop {
                    arr.push(parse_value(b, i));
                    skip_ws(b, i);
                    match b[*i] {
                        ',' => *i += 1,
                        ']' => {
                            *i += 1;
                            return Json::Arr(arr);
                        }
                        c => panic!("bad arr sep {c}"),
                    }
                }
            }
            '"' => {
                *i += 1;
                let mut s = String::new();
                while b[*i] != '"' {
                    if b[*i] == '\\' {
                        *i += 1;
                        match b[*i] {
                            'n' => s.push('\n'),
                            'r' => s.push('\r'),
                            't' => s.push('\t'),
                            'u' => {
                                let hex: String = b[*i + 1..*i + 5].iter().collect();
                                let code = u32::from_str_radix(&hex, 16).expect("hex");
                                s.push(char::from_u32(code).expect("scalar"));
                                *i += 4;
                            }
                            c => s.push(c),
                        }
                    } else {
                        s.push(b[*i]);
                    }
                    *i += 1;
                }
                *i += 1;
                Json::Str(s)
            }
            't' => {
                *i += 4;
                Json::Bool(true)
            }
            'f' => {
                *i += 5;
                Json::Bool(false)
            }
            'n' => {
                *i += 4;
                Json::Null
            }
            _ => {
                let start = *i;
                while *i < b.len()
                    && (b[*i].is_ascii_digit() || matches!(b[*i], '-' | '+' | '.' | 'e' | 'E'))
                {
                    *i += 1;
                }
                let s: String = b[start..*i].iter().collect();
                Json::Num(s.parse().expect("number"))
            }
        }
    }

    #[test]
    fn output_is_valid_json_with_all_findings() {
        let violations = vec![
            v(
                "L007",
                "crates/storage/src/store.rs",
                42,
                "mutation bypasses WAL: a → b",
            ),
            v(
                "L010",
                "crates/obs/src/slo.rs",
                7,
                "metric \"query.dedline.hit\"\nnot in registry",
            ),
        ];
        let rules = vec![
            RuleMeta {
                id: "L007",
                description: "wal-before-mutate".into(),
            },
            RuleMeta {
                id: "L010",
                description: "metric-name-registry".into(),
            },
        ];
        let doc = render(&violations, &rules);
        let json = parse_json(&doc);
        assert_eq!(json.get("version").unwrap().str(), "2.1.0");
        let run = &json.get("runs").unwrap().arr()[0];
        let driver = run.get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").unwrap().str(), "bp-lint");
        assert_eq!(driver.get("rules").unwrap().arr().len(), 2);
        let results = run.get("results").unwrap().arr();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("ruleId").unwrap().str(), "L007");
        let msg = results[1]
            .get("message")
            .unwrap()
            .get("text")
            .unwrap()
            .str();
        assert!(msg.contains("query.dedline.hit"));
        assert!(msg.contains('\n'));
        let loc = &results[0].get("locations").unwrap().arr()[0];
        let phys = loc.get("physicalLocation").unwrap();
        assert_eq!(
            phys.get("artifactLocation")
                .unwrap()
                .get("uri")
                .unwrap()
                .str(),
            "crates/storage/src/store.rs"
        );
        assert_eq!(
            phys.get("region").unwrap().get("startLine").unwrap(),
            &Json::Num(42.0)
        );
    }

    #[test]
    fn empty_report_is_valid() {
        let doc = render(&[], &[]);
        let json = parse_json(&doc);
        let run = &json.get("runs").unwrap().arr()[0];
        assert!(run.get("results").unwrap().arr().is_empty());
    }
}
