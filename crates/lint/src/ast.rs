//! The AST for bp-lint's interprocedural tier.
//!
//! This is a deliberately partial model of Rust: exactly the shapes the
//! whole-program rules (L007–L010) reason about — items, function
//! signatures, blocks, calls, method calls, field accesses, loops, string
//! literals, and macro invocations. Everything else parses into opaque
//! [`Expr::Group`]/[`Item::Other`] nodes so the interesting structure is
//! never hidden behind syntax the parser does not model. See DESIGN.md
//! ("bp-lint v2") for the soundness limits this implies.

/// A byte range in the source file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Span {
    /// First byte.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// A span covering both inputs.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// One parsed source file.
#[derive(Debug, Default)]
pub struct AstFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level or nested item.
#[derive(Debug)]
pub enum Item {
    /// A function (free, method, or associated).
    Fn(FnItem),
    /// An `impl` block; its functions are methods/associated functions of
    /// `type_name`.
    Impl(ImplItem),
    /// An inline module (`mod name { … }`).
    Mod(ModItem),
    /// Anything else (struct, enum, use, const, trait, …) — recorded so
    /// item counting stays honest, otherwise opaque.
    Other,
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplItem {
    /// The self type's final path segment (`ProvenanceStore` for
    /// `impl ProvenanceStore`, `Wal` for `impl fmt::Debug for Wal`).
    pub type_name: String,
    /// The trait being implemented, if any (final segment).
    pub trait_name: Option<String>,
    /// Items inside the block (functions, nested consts → `Other`).
    pub items: Vec<Item>,
}

/// An inline `mod` block.
#[derive(Debug)]
pub struct ModItem {
    /// Module name.
    pub name: String,
    /// Whether the module carries `#[cfg(test)]`.
    pub cfg_test: bool,
    /// Items inside.
    pub items: Vec<Item>,
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Whether any visibility modifier precedes it.
    pub is_pub: bool,
    /// Whether `#[test]` (or `#[cfg(test)]` on the fn itself) decorates it.
    pub is_test: bool,
    /// Parameters in order; a `self` receiver appears as
    /// `("self", "Self")`.
    pub params: Vec<Param>,
    /// Body, absent for declarations (traits, extern blocks).
    pub body: Option<Block>,
    /// Span of the `fn` keyword (diagnostic anchor).
    pub span: Span,
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (first identifier of the pattern).
    pub name: String,
    /// Type as raw source text with single-space token joins.
    pub ty: String,
}

/// A brace-delimited block.
#[derive(Debug, Default)]
pub struct Block {
    /// Expression soup in source order.
    pub exprs: Vec<Expr>,
    /// Span including the braces.
    pub span: Span,
}

/// Loop flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `for pat in iter { … }`
    For,
    /// `while cond { … }` (including `while let`)
    While,
    /// `loop { … }`
    Loop,
}

/// An expression — or, for shapes the parser does not model, a container
/// of child expressions in source order.
#[derive(Debug)]
pub enum Expr {
    /// A (possibly qualified) path: `foo`, `self`, `crate::slo::Deadline`.
    Path {
        /// Path segments (turbofish generics dropped).
        segs: Vec<String>,
        /// Source span.
        span: Span,
    },
    /// A string literal with its cooked value (quotes and prefixes
    /// stripped, escapes left as written — rule matching is on plain
    /// names that contain none).
    StrLit {
        /// Literal contents.
        value: String,
        /// Source span.
        span: Span,
    },
    /// A call through a callee expression: `foo(…)`, `Type::new(…)`.
    Call {
        /// The callee (usually a `Path`).
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
        /// Span of the whole call.
        span: Span,
    },
    /// A method call: `recv.name(…)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments in order (receiver excluded).
        args: Vec<Expr>,
        /// Span of the whole call.
        span: Span,
    },
    /// A field access: `base.name` (also tuple indices: `pair.0`).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// Source span.
        span: Span,
    },
    /// A macro invocation: `name!(…)` — inner tokens parsed as soup so
    /// calls inside `format!`/`write!` arguments are still seen.
    Macro {
        /// Macro name (final path segment).
        name: String,
        /// Inner expression soup.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// A `for`/`while`/`loop` with its body.
    Loop {
        /// Which loop keyword.
        kind: LoopKind,
        /// Header soup (`pat in iter` / condition); empty for `loop`.
        header: Vec<Expr>,
        /// The loop body.
        body: Block,
        /// Span of the loop keyword.
        span: Span,
    },
    /// A nested block (`{ … }`, `if`/`match`/`unsafe` bodies all surface
    /// here).
    Block(Block),
    /// Parenthesized / otherwise-unmodeled syntax with visible children.
    Group {
        /// Child expressions in source order.
        exprs: Vec<Expr>,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// This expression's span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Path { span, .. }
            | Expr::StrLit { span, .. }
            | Expr::Call { span, .. }
            | Expr::MethodCall { span, .. }
            | Expr::Field { span, .. }
            | Expr::Macro { span, .. }
            | Expr::Loop { span, .. }
            | Expr::Group { span, .. } => *span,
            Expr::Block(b) => b.span,
        }
    }

    /// Renders a pure path/field chain (`self.graph`, `state.shared`) as a
    /// dotted string; non-chain bases render as `_` so `logger().filter`
    /// becomes `_.filter`.
    pub fn chain(&self) -> Option<String> {
        match self {
            Expr::Path { segs, .. } => Some(segs.join("::")),
            Expr::Field { base, name, .. } => {
                let head = base.chain().unwrap_or_else(|| "_".to_owned());
                Some(format!("{head}.{name}"))
            }
            Expr::Call { .. } | Expr::MethodCall { .. } => Some("_".to_owned()),
            _ => None,
        }
    }

    /// Final identifier of a path/field chain (`graph` for `self.graph`,
    /// `counters` for `&self.counters` after the parser drops the `&`).
    pub fn last_ident(&self) -> Option<&str> {
        match self {
            Expr::Path { segs, .. } => segs.last().map(String::as_str),
            Expr::Field { name, .. } => Some(name.as_str()),
            _ => None,
        }
    }
}
