//! # bp-lint — repo-specific static analysis for the provenance store
//!
//! The paper's claims rest on the provenance store being trustworthy: a
//! durable on-disk format (deterministic bytes, no silent truncation) and
//! queries that stay inside the 200 ms interactive bound. This crate is a
//! from-scratch static-analysis pass — a hand-rolled Rust token lexer plus
//! a rule engine — that machine-enforces those invariants over every
//! workspace `.rs` file, so regressions cannot silently re-enter:
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | L001 | no raw `Instant::now()`/`SystemTime::now()` outside `bp_obs::clock` |
//! | L002 | no `unwrap`/`expect`/`panic!`/`unreachable!` in library-crate non-test code |
//! | L003 | no lossy numeric `as` casts in the storage/text codecs |
//! | L004 | no default-hasher map iteration feeding an encoder (replay determinism) |
//! | L005 | every public query entry point consults `slo::Deadline` before iterating |
//! | L006 | no bare `println!`/`eprintln!`/`dbg!` in library crates — use `bp_obs::log` |
//! | L007 | every store mutation is WAL-dominated on all public call paths |
//! | L008 | the cross-crate lock-order graph is acyclic (no potential deadlock) |
//! | L009 | graph loops reachable from query entry points thread an `slo::Deadline` |
//! | L010 | every emitted metric name appears in `METRICS.registry` (and vice versa) |
//!
//! L001–L006 are token-level and file-local. L007–L010 are the v2
//! interprocedural tier: a hand-rolled recursive-descent parser
//! ([`parser`]) builds an AST ([`ast`]), per-file fact extraction
//! ([`symbols`]) distills functions/calls/locks/metric emissions, and a
//! cross-crate call graph ([`callgraph`]) supports whole-program
//! reachability and dataflow. Results can be exported as SARIF 2.1.0
//! ([`sarif`]) and warm runs reuse a content-hash cache ([`cache`]).
//!
//! Violations can be suppressed site-by-site with
//! `// bp-lint: allow(L00X): <reason>` — the reason is mandatory, and a
//! missing one is itself a violation (`L000`).
//!
//! Run `cargo run -p bp-lint -- check` (non-zero exit on violations) or
//! `-- fix` for the mechanically safe rewrites.

pub mod ast;
pub mod cache;
pub mod callgraph;
pub mod diag;
pub mod engine;
pub mod fixer;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod symbols;

pub use diag::{Severity, Violation};
pub use engine::{check_root, CheckReport, Engine};
