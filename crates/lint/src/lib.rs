//! # bp-lint — repo-specific static analysis for the provenance store
//!
//! The paper's claims rest on the provenance store being trustworthy: a
//! durable on-disk format (deterministic bytes, no silent truncation) and
//! queries that stay inside the 200 ms interactive bound. This crate is a
//! from-scratch static-analysis pass — a hand-rolled Rust token lexer plus
//! a rule engine — that machine-enforces those invariants over every
//! workspace `.rs` file, so regressions cannot silently re-enter:
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | L001 | no raw `Instant::now()`/`SystemTime::now()` outside `bp_obs::clock` |
//! | L002 | no `unwrap`/`expect`/`panic!`/`unreachable!` in library-crate non-test code |
//! | L003 | no lossy numeric `as` casts in the storage/text codecs |
//! | L004 | no default-hasher map iteration feeding an encoder (replay determinism) |
//! | L005 | every public query entry point consults `slo::Deadline` before iterating |
//! | L006 | no bare `println!`/`eprintln!`/`dbg!` in library crates — use `bp_obs::log` |
//!
//! Violations can be suppressed site-by-site with
//! `// bp-lint: allow(L00X): <reason>` — the reason is mandatory, and a
//! missing one is itself a violation (`L000`).
//!
//! Run `cargo run -p bp-lint -- check` (non-zero exit on violations) or
//! `-- fix` for the mechanically safe rewrites.

pub mod diag;
pub mod engine;
pub mod fixer;
pub mod lexer;
pub mod rules;

pub use diag::{Severity, Violation};
pub use engine::{check_root, CheckReport, Engine};
