//! Recursive-descent parser for the Rust subset this workspace uses.
//!
//! Consumes the flat token stream from [`crate::lexer`] plus the
//! delimiter match table and produces the [`crate::ast`] item tree. The
//! grammar is intentionally shallow: items (fn / impl / mod), function
//! signatures, and inside bodies an "expression soup" where only the
//! shapes the interprocedural rules need — paths, string literals,
//! calls, method calls, field accesses, macro invocations, loops, and
//! nested blocks — get structured nodes. `if`/`match`/`let`/operators
//! dissolve into the soup, which is sound for our rules because they
//! only ask "which calls happen inside this function (and are they
//! inside a loop)", never "under which condition".

use crate::ast::{AstFile, Block, Expr, FnItem, ImplItem, Item, LoopKind, ModItem, Param, Span};
use crate::lexer::{Lexed, Token, TokenKind};

/// Keywords that can never begin a path expression. `self`, `Self`,
/// `crate`, and `super` are deliberately absent — they are path segments.
const STMT_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "dyn", "else", "enum", "extern",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "union", "unsafe", "use", "where", "while",
    "yield", "_",
];

struct Parser<'a> {
    src: &'a str,
    toks: &'a [Token],
    close: &'a [usize],
}

/// Parses one file into an [`AstFile`]. Never fails: unrecognized syntax
/// degrades to [`Item::Other`] / skipped tokens, it does not abort.
pub fn parse_file(src: &str, lexed: &Lexed, match_close: &[usize]) -> AstFile {
    let p = Parser {
        src,
        toks: &lexed.tokens,
        close: match_close,
    };
    let mut items = Vec::new();
    p.parse_items(0, p.toks.len(), &mut items);
    AstFile { items }
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &'a str {
        let t = &self.toks[i];
        &self.src[t.start..t.end]
    }

    fn is(&self, i: usize, s: &str) -> bool {
        i < self.toks.len() && self.text(i) == s
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    fn tok_span(&self, i: usize) -> Span {
        Span {
            start: self.toks[i].start,
            end: self.toks[i].end,
        }
    }

    /// A valid in-range match for the opener at `i`, if any.
    fn closer(&self, i: usize, end: usize) -> Option<usize> {
        let c = *self.close.get(i)?;
        (c != usize::MAX && c < end).then_some(c)
    }

    // ----- items -------------------------------------------------------

    fn parse_items(&self, start: usize, end: usize, out: &mut Vec<Item>) {
        let mut i = start;
        let mut pending_cfg_test = false;
        let mut pending_test = false;
        let mut pending_pub = false;
        while i < end {
            let t = self.text(i);
            // Attribute: #[...] or #![...]
            if t == "#" && (self.is(i + 1, "[") || (self.is(i + 1, "!") && self.is(i + 2, "["))) {
                let open = if self.is(i + 1, "[") { i + 1 } else { i + 2 };
                let Some(close) = self.closer(open, end) else {
                    i += 1;
                    continue;
                };
                let mut has_cfg = false;
                let mut has_test = false;
                for j in open + 1..close {
                    match self.text(j) {
                        "cfg" => has_cfg = true,
                        "test" => has_test = true,
                        _ => {}
                    }
                }
                if has_cfg && has_test {
                    pending_cfg_test = true;
                } else if has_test {
                    pending_test = true;
                }
                i = close + 1;
                continue;
            }
            match t {
                "pub" => {
                    pending_pub = true;
                    if self.is(i + 1, "(") {
                        i = self.closer(i + 1, end).map_or(i + 2, |c| c + 1);
                    } else {
                        i += 1;
                    }
                }
                "unsafe" | "async" => i += 1,
                "const" => {
                    // `const fn` is a modifier; `const NAME: T = …;` is an item.
                    if matches!(
                        self.toks.get(i + 1).map(|_| self.text(i + 1)),
                        Some("fn") | Some("unsafe") | Some("async") | Some("extern")
                    ) {
                        i += 1;
                    } else {
                        i = self.skip_item(i + 1, end);
                        out.push(Item::Other);
                        (pending_pub, pending_cfg_test, pending_test) = (false, false, false);
                    }
                }
                "extern" => {
                    if self.kind(i + 1) == Some(TokenKind::Str) {
                        i += 2; // extern "C" fn …
                    } else {
                        i = self.skip_item(i + 1, end);
                        out.push(Item::Other);
                        (pending_pub, pending_cfg_test, pending_test) = (false, false, false);
                    }
                }
                "fn" => {
                    if let Some((mut f, resume)) = self.parse_fn(i, end) {
                        f.is_pub = pending_pub;
                        f.is_test = pending_test || pending_cfg_test;
                        out.push(Item::Fn(f));
                        i = resume;
                    } else {
                        i += 1;
                    }
                    (pending_pub, pending_cfg_test, pending_test) = (false, false, false);
                }
                "impl" => {
                    let (item, resume) = self.parse_impl(i, end);
                    out.push(item);
                    i = resume;
                    (pending_pub, pending_cfg_test, pending_test) = (false, false, false);
                }
                "mod" => {
                    let (item, resume) = self.parse_mod(i, end, pending_cfg_test);
                    out.push(item);
                    i = resume;
                    (pending_pub, pending_cfg_test, pending_test) = (false, false, false);
                }
                "struct" | "enum" | "union" | "trait" | "use" | "static" | "type"
                | "macro_rules" => {
                    i = self.skip_item(i + 1, end);
                    out.push(Item::Other);
                    (pending_pub, pending_cfg_test, pending_test) = (false, false, false);
                }
                _ => {
                    i += 1;
                    (pending_pub, pending_cfg_test, pending_test) = (false, false, false);
                }
            }
        }
    }

    /// Skips to the end of an unmodeled item: past a top-level `;`, or
    /// past the item's `{ … }` body, whichever comes first.
    fn skip_item(&self, start: usize, end: usize) -> usize {
        let mut i = start;
        while i < end {
            match self.text(i) {
                ";" => return i + 1,
                "(" | "[" => match self.closer(i, end) {
                    Some(c) => i = c + 1,
                    None => return i + 1,
                },
                "{" => return self.closer(i, end).map_or(i + 1, |c| c + 1),
                _ => i += 1,
            }
        }
        end
    }

    fn parse_impl(&self, at: usize, end: usize) -> (Item, usize) {
        let mut j = at + 1;
        if self.is(j, "<") {
            match self.skip_angles(j, end) {
                Some(n) => j = n,
                None => return (Item::Other, at + 1),
            }
        }
        let mut first: Vec<String> = Vec::new();
        let mut second: Vec<String> = Vec::new();
        let mut saw_for = false;
        while j < end && !self.is(j, "{") {
            match self.text(j) {
                "where" => {
                    while j < end && !self.is(j, "{") {
                        if matches!(self.text(j), "(" | "[") {
                            match self.closer(j, end) {
                                Some(c) => j = c,
                                None => return (Item::Other, j + 1),
                            }
                        }
                        j += 1;
                    }
                    break;
                }
                "for" => {
                    saw_for = true;
                    j += 1;
                }
                "<" => match self.skip_angles(j, end) {
                    Some(n) => j = n,
                    None => j += 1,
                },
                t => {
                    if self.kind(j) == Some(TokenKind::Ident) {
                        let dest = if saw_for { &mut second } else { &mut first };
                        dest.push(t.to_string());
                    }
                    j += 1;
                }
            }
        }
        if j >= end || !self.is(j, "{") {
            return (Item::Other, j.min(end));
        }
        let Some(close) = self.closer(j, end) else {
            return (Item::Other, j + 1);
        };
        let (trait_name, type_path) = if saw_for {
            (first.last().cloned(), second)
        } else {
            (None, first)
        };
        let type_name = type_path.last().cloned().unwrap_or_default();
        let mut items = Vec::new();
        self.parse_items(j + 1, close, &mut items);
        (
            Item::Impl(ImplItem {
                type_name,
                trait_name,
                items,
            }),
            close + 1,
        )
    }

    fn parse_mod(&self, at: usize, end: usize, cfg_test: bool) -> (Item, usize) {
        let name_i = at + 1;
        if name_i >= end || self.kind(name_i) != Some(TokenKind::Ident) {
            return (Item::Other, at + 1);
        }
        let name = self.text(name_i).to_string();
        if self.is(name_i + 1, "{") {
            if let Some(close) = self.closer(name_i + 1, end) {
                let mut items = Vec::new();
                self.parse_items(name_i + 2, close, &mut items);
                return (
                    Item::Mod(ModItem {
                        name,
                        cfg_test,
                        items,
                    }),
                    close + 1,
                );
            }
        }
        // `mod name;` — out-of-line module, nothing to parse here.
        (Item::Other, self.skip_item(name_i + 1, end))
    }

    fn parse_fn(&self, at: usize, end: usize) -> Option<(FnItem, usize)> {
        let name_i = at + 1;
        if name_i >= end || self.kind(name_i) != Some(TokenKind::Ident) {
            return None;
        }
        let name = self.text(name_i).to_string();
        let mut j = name_i + 1;
        if self.is(j, "<") {
            j = self.skip_angles(j, end)?;
        }
        if !self.is(j, "(") {
            return None;
        }
        let pclose = self.closer(j, end)?;
        let params = self.parse_params(j + 1, pclose);
        // Return type / where clause, then `{` body or `;` declaration.
        let mut k = pclose + 1;
        let mut body = None;
        let mut resume = pclose + 1;
        while k < end {
            match self.text(k) {
                ";" => {
                    resume = k + 1;
                    break;
                }
                "{" => {
                    if let Some(c) = self.closer(k, end) {
                        body = Some(self.parse_block(k, c));
                        resume = c + 1;
                    } else {
                        resume = k + 1;
                    }
                    break;
                }
                "(" | "[" => match self.closer(k, end) {
                    Some(c) => {
                        k = c + 1;
                        resume = k;
                    }
                    None => {
                        resume = k + 1;
                        break;
                    }
                },
                _ => {
                    k += 1;
                    resume = k;
                }
            }
        }
        Some((
            FnItem {
                name,
                is_pub: false,
                is_test: false,
                params,
                body,
                span: self.tok_span(at),
            },
            resume,
        ))
    }

    /// Splits a parameter list at top-level commas; commas inside angle
    /// brackets (generic args) and delimiter groups do not split.
    fn parse_params(&self, start: usize, end: usize) -> Vec<Param> {
        let mut out = Vec::new();
        let mut i = start;
        let mut piece = start;
        let mut angle = 0i32;
        while i < end {
            match self.text(i) {
                "(" | "[" | "{" => {
                    match self.closer(i, end) {
                        Some(c) => i = c + 1,
                        None => i += 1,
                    }
                    continue;
                }
                "<" => angle += 1,
                ">" if angle > 0 && !(i > start && self.text(i - 1) == "-") => angle -= 1,
                "," if angle == 0 => {
                    if let Some(p) = self.parse_param(piece, i) {
                        out.push(p);
                    }
                    piece = i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        if let Some(p) = self.parse_param(piece, end) {
            out.push(p);
        }
        out
    }

    fn parse_param(&self, start: usize, end: usize) -> Option<Param> {
        if start >= end {
            return None;
        }
        // Find the top-level `:` separating pattern from type.
        let mut colon = None;
        let mut j = start;
        while j < end {
            match self.text(j) {
                "(" | "[" | "{" => match self.closer(j, end) {
                    Some(c) => {
                        j = c + 1;
                        continue;
                    }
                    None => break,
                },
                ":" if !self.is(j + 1, ":") && (j == start || self.text(j - 1) != ":") => {
                    colon = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let pat_end = colon.unwrap_or(end);
        let mut name = String::new();
        for k in start..pat_end {
            if self.kind(k) == Some(TokenKind::Ident) {
                let t = self.text(k);
                if t == "mut" || t == "ref" {
                    continue;
                }
                name = t.to_string();
                break;
            }
        }
        if name.is_empty() {
            name = "_".to_string();
        }
        let ty = match colon {
            Some(c) => self.join_tokens(c + 1, end),
            None if name == "self" => "Self".to_string(),
            None => String::new(),
        };
        Some(Param { name, ty })
    }

    fn join_tokens(&self, start: usize, end: usize) -> String {
        let mut s = String::new();
        for i in start..end.min(self.toks.len()) {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(self.text(i));
        }
        s
    }

    /// Skips a `<…>` group starting at `at` (which must be `<`), honoring
    /// nested delimiters and the `->` arrow inside fn-pointer types.
    /// Returns the index just past the matching `>`, or `None` when the
    /// `<` turns out to be a comparison (hits `;` or runs out of tokens).
    fn skip_angles(&self, at: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = at;
        while j < end {
            match self.text(j) {
                "<" => depth += 1,
                ">" if j == 0 || self.text(j - 1) != "-" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j + 1);
                    }
                }
                "(" | "[" | "{" => match self.closer(j, end) {
                    Some(c) => j = c,
                    None => return None,
                },
                ";" => return None,
                _ => {}
            }
            j += 1;
        }
        None
    }

    // ----- expressions -------------------------------------------------

    fn parse_block(&self, open: usize, close: usize) -> Block {
        Block {
            exprs: self.parse_exprs(open + 1, close),
            span: Span {
                start: self.toks[open].start,
                end: self.toks[close].end,
            },
        }
    }

    fn parse_exprs(&self, start: usize, end: usize) -> Vec<Expr> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            let t = self.text(i);
            // Attributes inside blocks: skip wholesale.
            if t == "#" && self.is(i + 1, "[") {
                i = self.closer(i + 1, end).map_or(i + 1, |c| c + 1);
                continue;
            }
            match t {
                "for" | "while" => {
                    // Header runs to the first top-level `{` (struct
                    // literals are not legal in loop headers).
                    let mut j = i + 1;
                    let mut body_open = None;
                    while j < end {
                        match self.text(j) {
                            "(" | "[" => match self.closer(j, end) {
                                Some(c) => j = c + 1,
                                None => break,
                            },
                            "{" => {
                                body_open = Some(j);
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    let Some(ob) = body_open else {
                        i += 1;
                        continue;
                    };
                    let Some(cb) = self.closer(ob, end) else {
                        i += 1;
                        continue;
                    };
                    let kind = if t == "for" {
                        LoopKind::For
                    } else {
                        LoopKind::While
                    };
                    out.push(Expr::Loop {
                        kind,
                        header: self.parse_exprs(i + 1, ob),
                        body: self.parse_block(ob, cb),
                        span: self.tok_span(i),
                    });
                    i = cb + 1;
                }
                "loop" if self.is(i + 1, "{") => {
                    let Some(cb) = self.closer(i + 1, end) else {
                        i += 1;
                        continue;
                    };
                    out.push(Expr::Loop {
                        kind: LoopKind::Loop,
                        header: Vec::new(),
                        body: self.parse_block(i + 1, cb),
                        span: self.tok_span(i),
                    });
                    i = cb + 1;
                }
                "{" => match self.closer(i, end) {
                    Some(c) => {
                        out.push(Expr::Block(self.parse_block(i, c)));
                        i = c + 1;
                    }
                    None => i += 1,
                },
                "[" => match self.closer(i, end) {
                    Some(c) => {
                        out.push(Expr::Group {
                            exprs: self.parse_exprs(i + 1, c),
                            span: self.tok_span(i).to(self.tok_span(c)),
                        });
                        i = c + 1;
                    }
                    None => i += 1,
                },
                _ => match self.parse_postfix(i, end) {
                    Some((e, ni)) => {
                        out.push(e);
                        i = ni;
                    }
                    None => i += 1,
                },
            }
        }
        out
    }

    fn parse_postfix(&self, at: usize, end: usize) -> Option<(Expr, usize)> {
        let (mut e, mut i) = self.parse_primary(at, end)?;
        while i < end {
            match self.text(i) {
                "." if i + 1 < end
                    && matches!(self.kind(i + 1), Some(TokenKind::Ident | TokenKind::Number)) =>
                {
                    let name = self.text(i + 1).to_string();
                    let mut j = i + 2;
                    // Turbofish: .collect::<Vec<_>>()
                    if self.is(j, ":") && self.is(j + 1, ":") && self.is(j + 2, "<") {
                        match self.skip_angles(j + 2, end) {
                            Some(n) => j = n,
                            None => {
                                // Malformed; treat as a field and stop.
                                e = Expr::Field {
                                    base: Box::new(e),
                                    name,
                                    span: self.tok_span(i + 1),
                                };
                                i += 2;
                                continue;
                            }
                        }
                    }
                    if self.is(j, "(") {
                        if let Some(c) = self.closer(j, end) {
                            let span = e.span().to(self.tok_span(c));
                            e = Expr::MethodCall {
                                recv: Box::new(e),
                                name,
                                args: self.parse_args(j, c),
                                span,
                            };
                            i = c + 1;
                            continue;
                        }
                    }
                    let span = e.span().to(self.tok_span(i + 1));
                    e = Expr::Field {
                        base: Box::new(e),
                        name,
                        span,
                    };
                    i += 2;
                }
                "(" => {
                    let Some(c) = self.closer(i, end) else { break };
                    let span = e.span().to(self.tok_span(c));
                    e = Expr::Call {
                        callee: Box::new(e),
                        args: self.parse_args(i, c),
                        span,
                    };
                    i = c + 1;
                }
                "!" if matches!(e, Expr::Path { .. })
                    && i + 1 < end
                    && matches!(self.text(i + 1), "(" | "[" | "{") =>
                {
                    let Some(c) = self.closer(i + 1, end) else {
                        break;
                    };
                    let name = match &e {
                        Expr::Path { segs, .. } => segs.last().cloned().unwrap_or_default(),
                        _ => String::new(),
                    };
                    let span = e.span().to(self.tok_span(c));
                    e = Expr::Macro {
                        name,
                        args: self.parse_exprs(i + 2, c),
                        span,
                    };
                    i = c + 1;
                }
                "?" => i += 1,
                "[" => match self.closer(i, end) {
                    Some(c) => i = c + 1, // indexing: skip the index
                    None => break,
                },
                _ => break,
            }
        }
        Some((e, i))
    }

    fn parse_primary(&self, at: usize, end: usize) -> Option<(Expr, usize)> {
        match self.kind(at)? {
            TokenKind::Str => Some((
                Expr::StrLit {
                    value: cook_str(self.text(at)),
                    span: self.tok_span(at),
                },
                at + 1,
            )),
            TokenKind::Ident if !STMT_KEYWORDS.contains(&self.text(at)) => {
                let mut segs = vec![self.text(at).to_string()];
                let mut j = at + 1;
                let mut last = at;
                while j + 1 < end
                    && self.is(j, ":")
                    && self.is(j + 1, ":")
                    && self.toks[j].end == self.toks[j + 1].start
                {
                    let k = j + 2;
                    if k < end
                        && self.kind(k) == Some(TokenKind::Ident)
                        && !STMT_KEYWORDS.contains(&self.text(k))
                    {
                        segs.push(self.text(k).to_string());
                        last = k;
                        j = k + 1;
                    } else if k < end && self.is(k, "<") {
                        // Mid-path turbofish: Vec::<u8>::new
                        match self.skip_angles(k, end) {
                            Some(n) => j = n,
                            None => break,
                        }
                    } else {
                        break;
                    }
                }
                Some((
                    Expr::Path {
                        segs,
                        span: self.tok_span(at).to(self.tok_span(last)),
                    },
                    j,
                ))
            }
            TokenKind::Punct if self.is(at, "(") => {
                let c = self.closer(at, end)?;
                Some((
                    Expr::Group {
                        exprs: self.parse_exprs(at + 1, c),
                        span: self.tok_span(at).to(self.tok_span(c)),
                    },
                    c + 1,
                ))
            }
            _ => None,
        }
    }

    /// Splits `( … )` arguments at top-level commas; each argument that
    /// parses to exactly one expression is that expression, anything
    /// messier becomes a [`Expr::Group`].
    fn parse_args(&self, open: usize, close: usize) -> Vec<Expr> {
        let mut out = Vec::new();
        let mut i = open + 1;
        let mut piece = i;
        let mut angle = 0i32;
        while i < close {
            match self.text(i) {
                "(" | "[" | "{" => {
                    match self.closer(i, close) {
                        Some(c) => i = c + 1,
                        None => i += 1,
                    }
                    continue;
                }
                // Turbofish generics can hold commas: f(Vec::<(A, B)>::new()).
                "<" if i > open + 1 && self.text(i - 1) == ":" => angle += 1,
                ">" if angle > 0 && self.text(i - 1) != "-" => angle -= 1,
                "," if angle == 0 => {
                    self.push_arg(piece, i, &mut out);
                    piece = i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        self.push_arg(piece, close, &mut out);
        out
    }

    fn push_arg(&self, start: usize, end: usize, out: &mut Vec<Expr>) {
        if start >= end {
            return;
        }
        let mut exprs = self.parse_exprs(start, end);
        if exprs.len() == 1 {
            out.push(exprs.pop().expect("len checked"));
        } else {
            let span = self.tok_span(start).to(self.tok_span(end - 1));
            out.push(Expr::Group { exprs, span });
        }
    }
}

/// Strips string-literal prefixes, hash fences, and quotes, returning the
/// raw contents (escape sequences left as written).
fn cook_str(raw: &str) -> String {
    let mut s = raw;
    if let Some(r) = s.strip_prefix('b') {
        s = r;
    }
    let mut hashes = 0usize;
    if let Some(r) = s.strip_prefix('r') {
        s = r;
        while let Some(r2) = s.strip_prefix('#') {
            s = r2;
            hashes += 1;
        }
    }
    let mut s = s.strip_prefix('"').unwrap_or(s);
    for _ in 0..hashes {
        s = s.strip_suffix('#').unwrap_or(s);
    }
    s.strip_suffix('"').unwrap_or(s).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::match_delims;
    use crate::lexer::lex;

    fn parse(src: &str) -> AstFile {
        let lexed = lex(src);
        let close = match_delims(&lexed, src);
        parse_file(src, &lexed, &close)
    }

    /// Collects (name, argc) for every call/method-call in an expr tree.
    fn calls(exprs: &[Expr], out: &mut Vec<(String, usize)>) {
        for e in exprs {
            match e {
                Expr::Call { callee, args, .. } => {
                    if let Expr::Path { segs, .. } = callee.as_ref() {
                        out.push((segs.last().cloned().unwrap_or_default(), args.len()));
                    }
                    calls(args, out);
                }
                Expr::MethodCall {
                    recv, name, args, ..
                } => {
                    out.push((name.clone(), args.len()));
                    calls(std::slice::from_ref(recv.as_ref()), out);
                    calls(args, out);
                }
                Expr::Field { base, .. } => calls(std::slice::from_ref(base.as_ref()), out),
                Expr::Macro { args, .. } | Expr::Group { exprs: args, .. } => calls(args, out),
                Expr::Loop { header, body, .. } => {
                    calls(header, out);
                    calls(&body.exprs, out);
                }
                Expr::Block(b) => calls(&b.exprs, out),
                Expr::Path { .. } | Expr::StrLit { .. } => {}
            }
        }
    }

    fn fn_calls(f: &FnItem) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        if let Some(b) = &f.body {
            calls(&b.exprs, &mut out);
        }
        out
    }

    #[test]
    fn items_fns_impls_mods() {
        let src = r#"
            pub struct Store { x: u32 }
            impl Store {
                pub fn open(dir: &Path) -> Self { Store { x: 0 } }
                fn helper(&mut self, n: u32) { self.x = n; }
            }
            impl fmt::Debug for Store {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {}
            }
            pub fn free() {}
        "#;
        let ast = parse(src);
        let mut impls = Vec::new();
        let mut mods = Vec::new();
        let mut frees = Vec::new();
        for it in &ast.items {
            match it {
                Item::Impl(i) => impls.push(i),
                Item::Mod(m) => mods.push(m),
                Item::Fn(f) => frees.push(f),
                Item::Other => {}
            }
        }
        assert_eq!(impls.len(), 2);
        assert_eq!(impls[0].type_name, "Store");
        assert_eq!(impls[0].trait_name, None);
        assert_eq!(impls[1].type_name, "Store");
        assert_eq!(impls[1].trait_name.as_deref(), Some("Debug"));
        let open = match &impls[0].items[0] {
            Item::Fn(f) => f,
            other => panic!("expected fn, got {other:?}"),
        };
        assert_eq!(open.name, "open");
        assert!(open.is_pub);
        assert_eq!(open.params[0].name, "dir");
        assert!(open.params[0].ty.contains("Path"));
        let helper = match &impls[0].items[1] {
            Item::Fn(f) => f,
            other => panic!("expected fn, got {other:?}"),
        };
        assert_eq!(helper.params[0].name, "self");
        assert_eq!(helper.params[1].name, "n");
        assert_eq!(mods.len(), 1);
        assert!(mods[0].cfg_test);
        assert_eq!(frees.len(), 1);
        assert_eq!(frees[0].name, "free");
        assert!(frees[0].is_pub);
    }

    #[test]
    fn method_chains_and_calls() {
        let src = r#"
            fn f(obs: &Obs) {
                obs.counter("wal.appends_total").inc();
                self.wal.append(payload)?;
                crate::slo::observe(obs, "context", "query.context.latency_us");
                let v = Vec::<u8>::new();
                items.iter().map(|x| x.weight()).collect::<Vec<_>>();
            }
        "#;
        let ast = parse(src);
        let f = match &ast.items[0] {
            Item::Fn(f) => f,
            other => panic!("expected fn, got {other:?}"),
        };
        let got = fn_calls(f);
        assert!(got.contains(&("counter".into(), 1)));
        assert!(got.contains(&("inc".into(), 0)));
        assert!(got.contains(&("append".into(), 1)));
        assert!(got.contains(&("observe".into(), 3)));
        assert!(got.contains(&("new".into(), 0)));
        assert!(got.contains(&("collect".into(), 0)));
        assert!(got.contains(&("weight".into(), 0)));
    }

    #[test]
    fn loops_capture_header_and_body() {
        let src = r#"
            fn g(&self) {
                for n in self.graph.nodes() {
                    self.visit(n);
                }
                while queue.pop().is_some() {}
                loop { break; }
            }
        "#;
        let ast = parse(src);
        let f = match &ast.items[0] {
            Item::Fn(f) => f,
            other => panic!("expected fn, got {other:?}"),
        };
        let body = f.body.as_ref().expect("body");
        let kinds: Vec<LoopKind> = body
            .exprs
            .iter()
            .filter_map(|e| match e {
                Expr::Loop { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![LoopKind::For, LoopKind::While, LoopKind::Loop]);
        let Expr::Loop { header, body, .. } = &body.exprs[0] else {
            panic!("expected loop");
        };
        let mut hdr = Vec::new();
        calls(header, &mut hdr);
        assert!(hdr.contains(&("nodes".into(), 0)));
        let mut inner = Vec::new();
        calls(&body.exprs, &mut inner);
        assert!(inner.contains(&("visit".into(), 1)));
    }

    #[test]
    fn macros_and_string_literals() {
        let src = r#"
            fn h(obs: &Obs, name: &str) {
                obs.histogram(&format!("bench.query.{name}.latency_us"));
                assert_eq!(compute(1), 2);
            }
        "#;
        let ast = parse(src);
        let f = match &ast.items[0] {
            Item::Fn(f) => f,
            other => panic!("expected fn, got {other:?}"),
        };
        let body = f.body.as_ref().expect("body");
        // histogram's single arg is the format! macro (after `&`).
        let Expr::MethodCall { name, args, .. } = &body.exprs[0] else {
            panic!("expected method call, got {:?}", body.exprs[0]);
        };
        assert_eq!(name, "histogram");
        assert_eq!(args.len(), 1);
        let Expr::Macro { name, args, .. } = &args[0] else {
            panic!("expected macro arg, got {:?}", args[0]);
        };
        assert_eq!(name, "format");
        let Expr::StrLit { value, .. } = &args[0] else {
            panic!("expected str literal");
        };
        assert_eq!(value, "bench.query.{name}.latency_us");
        // Calls inside macros are visible.
        let got = fn_calls(f);
        assert!(got.contains(&("compute".into(), 1)));
    }

    #[test]
    fn chains_render_receivers() {
        let src = "fn f(&self) { self.graph.add_node(n); state.shared.read(); }";
        let ast = parse(src);
        let f = match &ast.items[0] {
            Item::Fn(f) => f,
            other => panic!("expected fn, got {other:?}"),
        };
        let body = f.body.as_ref().expect("body");
        let Expr::MethodCall { recv, name, .. } = &body.exprs[0] else {
            panic!("expected method call");
        };
        assert_eq!(name, "add_node");
        assert_eq!(recv.chain().as_deref(), Some("self.graph"));
        let Expr::MethodCall { recv, name, .. } = &body.exprs[1] else {
            panic!("expected method call");
        };
        assert_eq!(name, "read");
        assert_eq!(recv.chain().as_deref(), Some("state.shared"));
        assert_eq!(recv.last_ident(), Some("shared"));
    }

    #[test]
    fn cook_str_variants() {
        assert_eq!(cook_str("\"abc\""), "abc");
        assert_eq!(cook_str("r#\"a\"b\"#"), "a\"b");
        assert_eq!(cook_str("b\"xyz\""), "xyz");
    }

    #[test]
    fn test_attr_marks_fn() {
        let src = "#[test]\nfn t() {}\npub fn real() {}";
        let ast = parse(src);
        let flags: Vec<(String, bool)> = ast
            .items
            .iter()
            .filter_map(|it| match it {
                Item::Fn(f) => Some((f.name.clone(), f.is_test)),
                _ => None,
            })
            .collect();
        assert_eq!(
            flags,
            vec![("t".to_string(), true), ("real".to_string(), false)]
        );
    }
}
