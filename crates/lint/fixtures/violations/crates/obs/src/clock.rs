//! Fixture: the one sanctioned raw-clock file — L001 exempts this path.

pub fn anchor() -> std::time::Instant {
    std::time::Instant::now()
}
