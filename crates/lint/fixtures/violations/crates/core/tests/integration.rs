//! Fixture: files under tests/ are wholly test scope — panics allowed.

#[test]
fn unwrap_is_fine_here() {
    let v: Option<u32> = Some(1);
    assert_eq!(v.unwrap(), 1);
}
