//! Fixture: L001 + L002 violations, one justified allowlist, and one
//! reasonless directive (L000). Never compiled — input for golden tests.

use std::time::Instant;

pub fn capture_latency() -> std::time::Duration {
    let t0 = Instant::now();
    t0.elapsed()
}

pub fn risky(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn sanctioned(v: Option<u32>) -> u32 {
    // bp-lint: allow(L002): fixture demonstrating a justified suppression
    v.unwrap()
}

// bp-lint: allow(L002)
pub fn reasonless(v: Option<u32>) -> u32 {
    v.unwrap()
}
