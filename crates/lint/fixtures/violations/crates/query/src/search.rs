//! Fixture: a pub query entry point that loops without a deadline (L005),
//! next to a compliant sibling and an exempt private helper.

use bp_core::ProvenanceBrowser;

pub fn unbounded_scan(browser: &ProvenanceBrowser, limit: u32) -> u32 {
    let mut n = 0;
    for _ in 0..limit {
        n += 1;
    }
    n
}

pub fn bounded_scan(browser: &ProvenanceBrowser, limit: u32) -> u32 {
    let deadline = crate::slo::Deadline::unbounded(&clock());
    let mut n = 0;
    for _ in 0..limit {
        if deadline.expired() {
            break;
        }
        n += 1;
    }
    n
}

fn clock() -> bp_obs::ClockHandle {
    bp_obs::ClockHandle::real()
}
