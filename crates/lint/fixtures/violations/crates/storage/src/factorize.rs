//! Fixture: hash-order iteration feeding an encoder (L004).

use std::collections::HashMap;

pub fn encode_dict(dict: &HashMap<u32, u64>, out: &mut Vec<u8>) {
    for (id, count) in dict.iter() {
        write_u64(out, u64::from(*id));
        write_u64(out, *count);
    }
}

fn write_u64(_out: &mut Vec<u8>, _v: u64) {}
