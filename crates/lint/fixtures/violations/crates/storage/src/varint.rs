//! Fixture: a lossy integer cast in a codec file (L003); the same cast in
//! a test region is exempt.

pub fn write_len(out: &mut Vec<u8>, len: usize) {
    out.push(len as u8);
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_are_fine_in_tests() {
        let n = 300usize;
        assert_eq!(n as u8, 44);
    }
}
