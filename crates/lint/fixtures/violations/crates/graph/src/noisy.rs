// Fixture: L006 raw prints in a library crate.

pub fn rebuild_index(entries: usize) {
    println!("rebuilding index with {entries} entries");
    eprintln!("index rebuild done");
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_in_tests_are_fine() {
        println!("debugging a test");
    }
}
