//! Fixture: inverted nested lock acquisition (L008).
//!
//! `render` takes traces → profiles; `snapshot` takes profiles → traces.
//! Run concurrently, each can hold the lock the other wants.

pub struct Daemon {
    traces: Ring,
    profiles: Ring,
}

impl Daemon {
    pub fn render(&self) -> Page {
        let traces = self.traces.lock();
        let profiles = self.profiles.lock();
        draw(traces, profiles)
    }

    pub fn snapshot(&self) -> Snapshot {
        let profiles = self.profiles.lock();
        let traces = self.traces.lock();
        pack(profiles, traces)
    }
}
