//! Fixture: a deadline-free graph walk below a query entry point (L009).
//!
//! The entry point itself contains no loop, so the file-local L005 check
//! cannot see the problem: the unbounded walk hides one call down, in a
//! private helper that neither takes nor constructs a deadline.

pub fn ancestry(browser: &ProvenanceBrowser, node: NodeId) -> Ancestry {
    collect_up(browser, node)
}

fn collect_up(browser: &ProvenanceBrowser, node: NodeId) -> Ancestry {
    let mut out = Ancestry::new();
    for (eid, parent) in browser.graph().parents(node) {
        out.push(eid, parent);
    }
    out
}
