//! Fixture: metric emissions cross-checked against METRICS.registry
//! (L010). One name matches the registry; one is a typo (`_totl`), which
//! both flags the emit site and strands the intended registry entry as
//! dead.

pub fn note_batch(obs: &Obs, events: u64) {
    obs.counter("ingest.events_total").add(events);
    obs.counter("ingest.frames_totl").add(1);
}
