//! Fixture: one WAL-guarded mutation path and one seeded bypass (L007).
//!
//! `add_node` → `commit` appends a frame alongside the structural change,
//! so it is clean. `touch_title` → `annotate` mutates the graph with no
//! append anywhere on the path — the provenance-completeness hole L007
//! exists to catch.

pub struct ProvenanceStore {
    graph: Graph,
    wal: Wal,
}

impl ProvenanceStore {
    pub fn add_node(&mut self, op: Op) {
        self.commit(op);
    }

    fn commit(&mut self, op: Op) {
        self.graph.add_node(op);
        self.wal.append(frame(op));
    }

    pub fn touch_title(&mut self, id: NodeId, title: Title) {
        self.annotate(id, title);
    }

    fn annotate(&mut self, id: NodeId, title: Title) {
        self.graph.node_mut(id);
    }
}
