//! Fixture: the misspelled metric emission, allowlisted (L010). The
//! registry lists only the matching name so no dead entry remains.

pub fn note_batch(obs: &Obs, events: u64) {
    obs.counter("ingest.events_total").add(events);
    // bp-lint: allow(L010): fixture — legacy dashboard still charts the misspelled series
    obs.counter("ingest.frames_totl").add(1);
}
