//! Fixture: the inverted lock pair, allowlisted on both edges of the
//! cycle (L008).

pub struct Daemon {
    traces: Ring,
    profiles: Ring,
}

impl Daemon {
    pub fn render(&self) -> Page {
        let traces = self.traces.lock();
        // bp-lint: allow(L008): fixture — render runs only on the single UI thread
        let profiles = self.profiles.lock();
        draw(traces, profiles)
    }

    pub fn snapshot(&self) -> Snapshot {
        let profiles = self.profiles.lock();
        // bp-lint: allow(L008): fixture — snapshot runs only on the single UI thread
        let traces = self.traces.lock();
        pack(profiles, traces)
    }
}
