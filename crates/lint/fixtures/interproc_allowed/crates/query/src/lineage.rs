//! Fixture: the deadline-free graph walk, allowlisted (L009).

pub fn ancestry(browser: &ProvenanceBrowser, node: NodeId) -> Ancestry {
    collect_up(browser, node)
}

fn collect_up(browser: &ProvenanceBrowser, node: NodeId) -> Ancestry {
    let mut out = Ancestry::new();
    // bp-lint: allow(L009): fixture — parent fan-in is capped at ingest time
    for (eid, parent) in browser.graph().parents(node) {
        out.push(eid, parent);
    }
    out
}
