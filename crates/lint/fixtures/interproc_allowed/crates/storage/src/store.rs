//! Fixture: the interproc tree with every finding allowlisted — the same
//! seeded L007 bypass, but with a reasoned directive on the mutation.

pub struct ProvenanceStore {
    graph: Graph,
    wal: Wal,
}

impl ProvenanceStore {
    pub fn add_node(&mut self, op: Op) {
        self.commit(op);
    }

    fn commit(&mut self, op: Op) {
        self.graph.add_node(op);
        self.wal.append(frame(op));
    }

    pub fn touch_title(&mut self, id: NodeId, title: Title) {
        self.annotate(id, title);
    }

    fn annotate(&mut self, id: NodeId, title: Title) {
        // bp-lint: allow(L007): fixture — title cache is rebuilt from the WAL on recovery
        self.graph.node_mut(id);
    }
}
