//! Fixture: a compliant codec file — checked conversions, no panics.

pub fn frame_len(payload: &[u8]) -> Result<u32, String> {
    u32::try_from(payload.len()).map_err(|_| "payload exceeds frame size".to_owned())
}
