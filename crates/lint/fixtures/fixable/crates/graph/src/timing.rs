//! Fixture: one elapsed-only stopwatch the fixer can rewrite, and one
//! disqualified pair it must leave alone.

pub fn measured() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    work();
    t0.elapsed()
}

pub fn disqualified() -> bool {
    let a = std::time::Instant::now();
    let b = std::time::Instant::now();
    b.duration_since(a).as_micros() > 0
}

fn work() {}
