//! Minimal argument parsing for `browserprov` (no external parser crate).

use std::collections::HashMap;

/// Parsed command line: subcommand, positional args, `--flag value` /
/// `--flag` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options (`--key` alone stores an empty string).
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// A `--key` consumes the next argument as its value unless that
    /// argument is itself a flag, in which case `--key` is boolean.
    pub fn parse(raw: &[String]) -> Args {
        let mut args = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(key) = a.strip_prefix("--") {
                let value = match raw.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        i += 1;
                        v.clone()
                    }
                    _ => String::new(),
                };
                args.options.insert(key.to_owned(), value);
            } else if args.command.is_empty() {
                args.command = a.clone();
            } else {
                args.positional.push(a.clone());
            }
            i += 1;
        }
        args
    }

    /// String option with default.
    pub fn opt(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .filter(|v| !v.is_empty())
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }

    /// Integer option with default.
    pub fn opt_u64(&self, key: &str, default: u64) -> u64 {
        self.options
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Boolean flag presence.
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Args {
        let raw: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
        Args::parse(&raw)
    }

    #[test]
    fn command_and_positionals() {
        let a = parse("search rosebud flower");
        assert_eq!(a.command, "search");
        assert_eq!(a.positional, vec!["rosebud", "flower"]);
    }

    #[test]
    fn options_with_values() {
        let a = parse("generate --days 79 --seed 42 --out events.log");
        assert_eq!(a.opt_u64("days", 0), 79);
        assert_eq!(a.opt_u64("seed", 0), 42);
        assert_eq!(a.opt("out", ""), "events.log");
    }

    #[test]
    fn boolean_flags() {
        let a = parse("search rosebud --textual --profile p");
        assert!(a.has("textual"));
        assert_eq!(a.opt("profile", ""), "p");
        assert!(!a.has("missing"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("stats");
        assert_eq!(a.opt("profile", "./profile"), "./profile");
        assert_eq!(a.opt_u64("days", 7), 7);
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let a = parse("x --a --b v");
        assert_eq!(a.options["a"], "");
        assert_eq!(a.options["b"], "v");
    }

    #[test]
    fn empty_input() {
        let a = Args::parse(&[]);
        assert!(a.command.is_empty());
    }
}
