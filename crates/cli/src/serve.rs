//! `browserprov serve` — the long-running observability daemon.
//!
//! Runs the full stack continuously instead of one-shot: a feeder thread
//! replays simulated browsing into the capture pipeline, a query worker
//! exercises the seven §2 query paths against the live store, and an HTTP
//! endpoint (hand-rolled, [`bp_obs::httpx`]) serves the observability
//! plane:
//!
//! | endpoint          | body                                              |
//! |-------------------|---------------------------------------------------|
//! | `/metrics`        | Prometheus text exposition of every live metric   |
//! | `/metrics.json`   | the same registry as JSON                         |
//! | `/healthz`        | liveness: WAL dir writable, capture thread alive  |
//! | `/readyz`         | readiness: warmed up, queue drained, snapshots on |
//! | `/tracez`         | recent query span trees; `?min_ms=&path=&id=`     |
//! |                   | (plus `format=json`) searches tail-sampled traces |
//! | `/profilez`       | recent query EXPLAIN profiles                     |
//! | `/debug/flightz`  | the in-memory flight-recorder dump                |
//! | `/debug/panicz`   | (only with `--allow-debug-panic`) crash a worker  |
//!
//! `SIGTERM`/`SIGINT` stop the daemon gracefully; `SIGUSR1` writes a
//! flight dump to `<profile>/flight.dump` without stopping. The bound
//! port is written to `<profile>/serve.port` so scripts and tests can
//! discover an ephemeral `--port 0`.
//!
//! Query latencies are scored against the paper's 200 ms interactive
//! bound by an in-process SLO engine ([`bp_obs::slo`]): burn-rate gauges
//! `bp_slo_burn_rate.{5m,1h}` and a latched fast-burn alert. See
//! EXPERIMENTS.md E9; `--inject-latency-us` exists to rehearse the alert.

use crate::args::Args;
use crate::commands::{export_metrics, import_metrics};
use crate::signals;
use bp_core::{CaptureConfig, CapturePipeline, ProvenanceBrowser, SharedBrowser};
use bp_graph::traverse::Budget;
use bp_obs::slo::{SloConfig, SloEngine};
use bp_obs::{expo, flight, httpx, log, profile, sampler, trace, ClockHandle, Obs};
use bp_query::{
    contextual_history_search, first_recognizable_ancestor, personalize_query,
    textual_history_search, time_contextual_search, ContextualConfig, LineageConfig,
    PersonalizeConfig, TimeContextConfig,
};
use bp_sim::calibrate;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The paper's interactive bound: queries must answer within 200 ms.
const QUERY_DEADLINE: Duration = Duration::from_millis(200);

/// How many span trees / EXPLAIN profiles `/tracez` and `/profilez` keep.
const DEBUG_RING_CAPACITY: usize = 32;

/// Collect a trace + profile on every Nth query-worker iteration. Sampling
/// keeps the rings fresh without paying collection cost on the hot path.
const DEBUG_SAMPLE_EVERY: u64 = 16;

/// `/readyz` fails once the capture queue backs up this far.
const READY_MAX_QUEUE_DEPTH: i64 = 100_000;

/// Events the feeder submits per burst — sized to fill (but not overrun)
/// one capture drain batch.
const FEEDER_CHUNK: usize = 64;

/// Parsed `serve` options.
struct ServeOptions {
    profile: PathBuf,
    port: u64,
    days: u32,
    seed: u64,
    duration: Option<Duration>,
    snapshot_interval: Duration,
    inject_latency: Duration,
    query_interval: Duration,
    allow_debug_panic: bool,
}

impl ServeOptions {
    fn parse(args: &Args) -> ServeOptions {
        let duration_s = args.opt_u64("duration-s", 0);
        ServeOptions {
            profile: PathBuf::from(args.opt("profile", "./profile")),
            port: args.opt_u64("port", 0),
            days: args.opt_u64("days", 79) as u32,
            seed: args.opt_u64("seed", 42),
            duration: (duration_s > 0).then(|| Duration::from_secs(duration_s)),
            snapshot_interval: Duration::from_secs(args.opt_u64("snapshot-interval-s", 30).max(1)),
            inject_latency: Duration::from_micros(args.opt_u64("inject-latency-us", 0)),
            query_interval: Duration::from_millis(args.opt_u64("query-interval-ms", 50).max(1)),
            allow_debug_panic: args.has("allow-debug-panic"),
        }
    }
}

/// State shared between the HTTP handler and the worker threads.
struct ServeState {
    obs: Obs,
    shared: SharedBrowser,
    pipeline: Arc<CapturePipeline>,
    slo: SloEngine,
    profile_dir: PathBuf,
    profile_label: String,
    allow_debug_panic: bool,
    /// Set once the feeder has applied its first day of history.
    ready: AtomicBool,
    /// All workers exit when this goes true.
    stop: AtomicBool,
    /// Unix ms of the last successful snapshot (start time until then).
    last_snapshot_ms: AtomicU64,
    snapshot_interval: Duration,
    traces: Mutex<VecDeque<String>>,
    profiles: Mutex<VecDeque<String>>,
}

impl ServeState {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Liveness: the WAL directory accepts writes and the capture thread
    /// has not died on a storage error.
    fn health(&self) -> Result<(), String> {
        if let Some(failure) = self.pipeline.failure() {
            return Err(format!("capture pipeline stopped: {failure}"));
        }
        let probe = self.profile_dir.join(".healthz.probe");
        std::fs::write(&probe, b"bp-healthz\n")
            .map_err(|e| format!("WAL dir not writable: {e}"))?;
        let _ = std::fs::remove_file(&probe);
        Ok(())
    }

    /// Readiness: warmed up, capture queue draining, snapshots recent.
    fn readiness(&self) -> Result<(), String> {
        self.health()?;
        if !self.ready.load(Ordering::SeqCst) {
            return Err("still replaying initial history".to_owned());
        }
        let depth = self.obs.gauge("capture.queue_depth").get();
        if depth > READY_MAX_QUEUE_DEPTH {
            return Err(format!("capture queue backed up ({depth} events)"));
        }
        let age_ms =
            bp_obs::unix_time_ms().saturating_sub(self.last_snapshot_ms.load(Ordering::SeqCst));
        let stale_after = self.snapshot_interval * 10;
        if age_ms > stale_after.as_millis() as u64 {
            return Err(format!("last snapshot {age_ms} ms ago"));
        }
        Ok(())
    }

    fn push_ring(ring: &Mutex<VecDeque<String>>, entry: String) {
        let mut ring = ring.lock();
        if ring.len() == DEBUG_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    fn render_ring(ring: &Mutex<VecDeque<String>>, empty_hint: &str) -> String {
        let ring = ring.lock();
        if ring.is_empty() {
            return format!("{empty_hint}\n");
        }
        ring.iter().cloned().collect::<Vec<_>>().join("\n")
    }
}

/// Routes one HTTP request.
fn handle(state: &ServeState, request: &httpx::Request) -> httpx::Response {
    state.obs.counter("bp_serve_http_requests_total").inc();
    match request.path.as_str() {
        "/metrics" => {
            let snap = state.obs.registry().snapshot();
            let mut body = expo::render_prometheus(&snap);
            body.push_str(&expo::render_labeled_sample(
                "bp_build_info",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("profile", state.profile_label.as_str()),
                ],
                1,
            ));
            httpx::Response::metrics_text(body)
        }
        "/metrics.json" => {
            let snap = state.obs.registry().snapshot();
            httpx::Response::json(200, expo::render_json(&snap))
        }
        "/healthz" => match state.health() {
            Ok(()) => httpx::Response::text(200, "ok\n"),
            Err(reason) => httpx::Response::text(503, format!("unhealthy: {reason}\n")),
        },
        "/readyz" => match state.readiness() {
            Ok(()) => httpx::Response::text(200, "ready\n"),
            Err(reason) => httpx::Response::text(503, format!("not ready: {reason}\n")),
        },
        "/tracez" => {
            if request.query.is_empty() {
                // Legacy view: the periodic span-tree ring.
                httpx::Response::text(
                    200,
                    ServeState::render_ring(&state.traces, "# no traces collected yet"),
                )
            } else {
                // `?min_ms=&path=&id=&format=json` searches the tail
                // sampler's retained traces.
                let mut min_us = None;
                let mut path_filter = None;
                let mut id = None;
                let mut json = false;
                for pair in request.query.split('&').filter(|p| !p.is_empty()) {
                    let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
                    match key {
                        "min_ms" => min_us = value.parse::<u64>().ok().map(|ms| ms * 1_000),
                        "path" => path_filter = Some(value.to_owned()),
                        "id" => id = trace::parse_trace_id(value),
                        "format" => json = value == "json",
                        _ => {}
                    }
                }
                let matches = sampler::global().search(min_us, path_filter.as_deref(), id);
                if json {
                    let body = format!(
                        "{{\"traces\":[{}]}}",
                        matches
                            .iter()
                            .map(sampler::TraceRecord::to_json)
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                    httpx::Response::json(200, body)
                } else {
                    let mut body = format!("# {} retained traces matched\n", matches.len());
                    for record in &matches {
                        body.push_str(&record.render_line());
                        body.push('\n');
                        // Exact-ID lookups include the span tree when one
                        // was captured for that request.
                        if id.is_some() {
                            if let Some(tree) = &record.tree {
                                body.push_str(tree);
                            }
                        }
                    }
                    httpx::Response::text(200, body)
                }
            }
        }
        "/profilez" => {
            // Merge capture-batch profiles (collected on the capture
            // thread during sampled windows) into the ring, so ingest
            // flushes render next to query EXPLAIN tables.
            for p in state.pipeline.take_profiles() {
                ServeState::push_ring(&state.profiles, p.render_table());
            }
            httpx::Response::text(
                200,
                ServeState::render_ring(&state.profiles, "# no profiles collected yet"),
            )
        }
        "/debug/flightz" => httpx::Response::text(200, flight::global().render()),
        "/debug/panicz" if state.allow_debug_panic => {
            // A deliberate worker crash: proves the panic hook leaves a
            // complete flight dump while the daemon itself survives.
            std::thread::spawn(|| {
                panic!("debug panic requested via /debug/panicz");
            });
            httpx::Response::text(202, "worker panic scheduled\n")
        }
        "/" => httpx::Response::text(
            200,
            "browserprov serve\n\
             endpoints: /metrics /metrics.json /healthz /readyz /tracez /profilez \
             /debug/flightz\n",
        ),
        _ => httpx::Response::not_found(),
    }
}

/// Replays simulated browsing into the capture pipeline, cycling the
/// event-log generation with a fresh seed (and shifted timestamps) each
/// pass so capture never idles for as long as the daemon runs.
fn feeder_loop(state: &ServeState, days: u32, seed: u64) {
    let clock = ClockHandle::real();
    let web = calibrate::paper_web(seed);
    let cycle_span = Duration::from_secs(u64::from(days) + 1) * 86_400;
    let mut cycle: u64 = 0;
    while !state.stopping() {
        // One trace context per replay cycle: the cycle's log lines and
        // every capture-thread ingest of its events share the ID (the
        // context rides each submitted event across the queue).
        let _ctx = trace::enter_new(&clock);
        let events = calibrate::days_history(&web, seed.wrapping_add(cycle), days);
        log::info(
            "bp_cli::serve",
            "replay cycle starting",
            &[
                ("cycle", cycle.to_string()),
                ("events", events.len().to_string()),
            ],
        );
        // Submit in chunks: one queue-depth update and one channel burst
        // per chunk feeds the capture thread's batched drain (it applies
        // a whole chunk under one write lock and one WAL frame group).
        for chunk in events.chunks(FEEDER_CHUNK) {
            if state.stopping() {
                return;
            }
            let shifted = chunk.iter().map(|event| {
                let mut event = event.clone();
                event.at = event.at.plus(cycle_span * cycle as u32);
                event
            });
            if state.pipeline.submit_all(shifted) < chunk.len() {
                log::error(
                    "bp_cli::serve",
                    "capture pipeline gone; feeder exiting",
                    &[],
                );
                return;
            }
            // Pace the replay so capture interleaves with queries rather
            // than arriving as one burst, and so the queue stays bounded.
            std::thread::sleep(Duration::from_millis(1));
        }
        state.pipeline.flush();
        state.ready.store(true, Ordering::SeqCst);
        state.obs.counter("bp_serve_replay_cycles_total").inc();
        cycle += 1;
    }
}

/// Runs one pass over the seven §2 query paths, recording each against
/// the 200 ms SLO. Returns the rendered output of the last query (unused
/// except to keep the calls from being optimized into nothing).
fn run_query_pass(state: &ServeState, inject: Duration, pass: u64) {
    let clock = ClockHandle::real();
    let contextual = ContextualConfig {
        budget: Budget::new().with_deadline(QUERY_DEADLINE),
        ..ContextualConfig::default()
    };
    let sample_debug = pass.is_multiple_of(DEBUG_SAMPLE_EVERY);
    if sample_debug {
        trace::set_enabled(true);
        let _ = trace::take_roots();
        profile::set_enabled(true);
        let _ = profile::take();
    }
    // Seven paths: context, ppr, textual, personalize, timectx, lineage,
    // describe. The simulator's topic vocabulary guarantees "news" and
    // "software" resolve.
    let browser = state.shared.read();
    for name in [
        "context",
        "ppr",
        "textual",
        "personalize",
        "timectx",
        "lineage",
        "describe",
    ] {
        if state.stopping() {
            break;
        }
        // One trace context per request: the query path reuses it (via
        // `trace::ensure`), its root span, log lines, histogram exemplars,
        // and tail-sampler record all share this ID.
        let ctx = trace::enter_new(&clock);
        let trace_id = ctx.context().map(|c| c.trace_id);
        let sw = clock.start();
        match name {
            "context" => {
                let _ = contextual_history_search(&browser, "news", &contextual);
            }
            "ppr" => {
                let _ = bp_query::contextual_history_search_ppr(
                    &browser,
                    "news",
                    &contextual,
                    &bp_graph::pagerank::PageRankConfig::default(),
                );
            }
            "textual" => {
                let _ = textual_history_search(&browser, "news", &contextual);
            }
            "personalize" => {
                let _ = personalize_query(&browser, "news", &PersonalizeConfig::default());
            }
            "timectx" => {
                let _ = time_contextual_search(
                    &browser,
                    "news",
                    "software",
                    &TimeContextConfig::default(),
                );
            }
            "lineage" => {
                if let Some(download) = browser
                    .graph()
                    .nodes_of_kind(bp_graph::NodeKind::Download)
                    .next()
                {
                    let config = LineageConfig {
                        budget: Budget::new().with_deadline(QUERY_DEADLINE),
                        ..LineageConfig::default()
                    };
                    let _ = first_recognizable_ancestor(&browser, download, &config);
                }
            }
            _ => {
                let _ = bp_query::describe_origin(
                    &browser,
                    "news",
                    &bp_query::DescribeConfig::default(),
                );
            }
        }
        let elapsed = sw.elapsed() + inject;
        let good = elapsed <= QUERY_DEADLINE;
        state.slo.record(good);
        if !good {
            // The serve-level deadline includes injected latency the query
            // path itself never saw, so offer the miss here too — the tail
            // sampler retains every deadline miss unconditionally.
            if let Some(trace_id) = trace_id {
                sampler::global().offer(sampler::TraceRecord {
                    trace_id,
                    path: name,
                    elapsed_us: elapsed.as_micros() as u64,
                    outcome: sampler::TraceOutcome::DeadlineMiss,
                    unix_ms: 0,
                    tree: None,
                });
            }
            log::warn(
                "bp_cli::serve",
                "query missed the interactive deadline",
                &[
                    ("path", name.to_owned()),
                    ("elapsed", format!("{elapsed:?}")),
                ],
            );
        }
        drop(ctx);
    }
    drop(browser);
    if sample_debug {
        trace::set_enabled(false);
        profile::set_enabled(false);
        let roots = trace::take_roots();
        if !roots.is_empty() {
            for root in &roots {
                // Opportunistic: when this request's record survived the
                // tail decision, its `/tracez?id=` entry gains the tree.
                if let Some(id) = root.trace_id {
                    sampler::global().attach_tree(id, root.render());
                }
            }
            let rendered: String = roots.iter().map(|r| r.render()).collect();
            ServeState::push_ring(&state.traces, rendered);
        }
        for p in profile::take() {
            ServeState::push_ring(&state.profiles, p.render_table());
        }
    }
}

/// The query worker: continuously exercises every query path.
fn query_loop(state: &ServeState, inject: Duration, interval: Duration) {
    let mut pass = 0u64;
    while !state.stopping() {
        if state.ready.load(Ordering::SeqCst) {
            run_query_pass(state, inject, pass);
            pass += 1;
        }
        std::thread::sleep(interval);
    }
}

/// Housekeeping: SLO evaluation (~1 s), periodic snapshots, signal
/// handling, uptime gauge, and the `--duration-s` clock.
fn maintenance_loop(
    state: &ServeState,
    shutdown: &httpx::ShutdownHandle,
    duration: Option<Duration>,
) {
    let clock = ClockHandle::real();
    let started = clock.start();
    let mut last_snapshot = clock.start();
    let mut last_evaluate = clock.start();
    loop {
        if signals::shutdown_requested() || duration.is_some_and(|d| started.elapsed() >= d) {
            state.stop.store(true, Ordering::SeqCst);
            shutdown.shutdown();
            return;
        }
        if signals::take_flight_dump_request() {
            let path = state.profile_dir.join("flight.dump");
            match flight::global().dump_to(&path) {
                Ok(()) => log::info(
                    "bp_cli::serve",
                    "flight dump written on SIGUSR1",
                    &[("path", path.display().to_string())],
                ),
                Err(e) => log::error(
                    "bp_cli::serve",
                    "flight dump failed",
                    &[("error", e.to_string())],
                ),
            }
        }
        if last_evaluate.elapsed() >= Duration::from_secs(1) {
            last_evaluate = clock.start();
            let _ = state.slo.evaluate();
            state
                .obs
                .gauge("bp_serve_uptime_seconds")
                .set(started.elapsed().as_secs() as i64);
        }
        if state.ready.load(Ordering::SeqCst) && last_snapshot.elapsed() >= state.snapshot_interval
        {
            last_snapshot = clock.start();
            let result = state.shared.with_mut(|b| b.snapshot());
            match result {
                Ok(()) => {
                    state
                        .last_snapshot_ms
                        .store(bp_obs::unix_time_ms(), Ordering::SeqCst);
                }
                Err(e) => log::error(
                    "bp_cli::serve",
                    "periodic snapshot failed",
                    &[("error", e.to_string())],
                ),
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Runs the daemon until a signal or `--duration-s` elapses.
///
/// # Errors
///
/// Returns a displayable error string when the profile cannot be opened
/// or the port cannot be bound.
pub fn run(args: &Args) -> Result<String, String> {
    let options = ServeOptions::parse(args);
    signals::install();
    log::set_stderr(true);
    std::fs::create_dir_all(&options.profile).map_err(|e| e.to_string())?;
    flight::install_panic_hook(options.profile.join("flight.dump"));
    import_metrics(args);

    let browser = ProvenanceBrowser::open(&options.profile, CaptureConfig::default())
        .map_err(|e| e.to_string())?;
    let obs = browser.obs().clone();
    let pipeline = Arc::new(CapturePipeline::start(browser));
    let shared = pipeline.shared();

    let server = httpx::Server::bind(&format!("127.0.0.1:{}", options.port))
        .map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr();
    let port_file = options.profile.join("serve.port");
    std::fs::write(&port_file, format!("{}\n", addr.port())).map_err(|e| e.to_string())?;

    let state = Arc::new(ServeState {
        obs: obs.clone(),
        shared: shared.clone(),
        pipeline: Arc::clone(&pipeline),
        slo: SloEngine::new(obs.clone(), ClockHandle::real(), SloConfig::default()),
        profile_dir: options.profile.clone(),
        profile_label: options.profile.display().to_string(),
        allow_debug_panic: options.allow_debug_panic,
        ready: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        last_snapshot_ms: AtomicU64::new(bp_obs::unix_time_ms()),
        snapshot_interval: options.snapshot_interval,
        traces: Mutex::new(VecDeque::new()),
        profiles: Mutex::new(VecDeque::new()),
    });
    log::info(
        "bp_cli::serve",
        "serve daemon listening",
        &[
            ("addr", addr.to_string()),
            ("profile", state.profile_label.clone()),
            ("days", options.days.to_string()),
        ],
    );

    let feeder = {
        let state = Arc::clone(&state);
        let (days, seed) = (options.days, options.seed);
        std::thread::spawn(move || feeder_loop(&state, days, seed))
    };
    let query_worker = {
        let state = Arc::clone(&state);
        let (inject, interval) = (options.inject_latency, options.query_interval);
        std::thread::spawn(move || query_loop(&state, inject, interval))
    };
    let maintenance = {
        let state = Arc::clone(&state);
        let shutdown = server.shutdown_handle();
        let duration = options.duration;
        std::thread::spawn(move || maintenance_loop(&state, &shutdown, duration))
    };

    // Serve blocks here until maintenance requests shutdown; it joins all
    // in-flight connections before returning.
    let handler_state = Arc::clone(&state);
    server.serve(move |request| handle(&handler_state, request));

    state.stop.store(true, Ordering::SeqCst);
    let _ = feeder.join();
    let _ = query_worker.join();
    let _ = maintenance.join();

    // Teardown order matters: drain the capture queue, persist, then drop
    // the last pipeline handle (its Drop joins the capture thread).
    pipeline.flush();
    let uptime = state.obs.gauge("bp_serve_uptime_seconds").get();
    let requests = state.obs.counter("bp_serve_http_requests_total").get();
    if let Err(e) = shared.with_mut(|b| b.sync()) {
        log::error(
            "bp_cli::serve",
            "final sync failed",
            &[("error", e.to_string())],
        );
    }
    export_metrics(args);
    let _ = std::fs::remove_file(&port_file);
    drop(state);
    drop(shared);
    drop(pipeline);
    log::info("bp_cli::serve", "serve daemon stopped", &[]);
    Ok(format!(
        "serve stopped after {uptime}s: {requests} HTTP requests answered on {addr}\n"
    ))
}
