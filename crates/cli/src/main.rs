//! `browserprov` — command-line interface to the browser-provenance store.
//!
//! See [`commands::USAGE`] or run `browserprov help`.

mod args;
mod commands;
mod serve;
mod signals;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = args::Args::parse(&raw);
    match commands::run(&parsed) {
        Ok(output) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
