//! `browserprov` subcommand implementations.
//!
//! Every command returns its output as a `String` so the logic is unit
//! testable; `main` only prints.

use crate::args::Args;
use bp_core::{eventlog, CaptureConfig, ProvenanceBrowser};
use bp_graph::dot::{to_dot, DotOptions};
use bp_graph::stats::stats;
use bp_graph::traverse::Budget;
use bp_obs::{expo, profile, trace, ClockHandle, Obs};
use bp_query::{
    contextual_history_search, downloads_descending_from, find_download,
    first_recognizable_ancestor, personalize_query, textual_history_search, time_contextual_search,
    ContextualConfig, LineageConfig, PersonalizeConfig, TimeContextConfig,
};
use bp_sim::calibrate;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Usage text.
pub const USAGE: &str = "browserprov — a provenance-aware browser history backend

USAGE:
  browserprov generate  --days N --seed S --out FILE   generate a simulated event log
  browserprov ingest    --profile DIR FILE             ingest an event log into a profile
  browserprov stats     --profile DIR                  graph and storage statistics
  browserprov stats     --profile DIR --metrics        live metrics (Prometheus text + journal);
                                                       --metrics-json for JSON exposition
  browserprov search    --profile DIR QUERY [--textual|--ppr|--hits]
                                                       history search: contextual (default),
                                                       plain textual, PageRank, or HITS-blended
  browserprov personalize --profile DIR QUERY          locally expand a web query
  browserprov when      --profile DIR SUBJECT --with COMPANION  time-contextual search
  browserprov lineage   --profile DIR FILEPATH         first recognizable ancestor of a download
  browserprov whence    --profile DIR KEY              narrate how an object came to be
  browserprov downloads-from --profile DIR URL         downloads descending from a page
  browserprov query     --profile DIR SUB ARGS...      run one use-case query path
                                                       (SUB: context|ppr|textual|personalize|
                                                       timectx|lineage|describe; timectx takes
                                                       SUBJECT --with COMPANION); any other
                                                       first word runs as a QL string (see docs)
  browserprov dot       --profile DIR [--around KEY --radius N]
                                                       export the graph (or one key's
                                                       neighborhood) as Graphviz DOT
  browserprov snapshot  --profile DIR                  compact the store
  browserprov redact    --profile DIR KEY              scrub a URL/query/path from history
  browserprov tree      --profile DIR [--depth N]      render the navigation tree (Ayers-Stasko view)
  browserprov serve     --profile DIR [--port P]       run the live observability daemon:
                                                       continuous capture + queries with
                                                       /metrics /healthz /readyz /tracez
                                                       /profilez /debug/flightz endpoints
                                                       (--days N --seed S --duration-s T
                                                       --snapshot-interval-s T
                                                       --inject-latency-us U
                                                       --query-interval-ms T
                                                       --allow-debug-panic); writes the bound
                                                       port to DIR/serve.port; SIGTERM stops,
                                                       SIGUSR1 dumps the flight recorder

Common options:
  --profile DIR   profile directory (default ./profile)
  --budget MS     query deadline in milliseconds (default unlimited)
  --trace         (search/personalize/when/lineage/query) print a span
                  tree with per-stage timings after the results
  --trace-id      (same commands) assign the run a request trace ID and
                  print it; log lines, histogram exemplars, and retained
                  /tracez records of the run all carry the same ID
  --explain       (query) print the EXPLAIN profile: per-stage wall time,
                  rows in/out, node/edge touches, budget use, truncation
  --explain-json  (query) the same profile as JSON
";

/// Runs one command, returning its textual output.
///
/// # Errors
///
/// Returns a displayable error string on any failure.
pub fn run(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "generate" => generate(args),
        "ingest" => ingest(args),
        "stats" => stats_cmd(args),
        "search" => search(args),
        "personalize" => personalize(args),
        "when" => when(args),
        "lineage" => lineage(args),
        "whence" => whence(args),
        "downloads-from" => downloads_from(args),
        "query" => query_cmd(args),
        "dot" => dot(args),
        "snapshot" => snapshot(args),
        "redact" => redact(args),
        "tree" => tree(args),
        "serve" => crate::serve::run(args),
        "" | "help" | "--help" => Ok(USAGE.to_owned()),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn open(args: &Args) -> Result<ProvenanceBrowser, String> {
    let profile = args.opt("profile", "./profile");
    ProvenanceBrowser::open(&profile, CaptureConfig::default()).map_err(|e| e.to_string())
}

fn budget(args: &Args) -> Budget {
    let mut budget = Budget::new();
    if let Some(ms) = args
        .options
        .get("budget")
        .and_then(|v| v.parse::<u64>().ok())
    {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    budget
}

/// Where the profile persists its metrics between CLI invocations.
fn metrics_path(args: &Args) -> PathBuf {
    PathBuf::from(args.opt("profile", "./profile")).join("metrics.snapshot")
}

/// Merges the profile's persisted metrics into the live registry. Each
/// CLI invocation is one short-lived process; importing first means
/// counters and histograms accumulate across runs, while gauges are
/// overwritten by whatever the freshly opened store publishes.
pub(crate) fn import_metrics(args: &Args) {
    if let Ok(text) = std::fs::read_to_string(metrics_path(args)) {
        let _ = expo::import_snapshot(Obs::global().registry(), &text);
    }
}

/// Writes the live registry back next to the profile (best-effort).
pub(crate) fn export_metrics(args: &Args) {
    let snap = Obs::global().registry().snapshot();
    let _ = std::fs::write(metrics_path(args), expo::export_snapshot(&snap));
}

/// Runs `f` with span collection enabled when `--trace` was passed and
/// returns its result plus the rendered span tree (empty without the
/// flag). `--trace-id` additionally mints a request trace context up
/// front — the run's log lines, exemplars, and tail-sampler record all
/// share the printed ID, usable against `/tracez?id=` and flight dumps.
fn with_trace<R>(args: &Args, f: impl FnOnce() -> R) -> (R, String) {
    let ctx = args
        .has("trace-id")
        .then(|| trace::enter_new(&ClockHandle::real()));
    let id_note = ctx
        .as_ref()
        .and_then(|guard| guard.context())
        .map(|c| format!("\ntrace id: {}\n", trace::format_trace_id(c.trace_id)))
        .unwrap_or_default();
    if !args.has("trace") {
        return (f(), id_note);
    }
    trace::set_enabled(true);
    let _ = trace::take_roots();
    let result = f();
    trace::set_enabled(false);
    let mut rendered = String::from("\ntrace:\n");
    for root in trace::take_roots() {
        rendered.push_str(&root.render());
    }
    rendered.push_str(&id_note);
    (result, rendered)
}

/// Runs `f` with EXPLAIN profiling enabled when `--explain` or
/// `--explain-json` was passed and returns its result plus the rendered
/// profile (empty without either flag).
fn with_explain<R>(args: &Args, f: impl FnOnce() -> R) -> (R, String) {
    let json = args.has("explain-json");
    if !args.has("explain") && !json {
        return (f(), String::new());
    }
    profile::set_enabled(true);
    let _ = profile::take();
    let result = f();
    profile::set_enabled(false);
    let mut rendered = String::new();
    for p in profile::take() {
        if json {
            rendered.push_str(&p.to_json());
        } else {
            rendered.push('\n');
            rendered.push_str(&p.render_table());
        }
    }
    (result, rendered)
}

fn generate(args: &Args) -> Result<String, String> {
    let days = args.opt_u64("days", 7) as u32;
    let seed = args.opt_u64("seed", 42);
    let out = args.opt("out", "events.log");
    let web = calibrate::paper_web(seed);
    let events = calibrate::days_history(&web, seed, days);
    let text = eventlog::format_log(&events);
    std::fs::write(&out, text).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} events ({} days, seed {}) to {}",
        events.len(),
        days,
        seed,
        out
    ))
}

fn ingest(args: &Args) -> Result<String, String> {
    let path = args
        .positional
        .first()
        .ok_or("ingest requires an event-log file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let events = eventlog::parse_log(&text).map_err(|e| e.to_string())?;
    import_metrics(args);
    let mut browser = open(args)?;
    let n = browser.ingest_all(&events).map_err(|e| e.to_string())?;
    browser.sync().map_err(|e| e.to_string())?;
    export_metrics(args);
    let report = browser.size_report();
    Ok(format!(
        "ingested {} events: {} nodes, {} edges, {} bytes on disk",
        n,
        browser.graph().node_count(),
        browser.graph().edge_count(),
        report.total_bytes()
    ))
}

fn stats_cmd(args: &Args) -> Result<String, String> {
    if args.has("metrics") || args.has("metrics-json") {
        return metrics_report(args);
    }
    let browser = open(args)?;
    let s = stats(browser.graph());
    let report = browser.size_report();
    let mut out = String::new();
    let _ = writeln!(out, "nodes: {}", s.nodes);
    let _ = writeln!(out, "edges: {}", s.edges);
    for (kind, count) in &s.nodes_by_kind {
        let _ = writeln!(out, "  node kind {kind}: {count}");
    }
    for (kind, count) in &s.edges_by_kind {
        let _ = writeln!(out, "  edge kind {kind}: {count}");
    }
    let _ = writeln!(out, "mean degree: {:.2}", s.mean_degree);
    let _ = writeln!(out, "isolated nodes: {}", s.isolated_nodes);
    let _ = writeln!(
        out,
        "on disk: {} bytes (snapshot {}, log {})",
        report.total_bytes(),
        report.snapshot_bytes,
        report.log_bytes
    );
    let _ = writeln!(
        out,
        "interned strings: {} ({} bytes)",
        report.interned_strings, report.interned_bytes
    );
    Ok(out)
}

/// `stats --metrics[-json]`: the full observability report. Restores the
/// profile's accumulated metrics, exercises each §2 use-case query path
/// once so its latency histogram and the deadline SLO counters hold fresh
/// samples, then renders every metric plus the event journal.
fn metrics_report(args: &Args) -> Result<String, String> {
    import_metrics(args);
    let browser = open(args)?;
    let contextual = ContextualConfig {
        budget: budget(args),
        ..ContextualConfig::default()
    };
    // Vocabulary guaranteed by the simulator's topic lists; on an empty
    // or foreign profile these simply record near-zero-hit samples.
    let _ = contextual_history_search(&browser, "news", &contextual);
    let _ = personalize_query(&browser, "news", &PersonalizeConfig::default());
    let _ = time_contextual_search(&browser, "news", "software", &TimeContextConfig::default());
    if let Some(download) = browser
        .graph()
        .nodes_of_kind(bp_graph::NodeKind::Download)
        .next()
    {
        let config = LineageConfig {
            budget: budget(args),
            ..LineageConfig::default()
        };
        let _ = first_recognizable_ancestor(&browser, download, &config);
    }
    let snap = Obs::global().registry().snapshot();
    let mut out = if args.has("metrics-json") {
        expo::render_json(&snap)
    } else {
        expo::render_prometheus(&snap)
    };
    if !args.has("metrics-json") {
        let events = Obs::global().journal().events();
        if !events.is_empty() {
            out.push_str("\n# journal\n");
            for e in events {
                let _ = writeln!(out, "# [{:?}] {}", e.level, e.message);
            }
        }
    }
    export_metrics(args);
    Ok(out)
}

fn search(args: &Args) -> Result<String, String> {
    let query = args.positional.join(" ");
    if query.is_empty() {
        return Err("search requires a query".to_owned());
    }
    import_metrics(args);
    let browser = open(args)?;
    let mut config = ContextualConfig {
        budget: budget(args),
        ..ContextualConfig::default()
    };
    if args.has("hits") {
        config.hits_weight = 1.0;
    }
    let (result, traced) = with_trace(args, || {
        if args.has("textual") {
            textual_history_search(&browser, &query, &config)
        } else if args.has("ppr") {
            bp_query::contextual_history_search_ppr(
                &browser,
                &query,
                &config,
                &bp_graph::pagerank::PageRankConfig::default(),
            )
        } else {
            contextual_history_search(&browser, &query, &config)
        }
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} hits in {:?}{}",
        result.hits.len(),
        result.elapsed,
        if result.truncated { " (truncated)" } else { "" }
    );
    for hit in &result.hits {
        let _ = writeln!(
            out,
            "  {:>8.4}  [{}] {}  {}",
            hit.score,
            hit.kind,
            hit.key,
            hit.title.as_deref().unwrap_or("")
        );
    }
    out.push_str(&traced);
    export_metrics(args);
    Ok(out)
}

fn personalize(args: &Args) -> Result<String, String> {
    let query = args.positional.join(" ");
    if query.is_empty() {
        return Err("personalize requires a query".to_owned());
    }
    import_metrics(args);
    let browser = open(args)?;
    let (expanded, traced) = with_trace(args, || {
        personalize_query(&browser, &query, &PersonalizeConfig::default())
    });
    let mut out = if expanded.is_unchanged() {
        format!("no history context for {query:?}; query unchanged")
    } else {
        format!(
            "expanded query: {:?} (added: {})",
            expanded.to_query_string(),
            expanded.added_terms.join(", ")
        )
    };
    out.push_str(&traced);
    export_metrics(args);
    Ok(out)
}

fn when(args: &Args) -> Result<String, String> {
    let subject = args.positional.join(" ");
    let companion = args.opt("with", "");
    if subject.is_empty() || companion.is_empty() {
        return Err("when requires SUBJECT and --with COMPANION".to_owned());
    }
    import_metrics(args);
    let browser = open(args)?;
    let (result, traced) = with_trace(args, || {
        time_contextual_search(
            &browser,
            &subject,
            &companion,
            &TimeContextConfig::default(),
        )
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} hits for {subject:?} associated with {companion:?} ({:?})",
        result.hits.len(),
        result.elapsed
    );
    for hit in &result.hits {
        let _ = writeln!(
            out,
            "  {:>8.4}  {}  {}",
            hit.score,
            hit.key,
            hit.title.as_deref().unwrap_or("")
        );
    }
    out.push_str(&traced);
    export_metrics(args);
    Ok(out)
}

fn lineage(args: &Args) -> Result<String, String> {
    let path = args
        .positional
        .first()
        .ok_or("lineage requires a download file path")?;
    import_metrics(args);
    let browser = open(args)?;
    let download =
        find_download(&browser, path).ok_or_else(|| format!("no download recorded for {path}"))?;
    let config = LineageConfig {
        budget: budget(args),
        ..LineageConfig::default()
    };
    let (answer, traced) = with_trace(args, || {
        first_recognizable_ancestor(&browser, download, &config)
    });
    let result = match answer {
        Some(answer) => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "first recognizable ancestor: {} ({} visits, {} hops, {:?})",
                answer.url,
                answer.visit_count,
                answer.path.hops(),
                answer.elapsed
            );
            let _ = writeln!(out, "path:");
            for &node in &answer.path.nodes {
                if let Ok(n) = browser.graph().node(node) {
                    let _ = writeln!(out, "  [{}] {}", n.kind(), n.key());
                }
            }
            out.push_str(&traced);
            Ok(out)
        }
        None => Ok(format!(
            "no recognizable ancestor found for {path} (within budget){traced}"
        )),
    };
    export_metrics(args);
    result
}

fn whence(args: &Args) -> Result<String, String> {
    let key = args
        .positional
        .first()
        .ok_or("whence requires a URL/query/path")?;
    let browser = open(args)?;
    let config = bp_query::DescribeConfig {
        budget: budget(args),
        ..bp_query::DescribeConfig::default()
    };
    bp_query::describe_origin(&browser, key, &config)
        .ok_or_else(|| format!("nothing in history matches {key:?}"))
}

fn downloads_from(args: &Args) -> Result<String, String> {
    let url = args
        .positional
        .first()
        .ok_or("downloads-from requires a URL")?;
    let browser = open(args)?;
    let downloads = downloads_descending_from(&browser, url, &budget(args));
    let mut out = String::new();
    let _ = writeln!(out, "{} downloads descend from {url}", downloads.len());
    for (_, path) in &downloads {
        let _ = writeln!(out, "  {path}");
    }
    Ok(out)
}

fn query_cmd(args: &Args) -> Result<String, String> {
    match args.positional.first().map(String::as_str) {
        Some(
            "context" | "ppr" | "textual" | "personalize" | "timectx" | "lineage" | "describe",
        ) => query_usecase(args),
        _ => query_ql(args),
    }
}

/// Renders scored hits the way `search`/`when` do.
fn render_hits(result: &bp_query::QueryResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} hits in {:?}{}",
        result.hits.len(),
        result.elapsed,
        if result.truncated { " (truncated)" } else { "" }
    );
    for hit in &result.hits {
        let _ = writeln!(
            out,
            "  {:>8.4}  [{}] {}  {}",
            hit.score,
            hit.kind,
            hit.key,
            hit.title.as_deref().unwrap_or("")
        );
    }
    out
}

/// `query <sub> ARGS…`: runs one named query path, with `--trace` and
/// `--explain[-json]` observability.
fn query_usecase(args: &Args) -> Result<String, String> {
    let sub = args.positional[0].clone();
    let rest = args.positional[1..].join(" ");
    if rest.is_empty() {
        return Err(format!("query {sub} requires an argument"));
    }
    import_metrics(args);
    let browser = open(args)?;
    let contextual = ContextualConfig {
        budget: budget(args),
        ..ContextualConfig::default()
    };
    let (body, explained) = with_explain(args, || {
        let (body, traced) = with_trace(args, || -> Result<String, String> {
            match sub.as_str() {
                "context" => Ok(render_hits(&contextual_history_search(
                    &browser,
                    &rest,
                    &contextual,
                ))),
                "ppr" => Ok(render_hits(&bp_query::contextual_history_search_ppr(
                    &browser,
                    &rest,
                    &contextual,
                    &bp_graph::pagerank::PageRankConfig::default(),
                ))),
                "textual" => Ok(render_hits(&textual_history_search(
                    &browser,
                    &rest,
                    &contextual,
                ))),
                "personalize" => {
                    let config = PersonalizeConfig {
                        contextual: contextual.clone(),
                        ..PersonalizeConfig::default()
                    };
                    let expanded = personalize_query(&browser, &rest, &config);
                    Ok(if expanded.is_unchanged() {
                        format!("no history context for {rest:?}; query unchanged\n")
                    } else {
                        format!("expanded query: {:?}\n", expanded.to_query_string())
                    })
                }
                "timectx" => {
                    let companion = args.opt("with", "");
                    if companion.is_empty() {
                        return Err("query timectx requires SUBJECT --with COMPANION".to_owned());
                    }
                    let config = TimeContextConfig {
                        budget: budget(args),
                        ..TimeContextConfig::default()
                    };
                    Ok(render_hits(&time_contextual_search(
                        &browser, &rest, &companion, &config,
                    )))
                }
                "lineage" => {
                    let download = find_download(&browser, &rest)
                        .ok_or_else(|| format!("no download recorded for {rest}"))?;
                    let config = LineageConfig {
                        budget: budget(args),
                        ..LineageConfig::default()
                    };
                    Ok(
                        match first_recognizable_ancestor(&browser, download, &config) {
                            Some(a) => format!(
                                "first recognizable ancestor: {} ({} visits, {} hops)\n",
                                a.url,
                                a.visit_count,
                                a.path.hops()
                            ),
                            None => {
                                format!(
                                    "no recognizable ancestor found for {rest} (within budget)\n"
                                )
                            }
                        },
                    )
                }
                "describe" => {
                    let config = bp_query::DescribeConfig {
                        budget: budget(args),
                        ..bp_query::DescribeConfig::default()
                    };
                    bp_query::describe_origin(&browser, &rest, &config)
                        .ok_or_else(|| format!("nothing in history matches {rest:?}"))
                }
                other => Err(format!("unknown query path {other:?}")),
            }
        });
        body.map(|b| b + &traced)
    });
    let mut out = body?;
    out.push_str(&explained);
    export_metrics(args);
    Ok(out)
}

fn query_ql(args: &Args) -> Result<String, String> {
    let text = args.positional.join(" ");
    if text.is_empty() {
        return Err("query requires a query string".to_owned());
    }
    import_metrics(args);
    let browser = open(args)?;
    let (rows, traced) = with_trace(args, || bp_query::ql::run(&browser, &text, &budget(args)));
    let rows = rows.map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} rows ({:?}){}",
        rows.rows.len(),
        rows.elapsed,
        if rows.truncated { " (truncated)" } else { "" }
    );
    for row in &rows.rows {
        let _ = writeln!(
            out,
            "  {} depth={} [{}] {}",
            row.node, row.depth, row.kind, row.key
        );
    }
    out.push_str(&traced);
    export_metrics(args);
    Ok(out)
}

fn dot(args: &Args) -> Result<String, String> {
    let browser = open(args)?;
    let graph = browser.graph();
    match args.options.get("around") {
        Some(key) if !key.is_empty() => {
            // Export only the neighborhood of a key: BFS both directions
            // within --radius hops from every node carrying it.
            let radius = args.opt_u64("radius", 2) as usize;
            let starts = browser.store().keys().get(key);
            if starts.is_empty() {
                return Err(format!("no history object with key {key:?}"));
            }
            let mut keep = std::collections::HashSet::new();
            for &start in starts {
                for direction in [
                    bp_graph::traverse::Direction::Ancestors,
                    bp_graph::traverse::Direction::Descendants,
                ] {
                    let t = bp_graph::traverse::bfs(
                        graph,
                        start,
                        direction,
                        |_| true,
                        &Budget::new().with_max_depth(radius),
                    );
                    keep.extend(t.node_ids());
                }
            }
            Ok(bp_graph::dot::to_dot_filtered(
                graph,
                &DotOptions::default(),
                |n| keep.contains(&n),
            ))
        }
        _ => Ok(to_dot(graph, &DotOptions::default())),
    }
}

fn snapshot(args: &Args) -> Result<String, String> {
    import_metrics(args);
    let mut browser = open(args)?;
    browser.snapshot().map_err(|e| e.to_string())?;
    export_metrics(args);
    let report = browser.size_report();
    Ok(format!(
        "snapshot written: {} bytes (log reset)",
        report.snapshot_bytes
    ))
}

fn tree(args: &Args) -> Result<String, String> {
    let browser = open(args)?;
    let depth = args.opt_u64("depth", 6) as usize;
    let max_nodes = args.opt_u64("max-nodes", 200) as usize;
    let forest = bp_graph::tree::HistoryTree::extract(browser.graph());
    let mut out = format!(
        "navigation forest: {} trees, {} tree edges (encoded: {} bytes)\n",
        forest.roots().len(),
        forest.edge_count(),
        forest.encode().len()
    );
    out.push_str(&forest.render_ascii(browser.graph(), depth, max_nodes));
    Ok(out)
}

fn redact(args: &Args) -> Result<String, String> {
    let key = args
        .positional
        .first()
        .ok_or("redact requires a URL/query/path to scrub")?;
    import_metrics(args);
    let mut browser = open(args)?;
    let n = browser.redact(key).map_err(|e| e.to_string())?;
    if n == 0 {
        export_metrics(args);
        return Ok(format!("nothing in history matches {key:?}"));
    }
    // Compact immediately so the string leaves the disk too.
    browser.snapshot().map_err(|e| e.to_string())?;
    export_metrics(args);
    Ok(format!(
        "redacted {n} history objects for {key:?}; store compacted (content scrubbed from disk)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "bp-cli-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
        fn path(&self, name: &str) -> String {
            self.0.join(name).to_string_lossy().into_owned()
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn run_line(line: &str) -> Result<String, String> {
        let raw: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
        run(&Args::parse(&raw))
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_line("help").unwrap().contains("USAGE"));
        assert!(run_line("").unwrap().contains("USAGE"));
        let err = run_line("frobnicate").unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn generate_ingest_stats_search_roundtrip() {
        let dir = TempDir::new("roundtrip");
        let log = dir.path("events.log");
        let profile = dir.path("profile");

        let out = run_line(&format!("generate --days 2 --seed 7 --out {log}")).unwrap();
        assert!(out.contains("events"), "{out}");

        let out = run_line(&format!("ingest --profile {profile} {log}")).unwrap();
        assert!(out.contains("nodes"), "{out}");

        let out = run_line(&format!("stats --profile {profile}")).unwrap();
        assert!(out.contains("nodes:"), "{out}");
        assert!(out.contains("edge kind"), "{out}");

        // Search for a word guaranteed by the simulator's vocabularies,
        // with every algorithm variant.
        for flag in ["", "--textual", "--ppr", "--hits"] {
            let out = run_line(&format!("search --profile {profile} news {flag}")).unwrap();
            assert!(out.contains("hits"), "{flag}: {out}");
        }

        let out = run_line(&format!(
            "query --profile {profile} nodes where type = search_term limit 3"
        ))
        .unwrap();
        assert!(out.contains("rows"), "{out}");

        let out = run_line(&format!("snapshot --profile {profile}")).unwrap();
        assert!(out.contains("snapshot written"), "{out}");

        let out = run_line(&format!("dot --profile {profile}")).unwrap();
        assert!(out.starts_with("digraph"));

        let out = run_line(&format!("tree --profile {profile} --depth 3")).unwrap();
        assert!(out.contains("navigation forest"), "{out}");
        assert!(out.contains("[visit]"), "{out}");

        // whence narrates any object in history.
        let out = run_line(&format!(
            "query --profile {profile} nodes where type = download limit 1"
        ))
        .unwrap();
        if let Some(path) = out.lines().nth(1).and_then(|l| l.split_whitespace().last()) {
            let story = run_line(&format!("whence --profile {profile} {path}")).unwrap();
            assert!(story.contains("…"), "{story}");
        }
        assert!(run_line(&format!("whence --profile {profile} /absent")).is_err());

        // Scoped dot export around a real key is much smaller than the
        // full graph.
        let full = run_line(&format!("dot --profile {profile}")).unwrap();
        let log_text = std::fs::read_to_string(&log).unwrap();
        let url = log_text
            .lines()
            .find_map(|l| l.split('\t').nth(4).filter(|f| f.starts_with("http")))
            .unwrap();
        let scoped = run_line(&format!(
            "dot --profile {profile} --around {url} --radius 1"
        ))
        .unwrap();
        assert!(scoped.starts_with("digraph"));
        assert!(
            scoped.len() < full.len(),
            "{} vs {}",
            scoped.len(),
            full.len()
        );
        assert!(run_line(&format!(
            "dot --profile {profile} --around http://nope/ --radius 1"
        ))
        .is_err());
    }

    #[test]
    fn query_usecase_dispatch_and_explain() {
        let dir = TempDir::new("explain");
        let log = dir.path("events.log");
        let profile = dir.path("profile");
        run_line(&format!("generate --days 2 --seed 7 --out {log}")).unwrap();
        run_line(&format!("ingest --profile {profile} {log}")).unwrap();

        // Every use-case subcommand dispatches.
        for sub in ["context", "ppr", "textual"] {
            let out = run_line(&format!("query --profile {profile} {sub} news")).unwrap();
            assert!(out.contains("hits"), "{sub}: {out}");
        }
        let out = run_line(&format!("query --profile {profile} personalize news")).unwrap();
        assert!(out.contains("query"), "{out}");
        let out = run_line(&format!(
            "query --profile {profile} timectx news --with software"
        ))
        .unwrap();
        assert!(out.contains("hits"), "{out}");
        assert!(run_line(&format!("query --profile {profile} timectx news")).is_err());
        assert!(run_line(&format!("query --profile {profile} lineage /nope.bin")).is_err());

        // --trace-id prints the minted request ID in the canonical 16-hex
        // format, and the ID is findable in the tail sampler afterwards.
        let out = run_line(&format!(
            "query --profile {profile} context news --trace-id"
        ))
        .unwrap();
        let id_line = out
            .lines()
            .find(|l| l.starts_with("trace id: "))
            .unwrap_or_else(|| panic!("no trace id line in {out}"));
        let hex = id_line.trim_start_matches("trace id: ");
        assert_eq!(hex.len(), 16, "{id_line}");
        let id = bp_obs::trace::parse_trace_id(hex).expect("id parses");
        assert!(id != 0);

        // --explain prints the per-stage table with every plan stage, the
        // budget story, and the (other) remainder row.
        let out = run_line(&format!("query --profile {profile} context news --explain")).unwrap();
        assert!(out.contains("query.context  total"), "{out}");
        for stage in ["text_seeds", "expand", "hits", "blend", "(other)"] {
            assert!(out.contains(stage), "missing {stage}: {out}");
        }
        assert!(out.contains("budget none"), "{out}");
        let out = run_line(&format!(
            "query --profile {profile} context news --budget 200 --explain"
        ))
        .unwrap();
        assert!(out.contains("budget 200.00ms"), "{out}");

        // --explain-json emits parseable JSON with the same accounting.
        let out = run_line(&format!(
            "query --profile {profile} context news --explain-json"
        ))
        .unwrap();
        let json_line = out.lines().find(|l| l.starts_with('{')).unwrap();
        let v = bp_obs::json::parse(json_line).expect("explain JSON parses");
        assert_eq!(v.get("query").and_then(|q| q.as_str()), Some("context"));
        assert!(v.get("stages").and_then(|s| s.as_array()).is_some());

        // The nested personalize profile carries its contextual child.
        let out = run_line(&format!(
            "query --profile {profile} personalize news --explain"
        ))
        .unwrap();
        assert!(out.contains("query.personalize"), "{out}");
        assert!(out.contains("query.context"), "{out}");
    }

    #[test]
    fn search_requires_query() {
        let dir = TempDir::new("noquery");
        let profile = dir.path("profile");
        assert!(run_line(&format!("search --profile {profile}")).is_err());
        assert!(run_line(&format!("when --profile {profile}")).is_err());
        assert!(run_line(&format!("lineage --profile {profile}")).is_err());
    }

    #[test]
    fn lineage_reports_missing_download() {
        let dir = TempDir::new("nodl");
        let profile = dir.path("profile");
        // Create an empty profile first.
        run_line(&format!("stats --profile {profile}")).unwrap();
        let err = run_line(&format!("lineage --profile {profile} /nope.bin")).unwrap_err();
        assert!(err.contains("no download"), "{err}");
    }

    #[test]
    fn redact_command_scrubs_history() {
        let dir = TempDir::new("redact");
        let log = dir.path("events.log");
        let profile = dir.path("profile");
        run_line(&format!("generate --days 1 --seed 3 --out {log}")).unwrap();
        run_line(&format!("ingest --profile {profile} {log}")).unwrap();
        // Find some URL from the log to redact.
        let text = std::fs::read_to_string(&log).unwrap();
        let url = text
            .lines()
            .find_map(|l| l.split('\t').nth(4).filter(|f| f.starts_with("http")))
            .unwrap()
            .to_owned();
        let out = run_line(&format!("redact --profile {profile} {url}")).unwrap();
        assert!(out.contains("redacted"), "{out}");
        assert!(out.contains("compacted"), "{out}");
        // Redacting again finds nothing.
        let out = run_line(&format!("redact --profile {profile} {url}")).unwrap();
        assert!(out.contains("nothing in history"), "{out}");
        // Missing argument errors.
        assert!(run_line(&format!("redact --profile {profile}")).is_err());
    }

    #[test]
    fn ingest_rejects_bad_files() {
        let dir = TempDir::new("badfile");
        let profile = dir.path("profile");
        assert!(run_line(&format!("ingest --profile {profile} /does/not/exist")).is_err());
        let bad = dir.path("bad.log");
        std::fs::write(&bad, "this is not an event log\n").unwrap();
        assert!(run_line(&format!("ingest --profile {profile} {bad}")).is_err());
    }
}
