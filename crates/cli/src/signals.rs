//! Minimal POSIX signal handling for the `serve` daemon — no `libc` crate
//! (the workspace takes no external dependencies; std already links the C
//! runtime, so binding `signal(2)` directly is enough).
//!
//! Handlers only store into process-wide atomics (the one operation that
//! is unconditionally async-signal-safe); the daemon's maintenance loop
//! polls them:
//!
//! * `SIGTERM` / `SIGINT` → [`shutdown_requested`] — graceful stop.
//! * `SIGUSR1` → [`take_flight_dump_request`] — write a flight dump
//!   without stopping.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static FLIGHT_DUMP: AtomicBool = AtomicBool::new(false);

/// Whether a `SIGTERM`/`SIGINT` has arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Consumes a pending `SIGUSR1` flight-dump request, if any.
pub fn take_flight_dump_request() -> bool {
    FLIGHT_DUMP.swap(false, Ordering::SeqCst)
}

#[cfg(unix)]
mod imp {
    use super::{Ordering, FLIGHT_DUMP, SHUTDOWN};

    // Signal numbers for Linux's primary architectures (x86-64, aarch64).
    const SIGINT: i32 = 2;
    const SIGUSR1: i32 = 10;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_shutdown(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_flight_dump(_signum: i32) {
        FLIGHT_DUMP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_shutdown);
            signal(SIGINT, on_shutdown);
            signal(SIGUSR1, on_flight_dump);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-unix builds run without signal integration; `--duration-s`
    /// remains the way to stop the daemon.
    pub fn install() {}
}

/// Installs the handlers (idempotent).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_flags_round_trip() {
        install();
        assert!(!take_flight_dump_request());
        FLIGHT_DUMP.store(true, Ordering::SeqCst);
        assert!(take_flight_dump_request());
        assert!(!take_flight_dump_request(), "request is consumed");
        // Shutdown is sticky by design; exercise it last and leave the
        // cross-test state documented: other tests must not assume false.
        SHUTDOWN.store(true, Ordering::SeqCst);
        assert!(shutdown_requested());
        SHUTDOWN.store(false, Ordering::SeqCst);
    }
}
