//! Scripted §2 scenarios with known ground truth.
//!
//! Each scenario builds the exact situation a use case describes, embedded
//! in realistic background browsing, and returns the markers (URLs, paths,
//! queries) the corresponding experiment asserts against.

use crate::session::{SessionGenerator, UserProfile};
use crate::web::{SyntheticWeb, WebConfig};
use bp_core::{BrowserEvent, EventKind, NavigationCause, TabId};
use bp_graph::Timestamp;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A scripted scenario: the event stream plus its ground-truth markers.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The full event stream (background + scripted moment), time-sorted.
    pub events: Vec<BrowserEvent>,
    /// Ground-truth markers, scenario-specific (see constructors).
    pub markers: ScenarioMarkers,
}

/// Ground truth for assertions and experiment scoring.
#[derive(Debug, Clone, Default)]
pub struct ScenarioMarkers {
    /// The query the user will later repeat (history or web search).
    pub query: String,
    /// URL of the page the user actually wants to find again.
    pub target_url: String,
    /// Title of that page.
    pub target_title: String,
    /// For download scenarios: the downloaded file path.
    pub download_path: String,
    /// For download scenarios: URL of the page the user would recognize.
    pub recognizable_url: String,
    /// For download scenarios: URL of the untrusted page.
    pub untrusted_url: String,
    /// For time-contextual scenarios: the companion activity's query.
    pub companion_query: String,
}

/// Generates the shared synthetic web used by all scenarios.
pub fn standard_web(seed: u64) -> SyntheticWeb {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SyntheticWeb::generate(&WebConfig::default(), &mut rng)
}

/// A smaller web for fast tests.
pub fn small_web(seed: u64) -> SyntheticWeb {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SyntheticWeb::generate(
        &WebConfig {
            pages_per_topic: 80,
            ..WebConfig::default()
        },
        &mut rng,
    )
}

fn background(web: &SyntheticWeb, profile: UserProfile, seed: u64, days: u32) -> Vec<BrowserEvent> {
    let mut generator = SessionGenerator::new(web, profile, ChaCha8Rng::seed_from_u64(seed));
    generator.generate(days)
}

fn after(events: &[BrowserEvent]) -> Timestamp {
    events
        .last()
        .map_or(Timestamp::EPOCH, |e| e.at)
        .plus_micros(3_600 * 1_000_000)
}

/// §2.1 — contextual history search. The user searches the web for
/// "rosebud", clicks through to a Citizen Kane page whose own text never
/// mentions rosebud, and later expects a *history* search for rosebud to
/// return it.
pub fn rosebud(seed: u64) -> (SyntheticWeb, Scenario) {
    let web = small_web(seed);
    let mut events = background(&web, UserProfile::cinephile(), seed, 3);
    let t0 = after(&events);
    // Find a film page that does NOT contain "rosebud" in title/URL — the
    // §2.1 point is that textual search cannot connect it to the query.
    let kane = web
        .pages()
        .iter()
        .find(|p| {
            p.url.contains("film")
                && !p.title.to_lowercase().contains("rosebud")
                && !p.url.to_lowercase().contains("rosebud")
        })
        .expect("film page without the query term")
        .clone();
    let tab = TabId(9_000);
    events.push(BrowserEvent::tab_opened(t0, tab, None));
    events.push(BrowserEvent::navigate(
        t0.plus_micros(5_000_000),
        tab,
        SyntheticWeb::search_url("rosebud"),
        Some("rosebud — search"),
        NavigationCause::SearchQuery {
            query: "rosebud".to_owned(),
        },
    ));
    events.push(BrowserEvent::navigate(
        t0.plus_micros(20_000_000),
        tab,
        &kane.url,
        Some("Citizen Kane (1941) — classic film"),
        NavigationCause::Link,
    ));
    events.push(BrowserEvent::tab_closed(t0.plus_micros(120_000_000), tab));
    (
        web,
        Scenario {
            events,
            markers: ScenarioMarkers {
                query: "rosebud".to_owned(),
                target_url: kane.url.clone(),
                target_title: "Citizen Kane (1941) — classic film".to_owned(),
                ..ScenarioMarkers::default()
            },
        },
    )
}

/// §2.2 — personalizing web search. A gardener browses gardening heavily;
/// when she searches the web for "rosebud" she means the flower, and the
/// engine's film-dominated results frustrate her. Ground truth: the target
/// is a *gardening* page matching rosebud.
pub fn gardener(seed: u64) -> (SyntheticWeb, Scenario) {
    let web = standard_web(seed);
    let events = background(&web, UserProfile::gardener(), seed, 7);
    // The page she wants: a gardening page matching "rosebud".
    let target = web
        .search("rosebud", 50)
        .into_iter()
        .map(|id| web.page(id))
        .find(|p| p.url.contains("gardening"))
        .expect("a gardening rosebud page exists")
        .clone();
    (
        web,
        Scenario {
            events,
            markers: ScenarioMarkers {
                query: "rosebud".to_owned(),
                target_url: target.url.clone(),
                target_title: target.title.clone(),
                ..ScenarioMarkers::default()
            },
        },
    )
}

/// §2.3 — time-contextual history search. The wine enthusiast views many
/// wine pages over weeks; ONE specific wine page was viewed while a plane
/// tickets search was open in another tab. "wine associated with plane
/// tickets" should pin down that page.
pub fn wine_and_tickets(seed: u64) -> (SyntheticWeb, Scenario) {
    let web = small_web(seed);
    let mut events = background(&web, UserProfile::wine_enthusiast(), seed, 10);
    let t0 = after(&events);
    let wine_target = web
        .pages()
        .iter()
        .find(|p| p.url.contains("wine"))
        .expect("wine page")
        .clone();
    // The scripted moment: wine page and plane-ticket search open together.
    let wine_tab = TabId(9_100);
    let tickets_tab = TabId(9_101);
    events.push(BrowserEvent::tab_opened(t0, wine_tab, None));
    events.push(BrowserEvent::navigate(
        t0.plus_micros(5_000_000),
        wine_tab,
        &wine_target.url,
        Some(&wine_target.title),
        NavigationCause::Typed,
    ));
    events.push(BrowserEvent::tab_opened(
        t0.plus_micros(30_000_000),
        tickets_tab,
        Some(wine_tab),
    ));
    events.push(BrowserEvent::navigate(
        t0.plus_micros(35_000_000),
        tickets_tab,
        SyntheticWeb::search_url("plane tickets"),
        Some("plane tickets — search"),
        NavigationCause::SearchQuery {
            query: "plane tickets".to_owned(),
        },
    ));
    let ticket_page = web
        .pages()
        .iter()
        .find(|p| p.url.contains("travel"))
        .expect("travel page");
    events.push(BrowserEvent::navigate(
        t0.plus_micros(60_000_000),
        tickets_tab,
        &ticket_page.url,
        Some(&ticket_page.title),
        NavigationCause::Link,
    ));
    events.push(BrowserEvent::tab_closed(
        t0.plus_micros(400_000_000),
        wine_tab,
    ));
    events.push(BrowserEvent::tab_closed(
        t0.plus_micros(420_000_000),
        tickets_tab,
    ));
    (
        web,
        Scenario {
            events,
            markers: ScenarioMarkers {
                query: "wine".to_owned(),
                companion_query: "plane tickets".to_owned(),
                target_url: wine_target.url.clone(),
                target_title: wine_target.title.clone(),
                ..ScenarioMarkers::default()
            },
        },
    )
}

/// §2.4 — download lineage. Background browsing, then a drive-by chain:
/// a search the user remembers → a well-known forum (visited often, hence
/// "recognizable") → a shortener redirect → an unfamiliar file host → a
/// download. The untrusted host later serves more downloads.
pub fn driveby(seed: u64) -> (SyntheticWeb, Scenario) {
    let web = small_web(seed);
    let mut events = background(&web, UserProfile::generic(), seed, 5);
    let t0 = after(&events);
    let tab = TabId(9_200);
    let forum_url = "http://forum.example/codecs";
    let host_url = "http://free-codecs.example/get";
    let payload = "/home/user/downloads/codec-pack.exe";
    events.push(BrowserEvent::tab_opened(t0, tab, None));
    // The user knows the forum well: many prior visits.
    for i in 0..6 {
        events.push(BrowserEvent::navigate(
            t0.plus_micros((10 + i) * 1_000_000),
            tab,
            forum_url,
            Some("Codec Forum — help"),
            NavigationCause::Typed,
        ));
    }
    events.push(BrowserEvent::navigate(
        t0.plus_micros(100_000_000),
        tab,
        SyntheticWeb::search_url("video codec download"),
        Some("video codec download — search"),
        NavigationCause::SearchQuery {
            query: "video codec download".to_owned(),
        },
    ));
    events.push(BrowserEvent::navigate(
        t0.plus_micros(110_000_000),
        tab,
        forum_url,
        Some("Codec Forum — help"),
        NavigationCause::Link,
    ));
    events.push(BrowserEvent::navigate(
        t0.plus_micros(120_000_000),
        tab,
        "http://short.example/zzz",
        None,
        NavigationCause::Link,
    ));
    events.push(BrowserEvent::navigate(
        t0.plus_micros(121_000_000),
        tab,
        host_url,
        Some("FREE CODECS 100% WORKING"),
        NavigationCause::Redirect { status: 302 },
    ));
    events.push(BrowserEvent::new(
        t0.plus_micros(130_000_000),
        EventKind::Download {
            tab,
            path: payload.to_owned(),
            bytes: 4_200_000,
        },
    ));
    // The untrusted host serves two more downloads in a later session.
    events.push(BrowserEvent::navigate(
        t0.plus_micros(200_000_000),
        tab,
        host_url,
        Some("FREE CODECS 100% WORKING"),
        NavigationCause::Typed,
    ));
    for (i, name) in ["toolbar-installer.exe", "player-update.exe"]
        .iter()
        .enumerate()
    {
        events.push(BrowserEvent::new(
            t0.plus_micros(210_000_000 + i as i64 * 5_000_000),
            EventKind::Download {
                tab,
                path: format!("/home/user/downloads/{name}"),
                bytes: 900_000,
            },
        ));
    }
    events.push(BrowserEvent::tab_closed(t0.plus_micros(300_000_000), tab));
    (
        web,
        Scenario {
            events,
            markers: ScenarioMarkers {
                query: "video codec download".to_owned(),
                download_path: payload.to_owned(),
                recognizable_url: forum_url.to_owned(),
                untrusted_url: host_url.to_owned(),
                ..ScenarioMarkers::default()
            },
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{CaptureConfig, ProvenanceBrowser};

    fn ingest(events: &[BrowserEvent], tag: &str) -> ProvenanceBrowser {
        let dir = std::env::temp_dir().join(format!(
            "bp-scenario-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default()).unwrap();
        browser.ingest_all(events).unwrap();
        browser
    }

    #[test]
    fn rosebud_scenario_is_ingestible_and_marked() {
        let (_, s) = rosebud(1);
        let browser = ingest(&s.events, "rosebud");
        assert!(browser.visit_count(&s.markers.target_url) >= 1);
        // The target page's own text must NOT contain the query (that is
        // the whole point of the scenario).
        assert!(!s.markers.target_url.to_lowercase().contains("rosebud"));
        let _ = std::fs::remove_dir_all(browser.store().dir());
    }

    #[test]
    fn wine_scenario_has_simultaneous_tabs() {
        let (_, s) = wine_and_tickets(2);
        let browser = ingest(&s.events, "wine");
        assert!(browser.visit_count(&s.markers.target_url) >= 1);
        let _ = std::fs::remove_dir_all(browser.store().dir());
    }

    #[test]
    fn driveby_scenario_records_the_chain() {
        let (_, s) = driveby(3);
        let browser = ingest(&s.events, "driveby");
        assert!(browser.visit_count(&s.markers.recognizable_url) >= 6);
        assert!(browser.visit_count(&s.markers.untrusted_url) >= 2);
        let g = browser.graph();
        let downloads = g.nodes_of_kind(bp_graph::NodeKind::Download).count();
        assert!(
            downloads >= 3,
            "payload + 2 later downloads, got {downloads}"
        );
        let _ = std::fs::remove_dir_all(browser.store().dir());
    }

    #[test]
    fn gardener_scenario_targets_a_gardening_page() {
        let (_, s) = gardener(4);
        assert!(s.markers.target_url.contains("gardening"));
        assert!(!s.events.is_empty());
    }

    #[test]
    fn scenarios_are_deterministic() {
        let (_, a) = driveby(9);
        let (_, b) = driveby(9);
        assert_eq!(a.events, b.events);
    }
}
