//! Calibration to the paper's reported history scale.
//!
//! §3: "one author's history has accumulated more than 25,000 nodes over
//! the past 79 days." Experiment E3 regenerates a history at that scale;
//! this module provides the calibrated generator and a measurement helper
//! used by the report binary and the benches.

use crate::session::{SessionGenerator, UserProfile};
use crate::web::{SyntheticWeb, WebConfig};
use bp_core::BrowserEvent;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The paper's history duration in days.
pub const PAPER_DAYS: u32 = 79;

/// The paper's approximate node count.
pub const PAPER_NODES: usize = 25_000;

/// A profile whose event volume lands near 25k provenance nodes over 79
/// days under the default capture configuration (measured by
/// `calibration_report`; see EXPERIMENTS.md for the realized figure).
pub fn paper_profile() -> UserProfile {
    let mut profile = UserProfile::generic();
    // ~4 sessions × ~40 actions ≈ 160 actions/day; each action averages
    // ~1.3 events and ~1.5 nodes/event (visit + page object + occasional
    // term/form/tab/embed nodes), landing near the paper's 25k/79 days
    // (≈316 nodes/day). The realized figure is printed by experiment E3.
    profile.sessions_per_day = (3, 5);
    profile.actions_per_session = (39, 63);
    profile
}

/// The web used for paper-scale histories.
pub fn paper_web(seed: u64) -> SyntheticWeb {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SyntheticWeb::generate(&WebConfig::default(), &mut rng)
}

/// Generates the full 79-day paper-scale event stream.
pub fn paper_history(web: &SyntheticWeb, seed: u64) -> Vec<BrowserEvent> {
    days_history(web, seed, PAPER_DAYS)
}

/// Generates `days` of paper-profile events (for scaling sweeps).
pub fn days_history(web: &SyntheticWeb, seed: u64, days: u32) -> Vec<BrowserEvent> {
    let mut generator =
        SessionGenerator::new(web, paper_profile(), ChaCha8Rng::seed_from_u64(seed));
    generator.generate(days)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{CaptureConfig, ProvenanceBrowser};

    #[test]
    fn short_history_scales_toward_paper_density() {
        // Ingest 4 days and check the nodes/day density extrapolates into
        // the paper's ballpark (25k over 79 days ≈ 316 nodes/day; accept a
        // generous band — the exact figure is reported by E3).
        let web = paper_web(42);
        let events = days_history(&web, 42, 4);
        let dir = std::env::temp_dir().join(format!(
            "bp-calibrate-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default()).unwrap();
        browser.ingest_all(&events).unwrap();
        let per_day = browser.graph().node_count() as f64 / 4.0;
        let _ = std::fs::remove_dir_all(&dir);
        assert!(
            (100.0..1200.0).contains(&per_day),
            "nodes/day {per_day} far from the paper's ~316"
        );
    }

    #[test]
    fn histories_are_deterministic() {
        let web = paper_web(1);
        assert_eq!(days_history(&web, 7, 2), days_history(&web, 7, 2));
    }
}
