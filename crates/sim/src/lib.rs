//! # bp-sim — the browser-session simulator
//!
//! The paper evaluated on a real 79-day Firefox history; this reproduction
//! has no real user, so it substitutes a behavioural simulator (see
//! DESIGN.md's substitution table). The simulator produces the *same
//! interface* real hooks would — a stream of [`bp_core::BrowserEvent`]s —
//! with the statistical structure the experiments depend on:
//!
//! - [`web`] — a synthetic topical web with Zipfian page popularity, a
//!   link graph, and a search engine (the "rosebud" ambiguity of §2.1–2.2
//!   is built into its vocabularies);
//! - [`session`] — a day-structured user model (searches, link chains,
//!   tabs, bookmarks, forms, downloads, redirects, embeds);
//! - [`scenario`] — scripted §2 ground-truth scenarios (rosebud, gardener,
//!   wine-and-tickets, drive-by download);
//! - [`calibrate`] — the 79-day / ~25k-node paper-scale workload (§3, E3).
//!
//! # Example
//!
//! ```
//! use bp_sim::web::{SyntheticWeb, WebConfig};
//! use bp_sim::session::{SessionGenerator, UserProfile};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let web = SyntheticWeb::generate(&WebConfig::default(), &mut rng);
//! let mut generator = SessionGenerator::new(
//!     &web,
//!     UserProfile::generic(),
//!     rand_chacha::ChaCha8Rng::seed_from_u64(8),
//! );
//! let events = generator.generate(2);
//! assert!(!events.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod scenario;
pub mod session;
pub mod web;
