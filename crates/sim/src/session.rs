//! The user behaviour model: turning a synthetic web into an event stream.
//!
//! Generates day-structured browsing sessions — searches, link-following,
//! typed navigations to favourites, tabs, bookmarks, forms, downloads,
//! redirects, embedded content — with the statistical shape the paper's
//! history had ("more than 25,000 nodes over the past 79 days", §3). Every
//! emitted stream is valid for the capture layer: tabs exist before they
//! navigate, bookmarks exist before they are clicked, downloads happen on
//! pages.

use crate::web::{SyntheticWeb, TOPICS};
use bp_core::{BrowserEvent, EventKind, NavigationCause, TabId};
use bp_graph::Timestamp;
use rand::Rng;

/// Relative action frequencies for one simulated user.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// Interest weights per topic index (unlisted topics are never
    /// browsed deliberately).
    pub interests: Vec<(usize, f64)>,
    /// Sessions per day (inclusive range).
    pub sessions_per_day: (u32, u32),
    /// Actions per session (inclusive range).
    pub actions_per_session: (u32, u32),
    /// Action weights; normalized at sample time.
    pub weights: ActionWeights,
}

/// Weights for each action the simulated user can take.
#[derive(Debug, Clone)]
pub struct ActionWeights {
    /// Issue a web search on an interest topic.
    pub search: f64,
    /// Follow a link from the current page (or a search result).
    pub follow_link: f64,
    /// Type a favourite URL into the location bar.
    pub typed: f64,
    /// Open a new tab from the current one.
    pub new_tab: f64,
    /// Close a tab.
    pub close_tab: f64,
    /// Press back.
    pub back: f64,
    /// Bookmark the current page.
    pub bookmark_add: f64,
    /// Navigate via an existing bookmark.
    pub bookmark_click: f64,
    /// Download from the current page.
    pub download: f64,
    /// Submit a form (travel/search style).
    pub form: f64,
    /// Reload the current page.
    pub reload: f64,
}

impl Default for ActionWeights {
    fn default() -> Self {
        ActionWeights {
            search: 12.0,
            follow_link: 45.0,
            typed: 10.0,
            new_tab: 6.0,
            close_tab: 5.0,
            back: 8.0,
            bookmark_add: 2.0,
            bookmark_click: 4.0,
            download: 2.0,
            form: 3.0,
            reload: 3.0,
        }
    }
}

fn topic_index(name: &str) -> usize {
    TOPICS
        .iter()
        .position(|t| t.name == name)
        .expect("known topic")
}

impl UserProfile {
    /// A generic multi-interest user.
    pub fn generic() -> Self {
        UserProfile {
            interests: vec![
                (topic_index("news"), 3.0),
                (topic_index("technology"), 2.0),
                (topic_index("sports"), 1.0),
                (topic_index("cooking"), 1.0),
            ],
            sessions_per_day: (2, 4),
            actions_per_session: (8, 30),
            weights: ActionWeights::default(),
        }
    }

    /// The §2.2 gardener: searches "rosebud" meaning the flower.
    pub fn gardener() -> Self {
        UserProfile {
            interests: vec![
                (topic_index("gardening"), 6.0),
                (topic_index("cooking"), 1.5),
                (topic_index("news"), 1.0),
            ],
            ..Self::generic()
        }
    }

    /// The §2.1 cinephile: searches "rosebud" and finds Citizen Kane.
    pub fn cinephile() -> Self {
        UserProfile {
            interests: vec![
                (topic_index("film"), 6.0),
                (topic_index("news"), 1.5),
                (topic_index("technology"), 1.0),
            ],
            ..Self::generic()
        }
    }

    /// The §2.3 wine enthusiast who also shops for plane tickets.
    pub fn wine_enthusiast() -> Self {
        UserProfile {
            interests: vec![
                (topic_index("wine"), 5.0),
                (topic_index("travel"), 3.0),
                (topic_index("cooking"), 1.0),
            ],
            ..Self::generic()
        }
    }

    fn sample_topic(&self, rng: &mut impl Rng) -> usize {
        let total: f64 = self.interests.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen::<f64>() * total;
        for &(topic, w) in &self.interests {
            x -= w;
            if x <= 0.0 {
                return topic;
            }
        }
        self.interests.last().expect("non-empty interests").0
    }
}

#[derive(Debug, Clone)]
struct TabSim {
    id: TabId,
    /// Current page id in the synthetic web, or None for a results page.
    page: Option<usize>,
    /// Query whose results page we are on, if any.
    results_of: Option<String>,
    /// Back stack of page ids.
    back_stack: Vec<usize>,
}

/// Generates event streams for one user against one web.
#[derive(Debug)]
pub struct SessionGenerator<'w, R> {
    web: &'w SyntheticWeb,
    profile: UserProfile,
    rng: R,
    clock: Timestamp,
    tabs: Vec<TabSim>,
    next_tab: u32,
    bookmarks: Vec<String>,
    downloads: u64,
    redirects: u64,
}

impl<'w, R: Rng> SessionGenerator<'w, R> {
    /// Creates a generator starting at timestamp zero.
    pub fn new(web: &'w SyntheticWeb, profile: UserProfile, rng: R) -> Self {
        SessionGenerator {
            web,
            profile,
            rng,
            clock: Timestamp::EPOCH,
            tabs: Vec::new(),
            next_tab: 0,
            bookmarks: Vec::new(),
            downloads: 0,
            redirects: 0,
        }
    }

    fn tick(&mut self, min_s: i64, max_s: i64) -> Timestamp {
        let dwell = self.rng.gen_range(min_s..=max_s);
        self.clock = self.clock.plus_micros(dwell * 1_000_000);
        self.clock
    }

    fn open_tab(&mut self, events: &mut Vec<BrowserEvent>, opener: Option<TabId>) -> usize {
        let id = TabId(self.next_tab);
        self.next_tab += 1;
        let at = self.tick(1, 5);
        events.push(BrowserEvent::tab_opened(at, id, opener));
        self.tabs.push(TabSim {
            id,
            page: None,
            results_of: None,
            back_stack: Vec::new(),
        });
        self.tabs.len() - 1
    }

    fn navigate(
        &mut self,
        events: &mut Vec<BrowserEvent>,
        tab_idx: usize,
        page_id: usize,
        cause: NavigationCause,
    ) {
        let at = self.tick(3, 180);
        let page = self.web.page(page_id);
        let tab = self.tabs[tab_idx].id;
        events.push(BrowserEvent::navigate(
            at,
            tab,
            &page.url,
            Some(&page.title),
            cause,
        ));
        // Occasionally the page pulls embedded third-party content.
        if self.rng.gen_bool(0.25) {
            let at = self.tick(1, 2);
            events.push(BrowserEvent::new(
                at,
                EventKind::EmbedLoad {
                    tab,
                    url: format!("http://cdn.example/assets/{}.js", page_id % 50),
                },
            ));
        }
        let state = &mut self.tabs[tab_idx];
        if let Some(prev) = state.page {
            state.back_stack.push(prev);
        }
        state.page = Some(page_id);
        state.results_of = None;
    }

    /// Navigate with a chance of a redirect hop through a shortener.
    fn navigate_maybe_redirected(
        &mut self,
        events: &mut Vec<BrowserEvent>,
        tab_idx: usize,
        page_id: usize,
        cause: NavigationCause,
    ) {
        // Redirects require an origin page; 10% of link follows hop
        // through a shortener first.
        let has_origin =
            self.tabs[tab_idx].page.is_some() || self.tabs[tab_idx].results_of.is_some();
        if has_origin && matches!(cause, NavigationCause::Link) && self.rng.gen_bool(0.1) {
            self.redirects += 1;
            let at = self.tick(2, 30);
            let tab = self.tabs[tab_idx].id;
            events.push(BrowserEvent::navigate(
                at,
                tab,
                format!("http://short.example/{}", self.redirects),
                None,
                NavigationCause::Link,
            ));
            let at = self.tick(1, 1);
            let page = self.web.page(page_id);
            events.push(BrowserEvent::navigate(
                at,
                tab,
                &page.url,
                Some(&page.title),
                NavigationCause::Redirect {
                    status: if self.rng.gen_bool(0.5) { 301 } else { 302 },
                },
            ));
            let state = &mut self.tabs[tab_idx];
            if let Some(prev) = state.page {
                state.back_stack.push(prev);
            }
            state.page = Some(page_id);
            state.results_of = None;
        } else {
            self.navigate(events, tab_idx, page_id, cause);
        }
    }

    fn do_search(&mut self, events: &mut Vec<BrowserEvent>, tab_idx: usize) {
        let topic = self.profile.sample_topic(&mut self.rng);
        let vocab = TOPICS[topic].vocabulary;
        let mut query = vocab[self.rng.gen_range(0..vocab.len())].to_owned();
        if self.rng.gen_bool(0.4) {
            let second = vocab[self.rng.gen_range(0..vocab.len())];
            if second != query {
                query.push(' ');
                query.push_str(second);
            }
        }
        let at = self.tick(3, 60);
        let tab = self.tabs[tab_idx].id;
        events.push(BrowserEvent::navigate(
            at,
            tab,
            SyntheticWeb::search_url(&query),
            Some(&format!("{query} — search")),
            NavigationCause::SearchQuery {
                query: query.clone(),
            },
        ));
        let state = &mut self.tabs[tab_idx];
        if let Some(prev) = state.page {
            state.back_stack.push(prev);
        }
        state.page = None;
        state.results_of = Some(query.clone());
        // Usually click through to a result.
        if self.rng.gen_bool(0.85) {
            let results = self.web.search(&query, 10);
            if !results.is_empty() {
                let pick = self.rng.gen_range(0..results.len().min(5));
                self.navigate_maybe_redirected(
                    events,
                    tab_idx,
                    results[pick],
                    NavigationCause::Link,
                );
            }
        }
    }

    fn step(&mut self, events: &mut Vec<BrowserEvent>) {
        if self.tabs.is_empty() {
            self.open_tab(events, None);
        }
        let tab_idx = self.rng.gen_range(0..self.tabs.len());
        let w = self.profile.weights.clone();
        let choices = [
            (w.search, 0),
            (w.follow_link, 1),
            (w.typed, 2),
            (w.new_tab, 3),
            (w.close_tab, 4),
            (w.back, 5),
            (w.bookmark_add, 6),
            (w.bookmark_click, 7),
            (w.download, 8),
            (w.form, 9),
            (w.reload, 10),
        ];
        let total: f64 = choices.iter().map(|(w, _)| w).sum();
        let mut x = self.rng.gen::<f64>() * total;
        let mut action = 1;
        for (weight, a) in choices {
            x -= weight;
            if x <= 0.0 {
                action = a;
                break;
            }
        }
        match action {
            0 => self.do_search(events, tab_idx),
            1 => {
                // Follow a link from the current context.
                let target = match (&self.tabs[tab_idx].page, &self.tabs[tab_idx].results_of) {
                    (Some(page_id), _) => {
                        let links = &self.web.page(*page_id).links;
                        if links.is_empty() {
                            None
                        } else {
                            Some(links[self.rng.gen_range(0..links.len())])
                        }
                    }
                    (None, Some(query)) => {
                        let results = self.web.search(query, 10);
                        if results.is_empty() {
                            None
                        } else {
                            Some(results[self.rng.gen_range(0..results.len())])
                        }
                    }
                    (None, None) => None,
                };
                match target {
                    Some(t) => {
                        self.navigate_maybe_redirected(events, tab_idx, t, NavigationCause::Link)
                    }
                    None => self.do_search(events, tab_idx),
                }
            }
            2 => {
                // Typed navigation to a popular page of an interest topic.
                let topic = self.profile.sample_topic(&mut self.rng);
                let page_id = self.web.sample_topic_page(topic, &mut self.rng).id;
                self.navigate(events, tab_idx, page_id, NavigationCause::Typed);
            }
            3 => {
                let opener = self.tabs[tab_idx].id;
                let new_idx = self.open_tab(events, Some(opener));
                let topic = self.profile.sample_topic(&mut self.rng);
                let page_id = self.web.sample_topic_page(topic, &mut self.rng).id;
                self.navigate(events, new_idx, page_id, NavigationCause::Link);
            }
            4 => {
                if self.tabs.len() > 1 {
                    let at = self.tick(1, 10);
                    let tab = self.tabs.remove(tab_idx);
                    events.push(BrowserEvent::tab_closed(at, tab.id));
                }
            }
            5 => {
                if let Some(prev) = self.tabs[tab_idx].back_stack.pop() {
                    let at = self.tick(1, 20);
                    let page = self.web.page(prev);
                    let tab = self.tabs[tab_idx].id;
                    events.push(BrowserEvent::navigate(
                        at,
                        tab,
                        &page.url,
                        Some(&page.title),
                        NavigationCause::BackForward,
                    ));
                    self.tabs[tab_idx].page = Some(prev);
                    self.tabs[tab_idx].results_of = None;
                }
            }
            6 => {
                if let Some(page_id) = self.tabs[tab_idx].page {
                    let page = self.web.page(page_id);
                    if !self.bookmarks.contains(&page.url) {
                        let at = self.tick(1, 10);
                        events.push(BrowserEvent::new(
                            at,
                            EventKind::BookmarkAdd {
                                tab: self.tabs[tab_idx].id,
                                name: page.title.clone(),
                            },
                        ));
                        self.bookmarks.push(page.url.clone());
                    }
                }
            }
            7 => {
                if !self.bookmarks.is_empty() {
                    let url = self.bookmarks[self.rng.gen_range(0..self.bookmarks.len())].clone();
                    if let Some(page) = self.web.pages().iter().find(|p| p.url == url) {
                        let page_id = page.id;
                        self.navigate(
                            events,
                            tab_idx,
                            page_id,
                            NavigationCause::Bookmark { bookmark_url: url },
                        );
                    }
                }
            }
            8 => {
                if let Some(page_id) = self.tabs[tab_idx].page {
                    // File-hosting pages always have something to grab;
                    // ordinary pages occasionally do (a PDF, an image).
                    if self.web.page(page_id).offers_download || self.rng.gen_bool(0.3) {
                        self.downloads += 1;
                        let at = self.tick(5, 120);
                        events.push(BrowserEvent::new(
                            at,
                            EventKind::Download {
                                tab: self.tabs[tab_idx].id,
                                path: format!("/home/user/downloads/file-{}.bin", self.downloads),
                                bytes: self.rng.gen_range(10_000..50_000_000),
                            },
                        ));
                    }
                }
            }
            9 => {
                // A form submission on a travel-flavoured flow.
                if self.tabs[tab_idx].page.is_some() {
                    let topic = self.profile.sample_topic(&mut self.rng);
                    let vocab = TOPICS[topic].vocabulary;
                    let field = vocab[self.rng.gen_range(0..vocab.len())];
                    let page_id = self.web.sample_topic_page(topic, &mut self.rng).id;
                    self.navigate(
                        events,
                        tab_idx,
                        page_id,
                        NavigationCause::FormSubmit {
                            fields: format!("q={field}&when=soon"),
                        },
                    );
                }
            }
            _ => {
                if let Some(page_id) = self.tabs[tab_idx].page {
                    self.navigate(events, tab_idx, page_id, NavigationCause::Reload);
                }
            }
        }
    }

    /// Generates one day of browsing starting at `day * 24h`.
    pub fn generate_day(&mut self, day: u32) -> Vec<BrowserEvent> {
        let mut events = Vec::new();
        // Jump the clock to this day's morning (sessions never cross days).
        let day_start = i64::from(day) * 86_400 + 8 * 3_600;
        if self.clock.as_secs() < day_start {
            self.clock = Timestamp::from_secs(day_start);
        }
        let (lo, hi) = self.profile.sessions_per_day;
        let sessions = self.rng.gen_range(lo..=hi);
        for _ in 0..sessions {
            let (alo, ahi) = self.profile.actions_per_session;
            let actions = self.rng.gen_range(alo..=ahi);
            for _ in 0..actions {
                self.step(&mut events);
            }
            // Inter-session gap: 1–4 hours.
            let gap = self.rng.gen_range(3_600..4 * 3_600);
            self.clock = self.clock.plus_micros(gap * 1_000_000);
        }
        events
    }

    /// Generates `days` full days of browsing.
    pub fn generate(&mut self, days: u32) -> Vec<BrowserEvent> {
        let mut events = Vec::new();
        for day in 0..days {
            events.extend(self.generate_day(day));
        }
        events
    }

    /// Bookmarked URLs so far.
    pub fn bookmarks(&self) -> &[String] {
        &self.bookmarks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::WebConfig;
    use bp_core::{CaptureConfig, ProvenanceBrowser};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn web() -> SyntheticWeb {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        SyntheticWeb::generate(
            &WebConfig {
                pages_per_topic: 100,
                ..WebConfig::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let w = web();
        let mut g1 =
            SessionGenerator::new(&w, UserProfile::generic(), ChaCha8Rng::seed_from_u64(1));
        let mut g2 =
            SessionGenerator::new(&w, UserProfile::generic(), ChaCha8Rng::seed_from_u64(1));
        assert_eq!(g1.generate(3), g2.generate(3));
    }

    #[test]
    fn timestamps_are_nondecreasing() {
        let w = web();
        let mut g = SessionGenerator::new(&w, UserProfile::generic(), ChaCha8Rng::seed_from_u64(2));
        let events = g.generate(5);
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at, "{:?} then {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn streams_are_valid_for_capture() {
        let w = web();
        for seed in 0..5u64 {
            let mut g =
                SessionGenerator::new(&w, UserProfile::generic(), ChaCha8Rng::seed_from_u64(seed));
            let events = g.generate(3);
            let dir = std::env::temp_dir().join(format!(
                "bp-sim-valid-{seed}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default()).unwrap();
            let n = browser.ingest_all(&events).unwrap();
            assert_eq!(n, events.len(), "every event must apply cleanly");
            assert!(browser.graph().verify_acyclic());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn capture_preserves_the_monotone_fast_path() {
        // Regression guard: capture must create derivation sources before
        // the nodes deriving from them, so every edge points newer→older
        // and cycle checks stay O(1). A single low→high edge silently
        // turns edge insertion O(V+E) — a 100x ingest slowdown at paper
        // scale.
        let w = web();
        let mut g = SessionGenerator::new(&w, UserProfile::generic(), ChaCha8Rng::seed_from_u64(9));
        let events = g.generate(5);
        let dir = std::env::temp_dir().join(format!(
            "bp-sim-mono-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default()).unwrap();
        browser.ingest_all(&events).unwrap();
        assert!(
            browser.graph().is_monotone(),
            "a capture-path edge points low→high; find it and reorder node creation"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profiles_browse_their_topics() {
        let w = web();
        let mut g = SessionGenerator::new(
            &w,
            UserProfile::wine_enthusiast(),
            ChaCha8Rng::seed_from_u64(3),
        );
        let events = g.generate(10);
        let urls: Vec<&str> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Navigate { url, .. } => Some(url.as_str()),
                _ => None,
            })
            .collect();
        let wine = urls.iter().filter(|u| u.contains("wine")).count();
        let sports = urls.iter().filter(|u| u.contains("sports")).count();
        assert!(wine > sports, "wine {wine} vs sports {sports}");
    }

    #[test]
    fn streams_contain_variety() {
        let w = web();
        let mut g = SessionGenerator::new(&w, UserProfile::generic(), ChaCha8Rng::seed_from_u64(4));
        let events = g.generate(20);
        let has = |f: &dyn Fn(&EventKind) -> bool| events.iter().any(|e| f(&e.kind));
        assert!(has(&|k| matches!(k, EventKind::TabOpened { .. })));
        assert!(has(&|k| matches!(k, EventKind::TabClosed { .. })));
        assert!(has(&|k| matches!(
            k,
            EventKind::Navigate {
                cause: NavigationCause::SearchQuery { .. },
                ..
            }
        )));
        assert!(has(&|k| matches!(
            k,
            EventKind::Navigate {
                cause: NavigationCause::Typed,
                ..
            }
        )));
        assert!(has(&|k| matches!(
            k,
            EventKind::Navigate {
                cause: NavigationCause::Redirect { .. },
                ..
            }
        )));
        assert!(has(&|k| matches!(k, EventKind::EmbedLoad { .. })));
        assert!(has(&|k| matches!(k, EventKind::BookmarkAdd { .. })));
        assert!(has(&|k| matches!(k, EventKind::Download { .. })));
        assert!(has(&|k| matches!(
            k,
            EventKind::Navigate {
                cause: NavigationCause::FormSubmit { .. },
                ..
            }
        )));
    }

    #[test]
    fn day_boundaries_respected() {
        let w = web();
        let mut g = SessionGenerator::new(&w, UserProfile::generic(), ChaCha8Rng::seed_from_u64(5));
        let day0 = g.generate_day(0);
        let day5 = g.generate_day(5);
        assert!(day0.last().unwrap().at < day5.first().unwrap().at);
        assert!(day5.first().unwrap().at.as_secs() >= 5 * 86_400);
    }
}
