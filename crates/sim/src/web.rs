//! The synthetic web: topical pages, domains, links, and a search engine.
//!
//! Experiments need a web for the simulated user to browse. Pages belong
//! to **topics** (gardening, film, wine, travel, …), carry titles and
//! content drawn from the topic's vocabulary, and link preferentially
//! within their topic with Zipfian popularity — enough structure that
//! contextual search has real signal to find and personalization has real
//! ambiguity to resolve (the paper's "rosebud" is deliberately a word with
//! two topical readings, §2.1–2.2).

use rand::distributions::Distribution;
use rand::Rng;

/// A topic with its vocabulary.
#[derive(Debug, Clone)]
pub struct Topic {
    /// Topic name (also its domain stem).
    pub name: &'static str,
    /// Vocabulary: words pages of this topic use in titles and content.
    pub vocabulary: &'static [&'static str],
}

/// The fixed topic universe. "rosebud" deliberately appears in both the
/// film and gardening vocabularies.
pub static TOPICS: &[Topic] = &[
    Topic {
        name: "film",
        vocabulary: &[
            "film", "movie", "cinema", "director", "actor", "scene", "classic", "review",
            "rosebud", "kane", "citizen", "noir", "reel", "screen", "script", "oscar", "drama",
            "plot", "cast", "sled",
        ],
    },
    Topic {
        name: "gardening",
        vocabulary: &[
            "garden",
            "flower",
            "rosebud",
            "rose",
            "soil",
            "seed",
            "bloom",
            "prune",
            "spring",
            "plant",
            "petal",
            "shrub",
            "compost",
            "bulb",
            "stem",
            "greenhouse",
            "perennial",
            "mulch",
            "trellis",
            "bud",
        ],
    },
    Topic {
        name: "wine",
        vocabulary: &[
            "wine",
            "vineyard",
            "tasting",
            "bottle",
            "vintage",
            "cellar",
            "grape",
            "napa",
            "red",
            "white",
            "cork",
            "winery",
            "sommelier",
            "barrel",
            "blend",
            "estate",
            "reserve",
            "aroma",
            "tannin",
            "pour",
        ],
    },
    Topic {
        name: "travel",
        vocabulary: &[
            "travel",
            "flight",
            "plane",
            "ticket",
            "hotel",
            "airport",
            "booking",
            "trip",
            "fare",
            "destination",
            "luggage",
            "tour",
            "itinerary",
            "airline",
            "departure",
            "arrival",
            "visa",
            "beach",
            "city",
            "journey",
        ],
    },
    Topic {
        name: "cooking",
        vocabulary: &[
            "recipe",
            "cooking",
            "kitchen",
            "bake",
            "oven",
            "flavor",
            "dish",
            "ingredient",
            "sauce",
            "roast",
            "grill",
            "spice",
            "dough",
            "simmer",
            "chef",
            "menu",
            "dinner",
            "breakfast",
            "dessert",
            "pan",
        ],
    },
    Topic {
        name: "technology",
        vocabulary: &[
            "software",
            "code",
            "computer",
            "program",
            "network",
            "data",
            "server",
            "cloud",
            "browser",
            "provenance",
            "graph",
            "storage",
            "query",
            "database",
            "algorithm",
            "system",
            "kernel",
            "compile",
            "debug",
            "release",
        ],
    },
    Topic {
        name: "news",
        vocabulary: &[
            "news",
            "report",
            "headline",
            "politics",
            "economy",
            "market",
            "election",
            "policy",
            "world",
            "local",
            "breaking",
            "analysis",
            "opinion",
            "editor",
            "journalist",
            "story",
            "press",
            "media",
            "update",
            "coverage",
        ],
    },
    Topic {
        name: "sports",
        vocabulary: &[
            "game",
            "team",
            "score",
            "league",
            "match",
            "player",
            "season",
            "coach",
            "stadium",
            "final",
            "tournament",
            "goal",
            "racing",
            "champion",
            "record",
            "training",
            "fitness",
            "running",
            "cycling",
            "swimming",
        ],
    },
];

/// One synthetic page.
#[derive(Debug, Clone)]
pub struct Page {
    /// Stable page id (index into [`SyntheticWeb::pages`]).
    pub id: usize,
    /// Full URL.
    pub url: String,
    /// Title text (topic vocabulary).
    pub title: String,
    /// Body terms (for the search engine's index).
    pub content: Vec<&'static str>,
    /// Topic index into [`TOPICS`].
    pub topic: usize,
    /// Outgoing link targets (page ids).
    pub links: Vec<usize>,
    /// `true` if downloading from this page is plausible (file-hosting
    /// flavoured pages).
    pub offers_download: bool,
}

/// Zipf-like popularity sampler over `n` items (rank 1 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler for `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over zero items");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }
}

impl Distribution<usize> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < x)
    }
}

/// The generated web.
#[derive(Debug, Clone)]
pub struct SyntheticWeb {
    /// All pages, id-indexed.
    pages: Vec<Page>,
    /// Page ids per topic.
    by_topic: Vec<Vec<usize>>,
    /// Popularity sampler within a topic.
    zipf: Zipf,
}

/// Configuration for web generation.
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// Pages per topic.
    pub pages_per_topic: usize,
    /// Outgoing links per page.
    pub links_per_page: usize,
    /// Fraction of links that stay within the page's topic.
    pub intra_topic_fraction: f64,
    /// Zipf exponent for popularity.
    pub zipf_exponent: f64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            pages_per_topic: 400,
            links_per_page: 8,
            intra_topic_fraction: 0.8,
            zipf_exponent: 1.0,
        }
    }
}

impl SyntheticWeb {
    /// Generates a web from `config` using `rng`.
    pub fn generate(config: &WebConfig, rng: &mut impl Rng) -> Self {
        let mut pages = Vec::new();
        let mut by_topic: Vec<Vec<usize>> = vec![Vec::new(); TOPICS.len()];
        for (topic_idx, topic) in TOPICS.iter().enumerate() {
            for i in 0..config.pages_per_topic {
                let id = pages.len();
                let vocab = topic.vocabulary;
                let mut content: Vec<&'static str> = Vec::with_capacity(8);
                for _ in 0..8 {
                    content.push(vocab[rng.gen_range(0..vocab.len())]);
                }
                let w1 = vocab[rng.gen_range(0..vocab.len())];
                let w2 = vocab[rng.gen_range(0..vocab.len())];
                let domain_no = i % 20;
                let offers_download = i % 17 == 0;
                let url = format!("http://{}{domain_no}.example/{w1}/{w2}-{i}", topic.name);
                let title = format!("{w1} {w2} — {} page {i}", topic.name);
                pages.push(Page {
                    id,
                    url,
                    title,
                    content,
                    topic: topic_idx,
                    links: Vec::new(),
                    offers_download,
                });
                by_topic[topic_idx].push(id);
            }
        }
        let zipf = Zipf::new(config.pages_per_topic, config.zipf_exponent);
        // Wire links with topical locality and Zipfian target popularity.
        let n_topics = TOPICS.len();
        #[allow(clippy::needless_range_loop)] // `pages` is mutated at [id] below
        for id in 0..pages.len() {
            let topic = pages[id].topic;
            let mut links = Vec::with_capacity(config.links_per_page);
            for _ in 0..config.links_per_page {
                let target_topic = if rng.gen_bool(config.intra_topic_fraction) {
                    topic
                } else {
                    rng.gen_range(0..n_topics)
                };
                let rank = zipf.sample(rng).min(by_topic[target_topic].len() - 1);
                let target = by_topic[target_topic][rank];
                if target != id && !links.contains(&target) {
                    links.push(target);
                }
            }
            pages[id].links = links;
        }
        SyntheticWeb {
            pages,
            by_topic,
            zipf,
        }
    }

    /// All pages.
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// One page by id.
    pub fn page(&self, id: usize) -> &Page {
        &self.pages[id]
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` if the web has no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Samples a page of `topic` with Zipfian popularity.
    pub fn sample_topic_page(&self, topic: usize, rng: &mut impl Rng) -> &Page {
        let ids = &self.by_topic[topic];
        let rank = self.zipf.sample(rng).min(ids.len() - 1);
        &self.pages[ids[rank]]
    }

    /// The search engine: ranks pages by query-term overlap with their
    /// title and content, with a popularity tiebreak. Returns up to `k`
    /// page ids. This is what the simulated user clicks through, and the
    /// target surface for the §2.2 personalization experiment.
    pub fn search(&self, query: &str, k: usize) -> Vec<usize> {
        let terms: Vec<String> = query.split_whitespace().map(str::to_lowercase).collect();
        if terms.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<(usize, f64)> = Vec::new();
        for page in &self.pages {
            let mut score = 0.0;
            for term in &terms {
                let in_title = page.title.to_lowercase().contains(term.as_str());
                let in_content = page.content.iter().any(|w| w == term);
                if in_title {
                    score += 2.0;
                }
                if in_content {
                    score += 1.0;
                }
            }
            if score > 0.0 {
                // Popularity tiebreak: earlier pages in a topic are the
                // Zipf-popular ones.
                let rank_bonus = 1.0 / (1.0 + (page.id % 400) as f64);
                scored.push((page.id, score + rank_bonus));
            }
        }
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored.into_iter().map(|(id, _)| id).collect()
    }

    /// URL of the search-results page for a query.
    pub fn search_url(query: &str) -> String {
        let encoded: String = query
            .chars()
            .map(|c| if c == ' ' { '+' } else { c })
            .collect();
        format!("http://search.example/?q={encoded}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn web() -> SyntheticWeb {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        SyntheticWeb::generate(&WebConfig::default(), &mut rng)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = web();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let b = SyntheticWeb::generate(&WebConfig::default(), &mut rng);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.pages().iter().zip(b.pages()) {
            assert_eq!(pa.url, pb.url);
            assert_eq!(pa.links, pb.links);
        }
    }

    #[test]
    fn pages_cover_all_topics() {
        let w = web();
        assert_eq!(w.len(), TOPICS.len() * 400);
        for topic in 0..TOPICS.len() {
            assert!(w.pages().iter().any(|p| p.topic == topic));
        }
    }

    #[test]
    fn links_mostly_stay_in_topic() {
        let w = web();
        let mut intra = 0usize;
        let mut total = 0usize;
        for page in w.pages() {
            for &l in &page.links {
                total += 1;
                if w.page(l).topic == page.topic {
                    intra += 1;
                }
            }
            assert!(!page.links.contains(&page.id), "no self links");
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.7, "intra-topic fraction {frac}");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng).min(99)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 10 * counts[50].max(1) / 2);
    }

    #[test]
    fn search_finds_topical_pages() {
        let w = web();
        let hits = w.search("wine tasting", 10);
        assert!(!hits.is_empty());
        // Top hits should be wine-topic pages.
        let wine_topic = TOPICS.iter().position(|t| t.name == "wine").unwrap();
        let top_topical = hits
            .iter()
            .take(5)
            .filter(|&&id| w.page(id).topic == wine_topic)
            .count();
        assert!(top_topical >= 3, "{top_topical}/5 topical");
    }

    #[test]
    fn rosebud_is_ambiguous_by_design() {
        let w = web();
        let hits = w.search("rosebud", 20);
        let film = TOPICS.iter().position(|t| t.name == "film").unwrap();
        let garden = TOPICS.iter().position(|t| t.name == "gardening").unwrap();
        let topics: Vec<usize> = hits.iter().map(|&id| w.page(id).topic).collect();
        assert!(topics.contains(&film), "film pages match rosebud");
        assert!(topics.contains(&garden), "gardening pages match rosebud");
    }

    #[test]
    fn search_is_deterministic_and_bounded() {
        let w = web();
        assert_eq!(w.search("wine", 5), w.search("wine", 5));
        assert!(w.search("wine", 5).len() <= 5);
        assert!(w.search("", 5).is_empty());
        assert!(w.search("zzzznonexistent", 5).is_empty());
    }

    #[test]
    fn search_url_encodes_spaces() {
        assert_eq!(
            SyntheticWeb::search_url("wine tasting"),
            "http://search.example/?q=wine+tasting"
        );
    }

    #[test]
    fn some_pages_offer_downloads() {
        let w = web();
        assert!(w.pages().iter().any(|p| p.offers_download));
        assert!(w.pages().iter().any(|p| !p.offers_download));
    }
}
