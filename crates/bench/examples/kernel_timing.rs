// Quick timing probe for the frozen PPR kernel at bench-like scale.
use bp_core::{CaptureConfig, ProvenanceBrowser};
use bp_graph::frozen::{personalized_pagerank_frozen, FrozenGraph};
use bp_graph::pagerank::PageRankConfig;
use bp_graph::traverse::Budget;
use bp_obs::Obs;
use bp_storage::SyncPolicy;

fn main() {
    let h = bp_bench::fixtures::history(7);
    let dir = bp_bench::fixtures::TempProfile::new("kernel-timing");
    let mut browser = ProvenanceBrowser::open_with_obs(
        dir.path(),
        CaptureConfig::default(),
        SyncPolicy::OsManaged,
        Obs::isolated(),
    )
    .unwrap();
    for e in &h.events {
        browser.ingest(e).unwrap();
    }
    let g = browser.graph();
    let frozen = FrozenGraph::build(g);
    println!(
        "{} nodes {} edges",
        frozen.node_count(),
        frozen.edge_count()
    );
    let seeds: Vec<_> = (0..20u32)
        .map(|i| {
            (
                bp_graph::NodeId::new(i * 97 % frozen.node_count() as u32),
                1.0,
            )
        })
        .collect();
    let cfg = PageRankConfig::default();
    let budget = Budget::new();
    let mut best = std::time::Duration::MAX;
    let mut iters = 0;
    for _ in 0..60 {
        // bp-lint: allow(L001): min-of-N wall timing is the point of this probe; nothing mocks time here
        let t0 = std::time::Instant::now();
        let s = personalized_pagerank_frozen(&frozen, &seeds, &cfg, &budget);
        best = best.min(t0.elapsed());
        iters = s.iterations;
    }
    println!("min: {best:?}/call, iterations={iters}");
}
