//! Ad-hoc phase timing for the ingest path (developer tool).

use bp_bench::fixtures;
use bp_core::{CaptureConfig, CaptureEngine};
use bp_storage::{ProvenanceStore, SyncPolicy};

fn main() {
    let days: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let history = fixtures::history(days);
    println!(
        "generate {} events: {:?}",
        history.events.len(),
        t0.elapsed()
    );

    // Phase 1: capture engine only (graph + storage, no text index).
    let profile = fixtures::TempProfile::new("profile-engine");
    let store = ProvenanceStore::open(profile.path(), SyncPolicy::OsManaged).unwrap();
    let mut engine = CaptureEngine::new(store, CaptureConfig::default());
    let t0 = bp_obs::clock::ClockHandle::real().start();
    for event in &history.events {
        engine.handle(event).unwrap();
    }
    println!("capture engine only: {:?}", t0.elapsed());
    let store = engine.into_store();
    println!(
        "  nodes={} edges={}",
        store.graph().node_count(),
        store.graph().edge_count()
    );
    drop(store);

    // Phase 2: full browser (adds text indexing).
    let profile2 = fixtures::TempProfile::new("profile-browser");
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let mut browser =
        bp_core::ProvenanceBrowser::open(profile2.path(), CaptureConfig::default()).unwrap();
    browser.ingest_all(&history.events).unwrap();
    println!("full browser ingest: {:?}", t0.elapsed());

    // Phase 3: recovery replay.
    drop(browser);
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let _b = bp_core::ProvenanceBrowser::open(profile2.path(), CaptureConfig::default()).unwrap();
    println!("recovery replay: {:?}", t0.elapsed());
    component_timing(days);
    find_nonmonotone(days);
    edge_mix(days);
}

#[allow(dead_code)]
fn component_timing(days: u32) {
    let history = fixtures::history(days);
    let profile = fixtures::TempProfile::new("profile-components");
    let mut browser =
        bp_core::ProvenanceBrowser::open(profile.path(), CaptureConfig::default()).unwrap();
    browser.ingest_all(&history.events).unwrap();
    let g = browser.graph();
    println!("monotone: {}", g.is_monotone());

    // Graph rebuild.
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let mut g2 = bp_graph::ProvenanceGraph::new();
    for (_, n) in g.nodes() {
        g2.add_node(n.clone());
    }
    for (_, e) in g.edges() {
        g2.add_edge(e.src(), e.dst(), e.kind(), e.at()).unwrap();
    }
    println!("graph rebuild: {:?}", t0.elapsed());

    // KeyIndex rebuild.
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let mut keys = bp_storage::KeyIndex::new();
    for (id, n) in g.nodes() {
        keys.insert(n.key(), id);
    }
    println!("key index rebuild: {:?}", t0.elapsed());

    // TimeIndex rebuild.
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let mut times = bp_storage::TimeIndex::new();
    for (id, n) in g.nodes() {
        times.insert(id, *n.interval());
    }
    println!("time index rebuild: {:?}", t0.elapsed());

    // Close replay against the time index (the capture path closes most
    // nodes once).
    let t0 = bp_obs::clock::ClockHandle::real().start();
    for (id, n) in g.nodes() {
        if let Some(c) = n.interval().close() {
            times.close(id, c);
        }
    }
    println!("time index closes: {:?}", t0.elapsed());
}

#[allow(dead_code)]
fn find_nonmonotone(days: u32) {
    let history = fixtures::history(days.min(5));
    let profile = fixtures::TempProfile::new("profile-nonmono");
    let mut browser =
        bp_core::ProvenanceBrowser::open(profile.path(), CaptureConfig::default()).unwrap();
    browser.ingest_all(&history.events).unwrap();
    let g = browser.graph();
    for (_, e) in g.edges() {
        if e.src() < e.dst() {
            let src = g.node(e.src()).unwrap();
            let dst = g.node(e.dst()).unwrap();
            println!(
                "LOW->HIGH {} : {} {} -> {} {}",
                e.kind(),
                e.src(),
                src.key(),
                e.dst(),
                dst.key()
            );
        }
    }
}

#[allow(dead_code)]
fn edge_mix(days: u32) {
    let history = fixtures::history(days);
    let profile = fixtures::TempProfile::new("profile-mix");
    let mut browser =
        bp_core::ProvenanceBrowser::open(profile.path(), CaptureConfig::default()).unwrap();
    browser.ingest_all(&history.events).unwrap();
    let s = bp_graph::stats::stats(browser.graph());
    for (kind, count) in &s.edges_by_kind {
        println!("edge {kind}: {count}");
    }
}
