//! Ad-hoc phase timing for the ingest path (developer tool).

use bp_bench::fixtures;
use bp_core::{CaptureConfig, CaptureEngine};
use bp_storage::{ProvenanceStore, SyncPolicy};

fn main() {
    let days: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let history = fixtures::history(days);
    println!(
        "generate {} events: {:?}",
        history.events.len(),
        t0.elapsed()
    );

    // Phase 1: capture engine only (graph + storage, no text index).
    let profile = fixtures::TempProfile::new("profile-engine");
    let store = ProvenanceStore::open(profile.path(), SyncPolicy::OsManaged).unwrap();
    let mut engine = CaptureEngine::new(store, CaptureConfig::default());
    let t0 = bp_obs::clock::ClockHandle::real().start();
    for event in &history.events {
        engine.handle(event).unwrap();
    }
    println!("capture engine only: {:?}", t0.elapsed());
    let store = engine.into_store();
    println!(
        "  nodes={} edges={}",
        store.graph().node_count(),
        store.graph().edge_count()
    );
    drop(store);

    // Phase 2: full browser (adds text indexing).
    let profile2 = fixtures::TempProfile::new("profile-browser");
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let mut browser =
        bp_core::ProvenanceBrowser::open(profile2.path(), CaptureConfig::default()).unwrap();
    browser.ingest_all(&history.events).unwrap();
    println!("full browser ingest: {:?}", t0.elapsed());

    // Phase 3: recovery replay.
    drop(browser);
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let _b = bp_core::ProvenanceBrowser::open(profile2.path(), CaptureConfig::default()).unwrap();
    println!("recovery replay: {:?}", t0.elapsed());
    component_timing(days);
    find_nonmonotone(days);
    edge_mix(days);
    store_op_costs();
    durable_baseline();
}

/// Per-event ingest under `SyncPolicy::Always` — the durability class
/// group commit replaces (one fsync per event). Small sample; fsync
/// dominates so a few hundred events give a stable per-event cost.
fn durable_baseline() {
    let history = fixtures::history(2);
    let sample = &history.events[..history.events.len().min(200)];
    let profile = fixtures::TempProfile::new("profile-durable");
    let store = ProvenanceStore::open(profile.path(), SyncPolicy::Always).unwrap();
    let mut engine = CaptureEngine::new(store, CaptureConfig::default());
    let t0 = bp_obs::clock::ClockHandle::real().start();
    for event in sample {
        engine.handle(event).unwrap();
    }
    let wall = t0.elapsed();
    println!(
        "durable (Always) x{}: {:?} ({:?}/event, {:.0} events/sec)",
        sample.len(),
        wall,
        wall / u32::try_from(sample.len()).unwrap(),
        sample.len() as f64 / wall.as_secs_f64()
    );
}

/// Microbenchmark of the individual store mutations the capture engine
/// issues per event, to see where the per-event microseconds go.
fn store_op_costs() {
    use bp_graph::{EdgeKind, NodeKind, Timestamp};
    let profile = fixtures::TempProfile::new("profile-ops");
    let mut store = ProvenanceStore::open(profile.path(), SyncPolicy::OsManaged).unwrap();
    const N: usize = 10_000;
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let mut visits = Vec::with_capacity(N);
    for i in 0..N {
        visits.push(
            store
                .add_visit(
                    &format!("http://host{}/page/{i}", i % 97),
                    Timestamp::from_secs(i as i64),
                )
                .unwrap(),
        );
    }
    println!(
        "add_visit x{N}: {:?} ({:?}/op)",
        t0.elapsed(),
        t0.elapsed() / N as u32
    );
    let t0 = bp_obs::clock::ClockHandle::real().start();
    for i in 1..N {
        store
            .add_edge(
                visits[i],
                visits[i - 1],
                EdgeKind::Link,
                Timestamp::from_secs(i as i64),
            )
            .unwrap();
    }
    println!(
        "add_edge x{N}: {:?} ({:?}/op)",
        t0.elapsed(),
        t0.elapsed() / N as u32
    );
    let t0 = bp_obs::clock::ClockHandle::real().start();
    for (i, &v) in visits.iter().enumerate() {
        store.set_node_attr(v, "title", "A Title").unwrap();
        let _ = i;
    }
    println!(
        "set_node_attr x{N}: {:?} ({:?}/op)",
        t0.elapsed(),
        t0.elapsed() / N as u32
    );
    let t0 = bp_obs::clock::ClockHandle::real().start();
    for (i, &v) in visits.iter().enumerate() {
        store
            .close_node(v, Timestamp::from_secs((N + i) as i64))
            .unwrap();
    }
    println!(
        "close_node x{N}: {:?} ({:?}/op)",
        t0.elapsed(),
        t0.elapsed() / N as u32
    );
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let mut hits = 0usize;
    for i in 0..N {
        if store
            .graph()
            .latest_version_of(
                NodeKind::PageVisit,
                &format!("http://host{}/page/{i}", i % 97),
            )
            .is_some()
        {
            hits += 1;
        }
    }
    println!(
        "latest_version_of x{N}: {:?} ({:?}/op, {hits} hits)",
        t0.elapsed(),
        t0.elapsed() / N as u32
    );

    // Decompose add_node: interner, graph insert, key/time indexes.
    let urls: Vec<String> = (0..N)
        .map(|i| format!("http://host{}/fresh/{i}", i % 97))
        .collect();
    let interner = bp_storage::ShardedInterner::new();
    let t0 = bp_obs::clock::ClockHandle::real().start();
    for u in &urls {
        interner.intern(u);
    }
    println!(
        "intern fresh x{N}: {:?} ({:?}/op)",
        t0.elapsed(),
        t0.elapsed() / N as u32
    );
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let mut total = 0usize;
    for i in 0..N as u32 {
        total += interner.resolve(i).map_or(0, |s| s.len());
    }
    println!(
        "resolve x{N}: {:?} ({:?}/op, {total} bytes)",
        t0.elapsed(),
        t0.elapsed() / N as u32
    );
    let mut g = bp_graph::ProvenanceGraph::new();
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let mut ids = Vec::with_capacity(N);
    for (i, u) in urls.iter().enumerate() {
        ids.push(g.add_node(bp_graph::Node::new(
            NodeKind::PageVisit,
            u,
            Timestamp::from_secs(i as i64),
        )));
    }
    println!(
        "graph add_node x{N}: {:?} ({:?}/op)",
        t0.elapsed(),
        t0.elapsed() / N as u32
    );
    let mut keys = bp_storage::KeyIndex::new();
    let t0 = bp_obs::clock::ClockHandle::real().start();
    for (u, &id) in urls.iter().zip(&ids) {
        keys.insert(u, id);
    }
    println!(
        "key index insert x{N}: {:?} ({:?}/op)",
        t0.elapsed(),
        t0.elapsed() / N as u32
    );
    let mut times = bp_storage::TimeIndex::new();
    let t0 = bp_obs::clock::ClockHandle::real().start();
    for (i, &id) in ids.iter().enumerate() {
        times.insert(
            id,
            bp_graph::TimeInterval::open_at(Timestamp::from_secs(i as i64)),
        );
    }
    println!(
        "time index insert x{N}: {:?} ({:?}/op)",
        t0.elapsed(),
        t0.elapsed() / N as u32
    );
}

#[allow(dead_code)]
fn component_timing(days: u32) {
    let history = fixtures::history(days);
    let profile = fixtures::TempProfile::new("profile-components");
    let mut browser =
        bp_core::ProvenanceBrowser::open(profile.path(), CaptureConfig::default()).unwrap();
    browser.ingest_all(&history.events).unwrap();
    let g = browser.graph();
    println!("monotone: {}", g.is_monotone());

    // Graph rebuild.
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let mut g2 = bp_graph::ProvenanceGraph::new();
    for (_, n) in g.nodes() {
        g2.add_node(n.clone());
    }
    for (_, e) in g.edges() {
        g2.add_edge(e.src(), e.dst(), e.kind(), e.at()).unwrap();
    }
    println!("graph rebuild: {:?}", t0.elapsed());

    // KeyIndex rebuild.
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let mut keys = bp_storage::KeyIndex::new();
    for (id, n) in g.nodes() {
        keys.insert(n.key(), id);
    }
    println!("key index rebuild: {:?}", t0.elapsed());

    // TimeIndex rebuild.
    let t0 = bp_obs::clock::ClockHandle::real().start();
    let mut times = bp_storage::TimeIndex::new();
    for (id, n) in g.nodes() {
        times.insert(id, *n.interval());
    }
    println!("time index rebuild: {:?}", t0.elapsed());

    // Close replay against the time index (the capture path closes most
    // nodes once).
    let t0 = bp_obs::clock::ClockHandle::real().start();
    for (id, n) in g.nodes() {
        if let Some(c) = n.interval().close() {
            times.close(id, c);
        }
    }
    println!("time index closes: {:?}", t0.elapsed());
}

#[allow(dead_code)]
fn find_nonmonotone(days: u32) {
    let history = fixtures::history(days.min(5));
    let profile = fixtures::TempProfile::new("profile-nonmono");
    let mut browser =
        bp_core::ProvenanceBrowser::open(profile.path(), CaptureConfig::default()).unwrap();
    browser.ingest_all(&history.events).unwrap();
    let g = browser.graph();
    for (_, e) in g.edges() {
        if e.src() < e.dst() {
            let src = g.node(e.src()).unwrap();
            let dst = g.node(e.dst()).unwrap();
            println!(
                "LOW->HIGH {} : {} {} -> {} {}",
                e.kind(),
                e.src(),
                src.key(),
                e.dst(),
                dst.key()
            );
        }
    }
}

#[allow(dead_code)]
fn edge_mix(days: u32) {
    let history = fixtures::history(days);
    let profile = fixtures::TempProfile::new("profile-mix");
    let mut browser =
        bp_core::ProvenanceBrowser::open(profile.path(), CaptureConfig::default()).unwrap();
    browser.ingest_all(&history.events).unwrap();
    let s = bp_graph::stats::stats(browser.graph());
    for (kind, count) in &s.edges_by_kind {
        println!("edge {kind}: {count}");
    }
}
