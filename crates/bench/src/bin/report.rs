//! Experiment report generator.
//!
//! ```text
//! cargo run -p bp-bench --release --bin report             # everything, paper scale
//! cargo run -p bp-bench --release --bin report -- e1       # one experiment
//! cargo run -p bp-bench --release --bin report -- all 20 5 # custom days / trials
//! ```

use bp_bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let days: u32 = args
        .get(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(exp::FULL_DAYS);
    let trials: u64 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(10);
    let report = match which {
        "e1" => exp::e1_storage_overhead(days),
        "e2" => exp::e2_query_latency(days),
        "e3" => exp::e3_history_scale(days),
        "e4" => exp::e4_contextual_vs_textual(trials),
        "e5" => exp::e5_personalization(trials),
        "e6" => exp::e6_time_contextual(trials),
        "e7" => exp::e7_download_lineage(trials),
        "a1" => exp::a1_versioning(days),
        "a2" => exp::a2_factorization(days),
        "a3" => exp::a3_time_relationships(days.min(20)),
        "a4" => exp::a4_second_class(days.min(20)),
        "a5" => exp::a5_algorithms(trials, days),
        "all" => exp::run_all(days, trials),
        other => {
            eprintln!("unknown experiment {other:?}; use e1..e7, a1..a5, or all");
            std::process::exit(1);
        }
    };
    println!("{report}");
}
