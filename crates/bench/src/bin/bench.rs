//! Continuous benchmark harness.
//!
//! Runs the standard simulated history through ingest and all seven query
//! paths, summarizes latencies from bp-obs log₂ histograms, and writes the
//! schema-versioned `BENCH_<git-short-sha>.json` + `BENCH_latest.json`.
//!
//! ```text
//! cargo run -p bp-bench --release --bin bench                    # paper scale (79 days)
//! cargo run -p bp-bench --release --bin bench -- --days 7        # CI quick run
//! cargo run -p bp-bench --release --bin bench -- --jobs 4        # parallel PageRank
//! cargo run -p bp-bench --release --bin bench -- --days 7 \
//!     --compare BENCH_baseline.json --threshold 20               # regression gate
//! ```
//!
//! `--compare` exits nonzero when any path's p95 grew past the threshold
//! (default 20%) and the `--floor-us` noise floor. On top of that broad
//! sweep, the relevance paths (`context`/`ppr`/`personalize`) are held to
//! the tighter `--gate-threshold` (default 15%) over `--gate-floor-us`
//! (default 100) — they carry the frozen-graph perf headline.
//!
//! `--jobs N` sets the PageRank worker count via the traversal budget;
//! the report's `frozen` section records it alongside snapshot-build and
//! score-cache telemetry.
//!
//! Every run also replays the stream through the batched capture
//! pipeline against a group-commit WAL and reports the sustained
//! throughput as `ingest.events_per_sec` plus a `wal` section
//! (groups, events/group, drain batch sizes, sync p95). Two absolute
//! gates ride on top of the relative comparison: `--ingest-floor EPS`
//! fails the run when sustained throughput drops below the floor, and
//! `--e1-max RATIO` fails it when the E1 storage-overhead ratio rises
//! above the ceiling — both work with or without `--compare`.
//!
//! `--serve-smoke HOST:PORT` switches to smoke-testing a running
//! `browserprov serve` daemon instead: every observability endpoint is
//! scraped over a raw TCP socket, `/metrics` must expose a non-empty
//! `bp_` metric family, and per-endpoint scrape latencies are reported.
//! Exits nonzero on any failed scrape.

use bp_bench::fixtures::{history, TempProfile};
use bp_bench::report::{
    compare, compare_paths, median_us, BenchReport, FrozenStats, LatencySummary, StoreSizes,
    WalStats,
};
use bp_core::{CaptureConfig, CapturePipeline, ProvenanceBrowser};
use bp_obs::profile::Profile;
use bp_obs::{profile, ClockHandle, Obs};
use bp_places::{PlacesDb, PlacesIngester};
use bp_query::{
    contextual_history_search, contextual_history_search_ppr, describe_origin, find_download,
    first_recognizable_ancestor, personalize_query, textual_history_search, time_contextual_search,
    ContextualConfig, DescribeConfig, LineageConfig, PersonalizeConfig, TimeContextConfig,
};
use bp_sim::web::TOPICS;
use bp_storage::SyncPolicy;
use std::collections::BTreeMap;
use std::time::Duration;

/// The query paths the frozen-graph work accelerates; `--compare` holds
/// these to the tighter `--gate-threshold` on top of the broad sweep.
const RELEVANCE_PATHS: [&str; 3] = ["context", "ppr", "personalize"];

struct Options {
    days: u32,
    runs: u64,
    jobs: usize,
    out_dir: String,
    compare_with: Option<String>,
    threshold_pct: f64,
    floor_us: u64,
    gate_threshold_pct: f64,
    gate_floor_us: u64,
    ingest_floor: Option<f64>,
    e1_max: Option<f64>,
    serve_smoke: Option<String>,
}

fn parse_options(raw: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        days: 79,
        runs: 40,
        jobs: 1,
        out_dir: ".".to_owned(),
        compare_with: None,
        threshold_pct: 20.0,
        floor_us: 0,
        gate_threshold_pct: 15.0,
        gate_floor_us: 100,
        ingest_floor: None,
        e1_max: None,
        serve_smoke: None,
    };
    let mut i = 0;
    while i < raw.len() {
        let value = |i: usize| -> Result<&String, String> {
            raw.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", raw[i]))
        };
        match raw[i].as_str() {
            "--days" => {
                opts.days = value(i)?.parse().map_err(|_| "--days must be a number")?;
                i += 2;
            }
            "--runs" => {
                opts.runs = value(i)?.parse().map_err(|_| "--runs must be a number")?;
                i += 2;
            }
            "--jobs" => {
                opts.jobs = value(i)?.parse().map_err(|_| "--jobs must be a number")?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
                i += 2;
            }
            "--out-dir" => {
                opts.out_dir = value(i)?.clone();
                i += 2;
            }
            "--compare" => {
                opts.compare_with = Some(value(i)?.clone());
                i += 2;
            }
            "--threshold" => {
                opts.threshold_pct = value(i)?
                    .parse()
                    .map_err(|_| "--threshold must be a number")?;
                i += 2;
            }
            "--floor-us" => {
                opts.floor_us = value(i)?
                    .parse()
                    .map_err(|_| "--floor-us must be a number")?;
                i += 2;
            }
            "--gate-threshold" => {
                opts.gate_threshold_pct = value(i)?
                    .parse()
                    .map_err(|_| "--gate-threshold must be a number")?;
                i += 2;
            }
            "--gate-floor-us" => {
                opts.gate_floor_us = value(i)?
                    .parse()
                    .map_err(|_| "--gate-floor-us must be a number")?;
                i += 2;
            }
            "--ingest-floor" => {
                opts.ingest_floor = Some(
                    value(i)?
                        .parse()
                        .map_err(|_| "--ingest-floor must be a number")?,
                );
                i += 2;
            }
            "--e1-max" => {
                opts.e1_max = Some(value(i)?.parse().map_err(|_| "--e1-max must be a number")?);
                i += 2;
            }
            "--serve-smoke" => {
                opts.serve_smoke = Some(value(i)?.clone());
                i += 2;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "nogit".to_owned())
}

/// Accumulates `path.stage` wall-time samples from a profile tree.
fn collect_stages(p: &Profile, into: &mut BTreeMap<String, Vec<u64>>) {
    for s in &p.stages {
        into.entry(format!("{}.{}", p.query, s.name))
            .or_default()
            .push(s.wall_us);
    }
    for child in &p.children {
        collect_stages(child, into);
    }
}

fn run_benchmark(opts: &Options) -> Result<BenchReport, String> {
    let obs = Obs::isolated();
    let clock = ClockHandle::real();
    eprintln!("bench: generating {}-day history...", opts.days);
    let h = history(opts.days);

    // Ingest, one latency sample per event.
    let dir = TempProfile::new(&format!("bench-{}", opts.days));
    let mut browser = ProvenanceBrowser::open_with_obs(
        dir.path(),
        CaptureConfig::default(),
        SyncPolicy::OsManaged,
        obs.clone(),
    )
    .map_err(|e| e.to_string())?;
    let ingest_hist = obs.histogram("bench.ingest.latency_us");
    for event in &h.events {
        let t0 = clock.start();
        browser.ingest(event).map_err(|e| e.to_string())?;
        ingest_hist.record_duration(t0.elapsed());
    }
    eprintln!(
        "bench: ingested {} events ({} nodes, {} edges)",
        h.events.len(),
        browser.graph().node_count(),
        browser.graph().edge_count()
    );

    // Sustained-ingest throughput: the same stream replayed through the
    // batched capture pipeline against a group-commit WAL, in its own
    // profile + registry so its telemetry stays separable. Events/sec is
    // wall time from first submit to the flush ack (i.e. every event
    // applied), the write path the paper's always-on capture relies on.
    eprintln!("bench: measuring sustained ingest throughput...");
    let tput_obs = Obs::isolated();
    let tput_dir = TempProfile::new(&format!("bench-tput-{}", opts.days));
    let tput_browser = ProvenanceBrowser::open_with_obs(
        tput_dir.path(),
        CaptureConfig::default(),
        // A wide commit window so the sync amortizes across many drain
        // batches: at full tilt a 256-event group lands every few ms, and
        // a 5ms-style window would fsync at *every* group boundary —
        // measuring the disk, not the write path. 50ms of bounded loss is
        // the standard group-commit trade (cf. innodb_flush_log_at_timeout).
        SyncPolicy::GroupCommit {
            max_events: 4096,
            max_delay: Duration::from_millis(50),
        },
        tput_obs.clone(),
    )
    .map_err(|e| e.to_string())?;
    let pipeline = CapturePipeline::start(tput_browser);
    // Sustained means sustained: one warmup cycle absorbs thread
    // startup and cold caches, then the stream replays time-shifted
    // (the serve feeder's scheme) until ≥20k events have gone through;
    // the clock runs from first measured submit to the flush ack.
    let cycle_span = Duration::from_secs(u64::from(opts.days) + 1) * 86_400;
    let shifted = |cycle: u32| {
        h.events.iter().map(move |event| {
            let mut event = event.clone();
            event.at = event.at.plus(cycle_span * cycle);
            event
        })
    };
    if pipeline.submit_all(shifted(0)) != h.events.len() {
        return Err("throughput warmup rejected events".to_owned());
    }
    pipeline.flush();
    let cycles = (20_000 / h.events.len().max(1) + 1) as u32;
    let expected = h.events.len() * cycles as usize;
    let mut submitted = 0usize;
    let t0 = clock.start();
    for cycle in 1..=cycles {
        submitted += pipeline.submit_all(shifted(cycle));
    }
    pipeline.flush();
    let tput_wall = t0.elapsed();
    if let Some(failure) = pipeline.failure() {
        return Err(format!("throughput pipeline failed: {failure}"));
    }
    if submitted != expected {
        return Err(format!(
            "throughput pipeline accepted {submitted} of {expected} events"
        ));
    }
    let ingest_events_per_sec = submitted as f64 / tput_wall.as_secs_f64().max(1e-9);
    drop(pipeline.shutdown());
    let tput_snap = tput_obs.registry().snapshot();
    let counter = |name: &str| tput_snap.counters.get(name).copied().unwrap_or(0);
    let hist = |name: &str| tput_snap.histograms.get(name);
    let wal = WalStats {
        appends: counter("wal.appends_total"),
        bytes_written: counter("wal.bytes_written"),
        groups: counter("wal.group_commit.groups"),
        group_events: counter("wal.group_commit.events"),
        batch_p50: hist("capture.batch_len").map_or(0, |h| h.p50()),
        batch_p95: hist("capture.batch_len").map_or(0, |h| h.p95()),
        sync_p95_us: hist("wal.group_commit.sync_us").map_or(0, |h| h.p95()),
    };
    eprintln!(
        "bench: sustained ingest {:.0} events/sec ({} events in {:.3}s; \
         {} wal groups, {:.1} events/group, batch p50={} p95={})",
        ingest_events_per_sec,
        submitted,
        tput_wall.as_secs_f64(),
        wal.groups,
        wal.events_per_group(),
        wal.batch_p50,
        wal.batch_p95
    );

    // Workload inputs drawn from the simulator's topic vocabularies and
    // the captured downloads, cycled to fill the per-path run count.
    let terms: Vec<&str> = TOPICS
        .iter()
        .flat_map(|t| t.vocabulary.iter().copied())
        .collect();
    let downloads: Vec<(bp_graph::NodeId, String)> = browser
        .graph()
        .nodes_of_kind(bp_graph::NodeKind::Download)
        .filter_map(|n| {
            browser
                .graph()
                .node(n)
                .ok()
                .map(|node| (n, node.key().to_owned()))
        })
        .collect();
    if terms.is_empty() || downloads.is_empty() {
        return Err("history produced no query inputs".to_owned());
    }

    // All seven query paths, profiled: latency samples feed bp-obs log₂
    // histograms, per-stage walls feed the stage medians.
    profile::set_enabled(true);
    let _ = profile::take();
    let mut stage_samples: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    // `--jobs` reaches the parallel PageRank kernel through the traversal
    // budget; scores are bit-identical at any worker count.
    let mut contextual = ContextualConfig::default();
    contextual.budget = contextual.budget.clone().with_jobs(opts.jobs);
    let mut personalize = PersonalizeConfig::default();
    personalize.contextual.budget = personalize.contextual.budget.clone().with_jobs(opts.jobs);
    let runs = opts.runs as usize;
    for run in 0..runs {
        let term = terms[run % terms.len()];
        let pair = (term, terms[(run + 7) % terms.len()]);
        let (dl, dl_key) = &downloads[run % downloads.len()];
        let t = |name: &str, elapsed: std::time::Duration| {
            obs.histogram(&format!("bench.query.{name}.latency_us"))
                .record_duration(elapsed);
        };
        t(
            "context",
            contextual_history_search(&browser, term, &contextual).elapsed,
        );
        t(
            "ppr",
            contextual_history_search_ppr(
                &browser,
                term,
                &contextual,
                &bp_graph::pagerank::PageRankConfig::default(),
            )
            .elapsed,
        );
        t(
            "textual",
            textual_history_search(&browser, term, &contextual).elapsed,
        );
        let t0 = clock.start();
        let _ = personalize_query(&browser, term, &personalize);
        t("personalize", t0.elapsed());
        t(
            "timectx",
            time_contextual_search(&browser, pair.0, pair.1, &TimeContextConfig::default()).elapsed,
        );
        let t0 = clock.start();
        let _ = first_recognizable_ancestor(&browser, *dl, &LineageConfig::default());
        t("lineage", t0.elapsed());
        let t0 = clock.start();
        let _ = describe_origin(&browser, dl_key, &DescribeConfig::default());
        t("describe", t0.elapsed());
        // find_download keeps the lineage entry point honest (and cheap).
        let _ = find_download(&browser, dl_key);
        for p in profile::take() {
            collect_stages(&p, &mut stage_samples);
        }
    }
    profile::set_enabled(false);
    eprintln!("bench: ran {} invocations per query path", opts.runs);

    // Frozen-snapshot/cache telemetry, sampled before compaction so it
    // reflects the query workload alone.
    let (builds, build_us) = browser.frozen_stats();
    let cache = browser.score_cache().stats();
    let frozen = FrozenStats {
        jobs: opts.jobs as u64,
        builds,
        build_us,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        cache_bytes: cache.bytes as u64,
    };

    // Store sizes after compaction.
    browser.snapshot().map_err(|e| e.to_string())?;
    let size = browser.size_report();
    let sizes = StoreSizes {
        events: h.events.len() as u64,
        nodes: browser.graph().node_count() as u64,
        edges: browser.graph().edge_count() as u64,
        snapshot_bytes: size.snapshot_bytes,
        log_bytes: size.log_bytes,
    };

    // The E1 headline: bytes this repo actually ships (delta/column
    // snapshot + residual WAL) over the Places baseline for the same
    // event stream. The paper reports 1.395 for its relational schema;
    // that rendering stays measured in EXPERIMENTS.md E1, but the gate
    // tracks the store the write path really produces.
    let mut places = PlacesDb::new();
    let mut ingester = PlacesIngester::new();
    ingester
        .ingest_all(&mut places, &h.events)
        .map_err(|e| format!("{e:?}"))?;
    let places_bytes = places.encoded_size().max(1);
    let store_bytes = size.snapshot_bytes + size.log_bytes;
    let e1_overhead_ratio = store_bytes as f64 / places_bytes as f64;

    let snapshot = obs.registry().snapshot();
    let latency = |name: &str| {
        snapshot
            .histograms
            .get(name)
            .map(LatencySummary::from_histogram)
            .unwrap_or_default()
    };
    let mut queries = BTreeMap::new();
    for path in [
        "context",
        "ppr",
        "textual",
        "personalize",
        "timectx",
        "lineage",
        "describe",
    ] {
        queries.insert(
            path.to_owned(),
            latency(&format!("bench.query.{path}.latency_us")),
        );
    }
    let stage_medians_us = stage_samples
        .into_iter()
        .map(|(name, mut samples)| (name, median_us(&mut samples)))
        .collect();

    Ok(BenchReport {
        git_sha: git_short_sha(),
        days: opts.days,
        runs_per_path: opts.runs,
        sizes,
        e1_overhead_ratio,
        frozen,
        ingest: latency("bench.ingest.latency_us"),
        ingest_events_per_sec,
        wal,
        queries,
        stage_medians_us,
    })
}

/// One raw-socket HTTP/1.1 GET; returns `(status, body)`.
fn http_get(addr: &str, target: &str) -> Result<(u16, String), String> {
    use std::io::{Read, Write};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let request = format!("GET {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write {target}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read {target}: {e}"))?;
    let status: u16 = raw
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{target}: malformed status line"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|x| x.1.to_owned())
        .unwrap_or_default();
    Ok((status, body))
}

/// Smoke-tests a live `browserprov serve` daemon at `addr` (`host:port`).
fn run_serve_smoke(addr: &str) -> Result<bool, String> {
    let clock = ClockHandle::real();
    let endpoints = [
        "/healthz",
        "/readyz",
        "/metrics",
        "/metrics.json",
        "/tracez",
        "/profilez",
        "/debug/flightz",
    ];
    let mut ok = true;
    for target in endpoints {
        let t0 = clock.start();
        match http_get(addr, target) {
            Ok((status, body)) => {
                let elapsed = t0.elapsed();
                let mut problems = Vec::new();
                if status != 200 {
                    problems.push(format!("status {status}"));
                }
                match target {
                    "/metrics" if !body.lines().any(|l| l.starts_with("bp_")) => {
                        problems.push("no bp_ metric family".to_owned());
                    }
                    "/metrics.json" if !body.trim_start().starts_with('{') => {
                        problems.push("body is not JSON".to_owned());
                    }
                    "/debug/flightz" if !body.starts_with("# bp-flight dump v1") => {
                        problems.push("missing flight-dump header".to_owned());
                    }
                    _ => {}
                }
                if problems.is_empty() {
                    eprintln!(
                        "bench: serve-smoke {target:<16} 200 in {}us ({} bytes)",
                        elapsed.as_micros(),
                        body.len()
                    );
                } else {
                    ok = false;
                    eprintln!(
                        "bench: serve-smoke {target:<16} FAILED: {}",
                        problems.join(", ")
                    );
                }
            }
            Err(e) => {
                ok = false;
                eprintln!("bench: serve-smoke {target:<16} FAILED: {e}");
            }
        }
    }
    match check_trace_exemplars(addr) {
        Ok(id) => eprintln!("bench: serve-smoke tracing: exemplar {id} resolved via /tracez?id="),
        Err(e) => {
            ok = false;
            eprintln!("bench: serve-smoke tracing FAILED: {e}");
        }
    }
    eprintln!(
        "bench: serve-smoke {}",
        if ok { "passed" } else { "FAILED" }
    );
    Ok(ok)
}

/// The request-tracing smoke: `/metrics.json` must expose histogram
/// exemplars for the query-latency families, and at least one exemplar's
/// trace ID must resolve through `/tracez?id=`. CI boots the daemon with
/// `--inject-latency-us`, so every query is a retained deadline miss and
/// the newest exemplar is always findable; polled because the first
/// query pass has to land before any exemplar exists. Returns the
/// resolved trace ID.
fn check_trace_exemplars(addr: &str) -> Result<String, String> {
    const QUERY_HISTOGRAMS: [&str; 3] = [
        "query.context.latency_us",
        "query.textual.latency_us",
        "query.timectx.latency_us",
    ];
    let clock = ClockHandle::real();
    let started = clock.start();
    let mut last = String::from("no exemplars seen yet");
    while started.elapsed() < std::time::Duration::from_secs(60) {
        let (status, body) = http_get(addr, "/metrics.json")?;
        if status == 200 {
            let doc = bp_obs::json::parse(&body)
                .map_err(|e| format!("/metrics.json does not parse: {e:?}"))?;
            let ids: Vec<String> = QUERY_HISTOGRAMS
                .iter()
                .filter_map(|name| doc.get("histograms")?.get(name)?.get("exemplars"))
                .filter_map(|exemplars| exemplars.as_array())
                .flatten()
                .filter_map(|ex| ex.get("trace_id")?.as_str().map(str::to_owned))
                .collect();
            for id in ids {
                let (status, by_id) = http_get(addr, &format!("/tracez?id={id}"))?;
                if status == 200 && by_id.contains(&id) {
                    return Ok(id);
                }
                last = format!("exemplar {id} not (or no longer) retained");
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
    Err(last)
}

fn run(raw: &[String]) -> Result<bool, String> {
    let opts = parse_options(raw)?;
    if let Some(addr) = &opts.serve_smoke {
        return run_serve_smoke(addr);
    }
    let report = run_benchmark(&opts)?;
    let text = report.to_json();
    std::fs::create_dir_all(&opts.out_dir).map_err(|e| e.to_string())?;
    for name in [
        format!("BENCH_{}.json", report.git_sha),
        "BENCH_latest.json".to_owned(),
    ] {
        let path = std::path::Path::new(&opts.out_dir).join(name);
        std::fs::write(&path, &text).map_err(|e| e.to_string())?;
        eprintln!("bench: wrote {}", path.display());
    }
    for (path, q) in &report.queries {
        eprintln!(
            "bench: {path:<12} p50={}us p95={}us p99={}us (n={})",
            q.p50_us, q.p95_us, q.p99_us, q.count
        );
    }
    let f = &report.frozen;
    eprintln!(
        "bench: frozen jobs={} builds={} build_us={} cache hit-rate={:.1}% \
         ({} hit / {} miss / {} evicted, {} bytes)",
        f.jobs,
        f.builds,
        f.build_us,
        f.hit_rate() * 100.0,
        f.cache_hits,
        f.cache_misses,
        f.cache_evictions,
        f.cache_bytes
    );
    let mut ok = true;
    // Absolute gates, independent of any baseline: the write-path
    // throughput floor and the E1 storage-overhead ceiling.
    if let Some(floor) = opts.ingest_floor {
        if report.ingest_events_per_sec < floor {
            ok = false;
            eprintln!(
                "bench: ingest-floor FAILED: {:.0} events/sec < floor {:.0}",
                report.ingest_events_per_sec, floor
            );
        } else {
            eprintln!(
                "bench: ingest-floor clean ({:.0} events/sec >= {:.0})",
                report.ingest_events_per_sec, floor
            );
        }
    }
    if let Some(max) = opts.e1_max {
        if report.e1_overhead_ratio > max {
            ok = false;
            eprintln!(
                "bench: e1-max FAILED: overhead ratio {:.4} > ceiling {:.2}",
                report.e1_overhead_ratio, max
            );
        } else {
            eprintln!(
                "bench: e1-max clean (overhead ratio {:.4} <= {:.2})",
                report.e1_overhead_ratio, max
            );
        }
    }
    let Some(baseline_path) = &opts.compare_with else {
        return Ok(ok);
    };
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = BenchReport::from_json(&baseline_text)
        .map_err(|e| format!("baseline {baseline_path}: {e}"))?;
    let regressions = compare(&baseline, &report, opts.threshold_pct, opts.floor_us);
    if regressions.is_empty() {
        eprintln!(
            "bench: no p95 regressions vs {baseline_path} (threshold {:.0}%, floor {}us)",
            opts.threshold_pct, opts.floor_us
        );
    } else {
        ok = false;
        eprintln!(
            "bench: {} p95 regression(s) vs {baseline_path} (threshold {:.0}%, floor {}us):",
            regressions.len(),
            opts.threshold_pct,
            opts.floor_us
        );
        for r in &regressions {
            eprintln!("bench:   {r}");
        }
    }
    // The frozen-graph paths carry the perf headline; hold them to the
    // tighter gate so a regression can't hide inside the broad tolerance.
    let gated = compare_paths(
        &baseline,
        &report,
        opts.gate_threshold_pct,
        opts.gate_floor_us,
        &RELEVANCE_PATHS,
    );
    if gated.is_empty() {
        eprintln!(
            "bench: relevance gate clean ({}; threshold {:.0}%, floor {}us)",
            RELEVANCE_PATHS.join("/"),
            opts.gate_threshold_pct,
            opts.gate_floor_us
        );
    } else {
        ok = false;
        eprintln!(
            "bench: relevance gate FAILED (threshold {:.0}%, floor {}us):",
            opts.gate_threshold_pct, opts.gate_floor_us
        );
        for r in &gated {
            eprintln!("bench:   {r}");
        }
    }
    Ok(ok)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(message) => {
            eprintln!("bench: error: {message}");
            std::process::exit(2);
        }
    }
}
