//! Shared experiment fixtures: paper-scale histories and ingested stores.

use bp_core::{BrowserEvent, CaptureConfig, ProvenanceBrowser};
use bp_sim::calibrate;
use bp_sim::web::SyntheticWeb;
use std::path::PathBuf;

/// A temporary profile directory removed on drop.
#[derive(Debug)]
pub struct TempProfile {
    path: PathBuf,
}

impl TempProfile {
    /// Creates a unique empty directory under the system temp dir.
    pub fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bp-bench-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempProfile { path }
    }

    /// The directory path.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }
}

impl Drop for TempProfile {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// The standard experiment seed (all tables/figures regenerate from it).
pub const SEED: u64 = 42;

/// A generated history: web + events.
#[derive(Debug)]
pub struct History {
    /// The synthetic web the user browsed.
    pub web: SyntheticWeb,
    /// The event stream.
    pub events: Vec<BrowserEvent>,
    /// Days simulated.
    pub days: u32,
}

/// Generates the paper-scale (or scaled-down) history.
pub fn history(days: u32) -> History {
    let web = calibrate::paper_web(SEED);
    let events = calibrate::days_history(&web, SEED, days);
    History { web, events, days }
}

/// Ingests a history into a fresh provenance-aware browser.
pub fn ingest(
    history: &History,
    config: CaptureConfig,
    tag: &str,
) -> (TempProfile, ProvenanceBrowser) {
    let profile = TempProfile::new(tag);
    let mut browser = ProvenanceBrowser::open(profile.path(), config).expect("fresh profile opens");
    browser
        .ingest_all(&history.events)
        .expect("simulated events are valid");
    (profile, browser)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_ingest() {
        let h = history(1);
        assert!(!h.events.is_empty());
        let (_p, browser) = ingest(&h, CaptureConfig::default(), "fixture-test");
        assert!(browser.graph().node_count() > 0);
    }
}
