//! The experiment suite: one function per table/figure in the paper's
//! evaluation (§4) plus the DESIGN.md ablations. Each returns a formatted
//! report block; the `report` binary prints them and EXPERIMENTS.md
//! records paper-vs-measured.

use crate::fixtures::{history, ingest, History, TempProfile, SEED};
use crate::relschema::RelationalProvenance;
use bp_core::{CaptureConfig, ProvenanceBrowser};
use bp_graph::stats::{connected_components, second_class_fraction, stats};
use bp_graph::traverse::Budget;
use bp_graph::{EdgeKind, NodeKind};
use bp_obs::ClockHandle;
use bp_places::{PlacesDb, PlacesIngester};
use bp_query::{
    contextual_history_search, downloads_descending_from, find_download,
    first_recognizable_ancestor, personalize_query, textual_history_search, time_contextual_search,
    ContextualConfig, LineageConfig, PersonalizeConfig, TimeContextConfig,
};
use bp_sim::scenario;
use bp_sim::web::TOPICS;
use std::fmt::Write as _;
use std::time::Duration;

/// Default duration used by the paper-scale experiments.
pub const FULL_DAYS: u32 = 79;

fn header(id: &str, title: &str, paper: &str) -> String {
    format!("== {id}: {title}\n   paper: {paper}\n")
}

/// Builds the shared paper-scale fixture once.
pub fn paper_fixture(days: u32) -> (History, TempProfile, ProvenanceBrowser) {
    let h = history(days);
    let (profile, browser) = ingest(&h, CaptureConfig::default(), &format!("paper-{days}"));
    (h, profile, browser)
}

/// E1 — storage overhead of the provenance schema over Places.
pub fn e1_storage_overhead(days: u32) -> String {
    let mut out = header(
        "E1",
        "storage overhead over Places",
        "39.5% overhead; < 5 MB absolute on the real history",
    );
    let h = history(days);

    let mut places = PlacesDb::new();
    let mut ingester = PlacesIngester::new();
    ingester
        .ingest_all(&mut places, &h.events)
        .expect("stream valid for Places");
    let places_bytes = places.encoded_size();

    let overhead = |x: usize| 100.0 * (x as f64 - places_bytes as f64) / places_bytes as f64;
    let mb = |x: usize| x as f64 / 1_048_576.0;
    let _ = writeln!(out, "   days simulated               : {days}");
    let _ = writeln!(out, "   events                       : {}", h.events.len());
    let _ = writeln!(
        out,
        "   Places baseline              : {places_bytes:>9} bytes ({:.2} MB)",
        mb(places_bytes)
    );

    for (name, config) in [
        ("paper-prototype capture", CaptureConfig::paper_prototype()),
        ("full capture (+overlap edges)", CaptureConfig::default()),
    ] {
        let (_profile, mut browser) = ingest(&h, config, &format!("e1-{days}"));
        // The paper-faithful representation: provenance as relational rows.
        let rel = RelationalProvenance::from_graph(browser.graph());
        let rel_bytes = rel.encoded_size();
        let (r_strings, r_nodes, r_edges, r_attrs) = rel.row_counts();
        // This repo's optimized graph store (compacted snapshot).
        browser.snapshot().expect("snapshot succeeds");
        let opt_bytes = browser.size_report().total_bytes() as usize;
        let _ = writeln!(out, "   [{name}]");
        let _ = writeln!(
            out,
            "     provenance schema (relational, as in paper): {rel_bytes:>9} bytes ({:.2} MB) -> overhead {:+.1}%",
            mb(rel_bytes),
            overhead(rel_bytes)
        );
        let _ = writeln!(
            out,
            "       rows: {r_strings} strings, {r_nodes} nodes, {r_edges} edges, {r_attrs} attrs"
        );
        let _ = writeln!(
            out,
            "     provenance store (this repo's log+snapshot): {opt_bytes:>9} bytes ({:.2} MB) -> overhead {:+.1}%",
            mb(opt_bytes),
            overhead(opt_bytes)
        );
        let _ = writeln!(
            out,
            "     absolute cost of provenance (relational)   : {:.2} MB (paper: < 5 MB)",
            mb(rel_bytes)
        );
    }
    out
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn latency_line(name: &str, mut samples: Vec<Duration>) -> String {
    samples.sort();
    let under = samples.iter().filter(|d| d.as_millis() < 200).count();
    format!(
        "   {name:<22} n={:<4} median={:>9.3?} p90={:>9.3?} max={:>9.3?}  <200ms: {}/{}\n",
        samples.len(),
        percentile(&samples, 0.5),
        percentile(&samples, 0.9),
        samples.last().copied().unwrap_or(Duration::ZERO),
        under,
        samples.len()
    )
}

/// E2 — latency of the four use-case queries at paper scale.
pub fn e2_query_latency(days: u32) -> String {
    let mut out = header(
        "E2",
        "use-case query latency",
        "queries complete < 200 ms in the majority of cases; boundable otherwise",
    );
    let (_h, _profile, browser) = paper_fixture(days);
    let s = stats(browser.graph());
    let _ = writeln!(out, "   history: {} nodes, {} edges", s.nodes, s.edges);

    // Query terms drawn from every topic vocabulary (100 instances each).
    let queries: Vec<&str> = TOPICS
        .iter()
        .flat_map(|t| t.vocabulary.iter().copied())
        .take(100)
        .collect();

    // Contextual history search.
    let config = ContextualConfig::default();
    let mut contextual = Vec::new();
    for q in &queries {
        contextual.push(contextual_history_search(&browser, q, &config).elapsed);
    }
    out.push_str(&latency_line("contextual search", contextual));

    // Personalized web search (expansion computation).
    let pconfig = PersonalizeConfig::default();
    let mut personal = Vec::new();
    for q in &queries {
        let t0 = ClockHandle::real().start();
        let _ = personalize_query(&browser, q, &pconfig);
        personal.push(t0.elapsed());
    }
    out.push_str(&latency_line("personalize", personal));

    // Time-contextual search (subject/companion pairs across topics).
    let tconfig = TimeContextConfig::default();
    let mut timectx = Vec::new();
    for pair in queries.chunks(2).take(50) {
        if let [a, b] = pair {
            timectx.push(time_contextual_search(&browser, a, b, &tconfig).elapsed);
        }
    }
    out.push_str(&latency_line("time-contextual", timectx));

    // Download lineage over every captured download (up to 100).
    let lconfig = LineageConfig {
        recognizable_visits: 2,
        ..LineageConfig::default()
    };
    let mut lineage = Vec::new();
    for dl in browser.graph().nodes_of_kind(NodeKind::Download).take(100) {
        let t0 = ClockHandle::real().start();
        let _ = first_recognizable_ancestor(&browser, dl, &lconfig);
        lineage.push(t0.elapsed());
    }
    out.push_str(&latency_line("download lineage", lineage));

    // The bounded variant: a deliberately heavy query under a 200 ms cap.
    let bounded_config = ContextualConfig {
        budget: Budget::new().with_deadline(Duration::from_millis(200)),
        max_results: 1000,
        ..ContextualConfig::default()
    };
    let heavy = TOPICS
        .iter()
        .map(|t| t.vocabulary[0])
        .collect::<Vec<_>>()
        .join(" ");
    let r = contextual_history_search(&browser, &heavy, &bounded_config);
    let _ = writeln!(
        out,
        "   bounded heavy query     elapsed={:?} truncated={}",
        r.elapsed, r.truncated
    );
    out
}

/// E3 — history scale (the 25,000 nodes / 79 days figure).
pub fn e3_history_scale(days: u32) -> String {
    let mut out = header(
        "E3",
        "history scale",
        "one author's history: > 25,000 nodes over 79 days",
    );
    let (h, _profile, browser) = paper_fixture(days);
    let s = stats(browser.graph());
    let per_day = s.nodes as f64 / f64::from(days);
    let _ = writeln!(out, "   days={} events={}", h.days, h.events.len());
    let _ = writeln!(
        out,
        "   nodes={} edges={} ({:.0} nodes/day; paper implies ~316/day)",
        s.nodes, s.edges, per_day
    );
    let _ = writeln!(out, "   projected to 79 days: {:.0} nodes", per_day * 79.0);
    for (kind, count) in &s.nodes_by_kind {
        let _ = writeln!(out, "     {kind:<12} {count}");
    }
    let _ = writeln!(
        out,
        "   second-class relationship fraction: {:.1}%",
        100.0 * second_class_fraction(browser.graph())
    );
    out
}

/// E4 — contextual vs textual history search (the rosebud scenario).
pub fn e4_contextual_vs_textual(trials: u64) -> String {
    let mut out = header(
        "E4",
        "contextual history search finds textual misses (§2.1)",
        "provenance connects 'rosebud' to Citizen Kane; textual search cannot",
    );
    let mut textual_hits = 0u64;
    let mut contextual_hits = 0u64;
    let mut contextual_top10 = 0u64;
    let mut rank_sum = 0usize;
    for trial in 0..trials {
        let (_web, s) = scenario::rosebud(SEED + trial);
        let profile = TempProfile::new(&format!("e4-{trial}"));
        let mut browser =
            ProvenanceBrowser::open(profile.path(), CaptureConfig::default()).unwrap();
        browser.ingest_all(&s.events).unwrap();
        let config = ContextualConfig::default();
        if textual_history_search(&browser, &s.markers.query, &config)
            .contains_key(&s.markers.target_url)
        {
            textual_hits += 1;
        }
        let contextual = contextual_history_search(&browser, &s.markers.query, &config);
        if let Some(rank) = contextual.rank_of_key(&s.markers.target_url) {
            contextual_hits += 1;
            rank_sum += rank;
            if rank < 10 {
                contextual_top10 += 1;
            }
        }
    }
    let _ = writeln!(out, "   trials (distinct users/seeds) : {trials}");
    let _ = writeln!(
        out,
        "   textual search finds target    : {textual_hits}/{trials}"
    );
    let _ = writeln!(
        out,
        "   contextual search finds target : {contextual_hits}/{trials}"
    );
    let _ = writeln!(
        out,
        "   ... and ranks it in the top 10 : {contextual_top10}/{trials} (mean rank {:.1})",
        rank_sum as f64 / contextual_hits.max(1) as f64
    );
    out
}

/// E5 — personalized web search (gardener vs cinephile).
pub fn e5_personalization(trials: u64) -> String {
    let mut out = header(
        "E5",
        "client-side web-search personalization (§2.2)",
        "the gardener's 'rosebud' finds flowers without telling the engine who she is",
    );
    let mut improved = 0u64;
    let mut unchanged = 0u64;
    let mut leaks = 0u64;
    let mut frac_plain_sum = 0.0;
    let mut frac_pers_sum = 0.0;
    for trial in 0..trials {
        let (web, s) = scenario::gardener(SEED + trial);
        let profile = TempProfile::new(&format!("e5-{trial}"));
        let mut browser =
            ProvenanceBrowser::open(profile.path(), CaptureConfig::default()).unwrap();
        browser.ingest_all(&s.events).unwrap();
        let expanded = personalize_query(&browser, &s.markers.query, &PersonalizeConfig::default());
        if expanded.is_unchanged() {
            unchanged += 1;
            continue;
        }
        let outgoing = expanded.to_query_string();
        if outgoing.contains("http") || outgoing.contains('/') {
            leaks += 1;
        }
        let gardening_frac = |ids: &[usize]| {
            ids.iter()
                .filter(|&&id| web.page(id).url.contains("gardening"))
                .count() as f64
                / ids.len().max(1) as f64
        };
        let plain = gardening_frac(&web.search(&s.markers.query, 10));
        let personalized = gardening_frac(&web.search(&outgoing, 10));
        frac_plain_sum += plain;
        frac_pers_sum += personalized;
        if personalized > plain {
            improved += 1;
        }
    }
    let ran = trials - unchanged;
    let _ = writeln!(
        out,
        "   trials                         : {trials} ({unchanged} had no context)"
    );
    let _ = writeln!(
        out,
        "   mean gardening fraction in top-10: plain {:.2} -> personalized {:.2}",
        frac_plain_sum / ran.max(1) as f64,
        frac_pers_sum / ran.max(1) as f64
    );
    let _ = writeln!(out, "   strictly improved              : {improved}/{ran}");
    let _ = writeln!(
        out,
        "   history leaked to engine       : {leaks}/{ran} (must be 0)"
    );
    out
}

/// E6 — time-contextual history search (wine & plane tickets).
pub fn e6_time_contextual(trials: u64) -> String {
    let mut out = header(
        "E6",
        "time-contextual history search (§2.3)",
        "'wine associated with plane tickets' returns the remembered page",
    );
    let mut found = 0u64;
    let mut reduction_sum = 0.0;
    for trial in 0..trials {
        let (_web, s) = scenario::wine_and_tickets(SEED + trial);
        let profile = TempProfile::new(&format!("e6-{trial}"));
        let mut browser =
            ProvenanceBrowser::open(profile.path(), CaptureConfig::default()).unwrap();
        browser.ingest_all(&s.events).unwrap();
        let result = time_contextual_search(
            &browser,
            &s.markers.query,
            &s.markers.companion_query,
            &TimeContextConfig::default(),
        );
        if result.contains_key(&s.markers.target_url) {
            found += 1;
        }
        let plain = browser.text_index().search(&s.markers.query).len();
        reduction_sum += plain as f64 / result.hits.len().max(1) as f64;
    }
    let _ = writeln!(out, "   trials                         : {trials}");
    let _ = writeln!(out, "   remembered page found          : {found}/{trials}");
    let _ = writeln!(
        out,
        "   mean candidate-set reduction   : {:.1}x",
        reduction_sum / trials.max(1) as f64
    );
    out
}

/// E7 — download lineage (the drive-by).
pub fn e7_download_lineage(trials: u64) -> String {
    let mut out = header(
        "E7",
        "download lineage path queries (§2.4)",
        "first recognizable ancestor + all downloads descending from an untrusted page",
    );
    let mut correct_ancestor = 0u64;
    let mut all_descendants = 0u64;
    for trial in 0..trials {
        let (_web, s) = scenario::driveby(SEED + trial);
        let profile = TempProfile::new(&format!("e7-{trial}"));
        let mut browser =
            ProvenanceBrowser::open(profile.path(), CaptureConfig::default()).unwrap();
        browser.ingest_all(&s.events).unwrap();
        let dl = find_download(&browser, &s.markers.download_path).unwrap();
        if let Some(answer) = first_recognizable_ancestor(&browser, dl, &LineageConfig::default()) {
            if answer.url == s.markers.recognizable_url {
                correct_ancestor += 1;
            }
        }
        let descendants =
            downloads_descending_from(&browser, &s.markers.untrusted_url, &Budget::new());
        if descendants.len() >= 3
            && descendants
                .iter()
                .any(|(_, p)| p == &s.markers.download_path)
        {
            all_descendants += 1;
        }
    }
    let _ = writeln!(out, "   trials                         : {trials}");
    let _ = writeln!(
        out,
        "   correct recognizable ancestor  : {correct_ancestor}/{trials}"
    );
    let _ = writeln!(
        out,
        "   untrusted-page audit complete  : {all_descendants}/{trials}"
    );
    out
}

/// A1 — node versioning vs Firefox-style edge timestamping (§3.1).
pub fn a1_versioning(days: u32) -> String {
    let mut out = header(
        "A1",
        "cycle breaking: visit instances vs edge-timestamp records",
        "Firefox's per-traversal records make link queries slow (§3.1)",
    );
    let (_h, _profile, browser) = paper_fixture(days);
    let graph = browser.graph();

    // Our scheme: visit-instance nodes. A "link query" (all traversals of
    // URL A -> URL B) walks the per-node adjacency of A's few versions.
    let visits: Vec<_> = graph.nodes_of_kind(NodeKind::PageVisit).collect();

    // Firefox-like scheme: one record per traversal in a flat table; a
    // link query scans it. Build the flat table from the same graph.
    let mut traversal_table: Vec<(String, String)> = Vec::new();
    for (_, e) in graph.edges() {
        if e.kind() == EdgeKind::Link {
            let (Ok(src), Ok(dst)) = (graph.node(e.src()), graph.node(e.dst())) else {
                continue;
            };
            traversal_table.push((src.key().to_owned(), dst.key().to_owned()));
        }
    }
    // Pick the most common link as the query target.
    let mut counts: std::collections::HashMap<(&str, &str), usize> =
        std::collections::HashMap::new();
    for (a, b) in &traversal_table {
        *counts.entry((a, b)).or_insert(0) += 1;
    }
    let Some((&(qa, qb), _)) = counts.iter().max_by_key(|(_, &c)| c) else {
        return out + "   (no link traversals in history)\n";
    };
    let (qa, qb) = (qa.to_owned(), qb.to_owned());

    // Flat-scan cost.
    let t0 = ClockHandle::real().start();
    let mut flat_hits = 0usize;
    for _ in 0..100 {
        flat_hits = traversal_table
            .iter()
            .filter(|(a, b)| *a == qa && *b == qb)
            .count();
    }
    let flat_time = t0.elapsed() / 100;

    // Versioned-graph cost: look up the URL's visit versions via the key
    // index, walk only their out-edges.
    let keys = browser.store().keys();
    let t0 = ClockHandle::real().start();
    let mut graph_hits = 0usize;
    for _ in 0..100 {
        graph_hits = keys
            .get(&qa)
            .iter()
            .flat_map(|&v| graph.parents(v))
            .filter(|(eid, dst)| {
                graph.edge(*eid).unwrap().kind() == EdgeKind::Link
                    && graph.node(*dst).is_ok_and(|n| n.key() == qb)
            })
            .count();
    }
    let graph_time = t0.elapsed() / 100;

    let _ = writeln!(out, "   visit instances                : {}", visits.len());
    let _ = writeln!(
        out,
        "   flat traversal records         : {}",
        traversal_table.len()
    );
    let _ = writeln!(
        out,
        "   link query '{} -> {}'",
        &qa[..qa.len().min(40)],
        &qb[..qb.len().min(40)]
    );
    let _ = writeln!(
        out,
        "   flat-table scan (Firefox-like) : {flat_time:?} ({flat_hits} hits)"
    );
    let _ = writeln!(
        out,
        "   versioned graph (this repo)    : {graph_time:?} ({graph_hits} hits)"
    );
    out
}

/// A2 — factorized vs raw edge-structure storage (§3.1, Chapman et al.).
pub fn a2_factorization(days: u32) -> String {
    let mut out = header(
        "A2",
        "structural factorization",
        "factorization methods are 'almost certainly applicable' (§3.1)",
    );
    let (_h, _profile, browser) = paper_fixture(days);
    let graph = browser.graph();
    let t0 = ClockHandle::real().start();
    let fact = bp_storage::factorize(graph);
    let encode_time = t0.elapsed();
    let raw = bp_storage::raw_structure_size(graph);
    let t0 = ClockHandle::real().start();
    let decoded = bp_storage::defactorize(&fact).expect("roundtrip");
    let decode_time = t0.elapsed();
    assert_eq!(decoded.len(), graph.edge_count());
    let _ = writeln!(
        out,
        "   edges                          : {}",
        fact.edge_count()
    );
    let _ = writeln!(
        out,
        "   distinct kind signatures       : {}",
        fact.signature_count()
    );
    let _ = writeln!(out, "   raw structure bytes            : {raw}");
    let _ = writeln!(
        out,
        "   factorized bytes               : {} ({:.1}% of raw)",
        fact.encoded_size(),
        100.0 * fact.encoded_size() as f64 / raw as f64
    );
    let _ = writeln!(out, "   encode {encode_time:?} / decode {decode_time:?}");
    // §3.1's other storage idea: the navigation-tree property. The tree
    // covers only navigation edges, but encodes them at ~1 byte each.
    let tree = bp_graph::tree::HistoryTree::extract(graph);
    let tree_bytes = tree.encode().len();
    let _ = writeln!(
        out,
        "   navigation-tree subset         : {} of {} edges in {} bytes ({:.2} bytes/edge; Ayers-Stasko property)",
        tree.edge_count(),
        graph.edge_count(),
        tree_bytes,
        tree_bytes as f64 / tree.edge_count().max(1) as f64
    );
    out
}

/// A3 — close records & temporal overlap: cost and capability (§3.2).
pub fn a3_time_relationships(days: u32) -> String {
    let mut out = header(
        "A3",
        "close records + temporal overlap",
        "without closes, 'every page is always open' (§3.2)",
    );
    let h = history(days);
    let (_p1, mut with) = ingest(&h, CaptureConfig::default(), "a3-with");
    let without_config = CaptureConfig {
        record_close: false,
        record_temporal_overlap: false,
        ..CaptureConfig::default()
    };
    let (_p2, mut without) = ingest(&h, without_config, "a3-without");
    with.snapshot().unwrap();
    without.snapshot().unwrap();
    let wb = with.size_report().total_bytes();
    let wob = without.size_report().total_bytes();
    let _ = writeln!(
        out,
        "   store with closes+overlap      : {wb} bytes, {} edges",
        with.graph().edge_count()
    );
    let _ = writeln!(
        out,
        "   store without (Firefox-like)   : {wob} bytes, {} edges",
        without.graph().edge_count()
    );
    let _ = writeln!(
        out,
        "   cost of time relationships     : {:+.1}%",
        100.0 * (wb as f64 - wob as f64) / wob as f64
    );
    // Capability: a controlled §2.3 situation — fifty wine pages read on
    // separate days, exactly one while plane tickets were open. With close
    // records the query isolates it; without, "every page is always open"
    // and they all match.
    let events = controlled_wine_history();
    let p3 = TempProfile::new("a3-cap-with");
    let mut cap_with = ProvenanceBrowser::open(p3.path(), CaptureConfig::default()).unwrap();
    cap_with.ingest_all(&events).unwrap();
    let p4 = TempProfile::new("a3-cap-without");
    let wo_config = CaptureConfig {
        record_close: false,
        record_temporal_overlap: false,
        ..CaptureConfig::default()
    };
    let mut cap_without = ProvenanceBrowser::open(p4.path(), wo_config).unwrap();
    cap_without.ingest_all(&events).unwrap();
    // Uncapped so the hit counts show the real candidate sets.
    let config = TimeContextConfig {
        max_results: usize::MAX,
        ..TimeContextConfig::default()
    };
    let target = "http://rare-wine.example/the-bottle";
    let r_with = time_contextual_search(&cap_with, "wine", "plane tickets", &config);
    let r_without = time_contextual_search(&cap_without, "wine", "plane tickets", &config);
    let _ = writeln!(
        out,
        "   controlled §2.3 query hits with closes   : {} of 51 wine pages (target rank {:?})",
        r_with.hits.len(),
        r_with.rank_of_key(target)
    );
    let _ = writeln!(
        out,
        "   controlled §2.3 query hits without closes: {} of 51 wine pages (target rank {:?})",
        r_without.hits.len(),
        r_without.rank_of_key(target)
    );
    out
}

/// Fifty wine pages across fifty days, plus one wine page viewed while a
/// plane-tickets tab was open. Ground truth for the A3 capability check.
fn controlled_wine_history() -> Vec<bp_core::BrowserEvent> {
    use bp_core::{BrowserEvent, EventKind, NavigationCause, TabId};
    use bp_graph::Timestamp;
    let t = |s: i64| Timestamp::from_secs(s);
    let mut events = vec![BrowserEvent::tab_opened(t(0), TabId(0), None)];
    for day in 0..50i64 {
        events.push(BrowserEvent::navigate(
            t(day * 86_400 + 100),
            TabId(0),
            format!("http://wine{day}.example/notes"),
            Some("wine tasting notes"),
            NavigationCause::Typed,
        ));
    }
    let s0 = 60 * 86_400;
    events.push(BrowserEvent::navigate(
        t(s0),
        TabId(0),
        "http://rare-wine.example/the-bottle",
        Some("rare wine bottle"),
        NavigationCause::Typed,
    ));
    events.push(BrowserEvent::tab_opened(
        t(s0 + 30),
        TabId(1),
        Some(TabId(0)),
    ));
    events.push(BrowserEvent::navigate(
        t(s0 + 40),
        TabId(1),
        "http://travel.example/plane-tickets",
        Some("cheap plane tickets"),
        NavigationCause::Typed,
    ));
    events.push(BrowserEvent::new(
        t(s0 + 600),
        EventKind::TabClosed { tab: TabId(1) },
    ));
    events.push(BrowserEvent::new(
        t(s0 + 700),
        EventKind::TabClosed { tab: TabId(0) },
    ));
    events
}

/// A4 — dropping second-class relationships fragments the history (§3.2).
pub fn a4_second_class(days: u32) -> String {
    let mut out = header(
        "A4",
        "second-class relationships",
        "typed-location users 'generate sparsely connected metadata' (§3.2)",
    );
    let h = history(days);
    let (_p1, full) = ingest(&h, CaptureConfig::default(), "a4-full");
    let (_p2, firefox) = ingest(&h, CaptureConfig::firefox_like(), "a4-ff");
    let g_full = full.graph();
    let g_ff = firefox.graph();
    let nav_only =
        |k: EdgeKind| k.is_causal() && k != EdgeKind::InstanceOf && k != EdgeKind::VersionOf;
    let _ = writeln!(
        out,
        "   provenance-aware: {} edges, {} components (nav edges only: {})",
        g_full.edge_count(),
        connected_components(g_full, |_| true),
        connected_components(g_full, nav_only),
    );
    let _ = writeln!(
        out,
        "   firefox-like    : {} edges, {} components (nav edges only: {})",
        g_ff.edge_count(),
        connected_components(g_ff, |_| true),
        connected_components(g_ff, nav_only),
    );
    let _ = writeln!(
        out,
        "   second-class fraction of provenance-aware edges: {:.1}%",
        100.0 * second_class_fraction(g_full)
    );
    // Unconnected navigations: visits with no incoming/outgoing
    // navigational edge at all.
    let orphan_visits = |g: &bp_graph::ProvenanceGraph| {
        g.nodes_of_kind(NodeKind::PageVisit)
            .filter(|&v| {
                !g.neighbors(v).any(|(eid, _)| {
                    let k = g.edge(eid).unwrap().kind();
                    k != EdgeKind::InstanceOf && k != EdgeKind::VersionOf
                })
            })
            .count()
    };
    let _ = writeln!(
        out,
        "   visits with no recorded relationship: provenance-aware {} vs firefox-like {}",
        orphan_visits(g_full),
        orphan_visits(g_ff)
    );
    out
}

/// A5 — context-algorithm comparison (§4 future work: "more intelligent
/// algorithms"): one-shot neighborhood expansion vs expansion + HITS
/// authority vs personalized PageRank, on the rosebud retrieval task and
/// on paper-scale latency.
pub fn a5_algorithms(trials: u64, days: u32) -> String {
    let mut out = header(
        "A5",
        "context algorithms: expansion vs +HITS vs personalized PageRank",
        "§4: 'we must now develop more intelligent algorithms'",
    );
    use bp_query::contextual_history_search_ppr;
    let ppr_config = bp_graph::pagerank::PageRankConfig::default();
    let mut found = [0u64; 3];
    let mut rank_sum = [0usize; 3];
    for trial in 0..trials {
        let (_web, s) = scenario::rosebud(SEED + trial);
        let profile = TempProfile::new(&format!("a5-{trial}"));
        let mut browser =
            ProvenanceBrowser::open(profile.path(), CaptureConfig::default()).unwrap();
        browser.ingest_all(&s.events).unwrap();
        let configs = [
            ContextualConfig::default(),
            ContextualConfig {
                hits_weight: 1.0,
                ..ContextualConfig::default()
            },
        ];
        for (i, config) in configs.iter().enumerate() {
            let r = contextual_history_search(&browser, &s.markers.query, config);
            if let Some(rank) = r.rank_of_key(&s.markers.target_url) {
                found[i] += 1;
                rank_sum[i] += rank;
            }
        }
        let r = contextual_history_search_ppr(
            &browser,
            &s.markers.query,
            &ContextualConfig::default(),
            &ppr_config,
        );
        if let Some(rank) = r.rank_of_key(&s.markers.target_url) {
            found[2] += 1;
            rank_sum[2] += rank;
        }
    }
    for (i, name) in ["expansion", "expansion + HITS", "personalized PageRank"]
        .iter()
        .enumerate()
    {
        let _ = writeln!(
            out,
            "   {name:<24} finds target {}/{trials}, mean rank {:.1}",
            found[i],
            rank_sum[i] as f64 / found[i].max(1) as f64
        );
    }
    // Latency at paper scale.
    let (_h, _profile, browser) = paper_fixture(days.min(20));
    let mut samples = (Vec::new(), Vec::new());
    for topic in TOPICS.iter().take(20) {
        let q = topic.vocabulary[0];
        let t0 = ClockHandle::real().start();
        let _ = contextual_history_search(&browser, q, &ContextualConfig::default());
        samples.0.push(t0.elapsed());
        let t0 = ClockHandle::real().start();
        let _ =
            contextual_history_search_ppr(&browser, q, &ContextualConfig::default(), &ppr_config);
        samples.1.push(t0.elapsed());
    }
    out.push_str(&latency_line("expansion latency", samples.0));
    out.push_str(&latency_line("PPR latency", samples.1));
    out
}

/// Runs every experiment at the given scale, concatenating reports.
pub fn run_all(days: u32, trials: u64) -> String {
    let mut out = String::new();
    out.push_str(&e1_storage_overhead(days));
    out.push('\n');
    out.push_str(&e2_query_latency(days));
    out.push('\n');
    out.push_str(&e3_history_scale(days));
    out.push('\n');
    out.push_str(&e4_contextual_vs_textual(trials));
    out.push('\n');
    out.push_str(&e5_personalization(trials));
    out.push('\n');
    out.push_str(&e6_time_contextual(trials));
    out.push('\n');
    out.push_str(&e7_download_lineage(trials));
    out.push('\n');
    out.push_str(&a1_versioning(days));
    out.push('\n');
    out.push_str(&a2_factorization(days));
    out.push('\n');
    out.push_str(&a3_time_relationships(days.min(20)));
    out.push('\n');
    out.push_str(&a4_second_class(days.min(20)));
    out.push('\n');
    out.push_str(&a5_algorithms(trials, days));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_runs_at_small_scale() {
        let report = e1_storage_overhead(2);
        assert!(report.contains("Places baseline"));
        assert!(report.contains("overhead"));
    }

    #[test]
    fn e4_scenarios_pass_at_small_scale() {
        let report = e4_contextual_vs_textual(2);
        assert!(
            report.contains("contextual search finds target : 2/2"),
            "{report}"
        );
        assert!(
            report.contains("textual search finds target    : 0/2"),
            "{report}"
        );
    }

    #[test]
    fn e7_scenarios_pass_at_small_scale() {
        let report = e7_download_lineage(2);
        assert!(
            report.contains("correct recognizable ancestor  : 2/2"),
            "{report}"
        );
    }

    #[test]
    fn ablations_run_at_small_scale() {
        assert!(a2_factorization(1).contains("factorized bytes"));
        assert!(a4_second_class(1).contains("second-class fraction"));
    }
}
