//! Machine-readable benchmark reports (`BENCH_*.json`) and the regression
//! comparator behind `bench --compare`.
//!
//! The report schema is versioned and renders with sorted keys
//! (`schema_version` first) so diffs between commits are stable. Latency
//! summaries come from [`bp_obs::Histogram`] log₂ histograms via the
//! interpolated quantile estimator, which is exactly what the live
//! metrics exposition publishes — the benchmark and production numbers
//! share one estimator.

use bp_obs::json::{self, Value};
use bp_obs::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version of the `BENCH_*.json` schema. Bump on any field change.
///
/// v2 added the `frozen` section (CSR snapshot builds, parallel jobs,
/// score-cache hit/miss/evict/bytes); v3 added `ingest.events_per_sec`
/// and the `wal` section (group-commit append/sync telemetry from the
/// sustained-ingest phase). Older documents parse with default (empty)
/// sections so old baselines stay comparable.
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// Oldest schema version `from_json` still accepts.
pub const BENCH_SCHEMA_MIN_VERSION: u64 = 1;

/// Frozen-snapshot and score-cache telemetry for one run (schema v2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FrozenStats {
    /// Worker threads requested for the parallel PageRank kernel.
    pub jobs: u64,
    /// CSR snapshot rebuilds over the whole run.
    pub builds: u64,
    /// Wall time of the most recent snapshot build, microseconds.
    pub build_us: u64,
    /// Score-cache lookups served from cache.
    pub cache_hits: u64,
    /// Score-cache lookups that had to compute fresh scores.
    pub cache_misses: u64,
    /// Cache entries dropped (stale epoch or LRU byte pressure).
    pub cache_evictions: u64,
    /// Estimated cache bytes held at end of run.
    pub cache_bytes: u64,
}

impl FrozenStats {
    /// Cache hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"build_us\": {}, \"builds\": {}, \"cache_bytes\": {}, \
             \"cache_evictions\": {}, \"cache_hit_rate\": {:.4}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"jobs\": {}}}",
            self.build_us,
            self.builds,
            self.cache_bytes,
            self.cache_evictions,
            self.hit_rate(),
            self.cache_hits,
            self.cache_misses,
            self.jobs
        )
    }

    fn from_json(v: &Value) -> Option<Self> {
        // `cache_hit_rate` is derived on render and ignored on parse.
        Some(FrozenStats {
            jobs: v.get("jobs")?.as_u64()?,
            builds: v.get("builds")?.as_u64()?,
            build_us: v.get("build_us")?.as_u64()?,
            cache_hits: v.get("cache_hits")?.as_u64()?,
            cache_misses: v.get("cache_misses")?.as_u64()?,
            cache_evictions: v.get("cache_evictions")?.as_u64()?,
            cache_bytes: v.get("cache_bytes")?.as_u64()?,
        })
    }
}

/// Write-ahead-log group-commit telemetry from the sustained-ingest
/// phase (schema v3): how the batched capture drain amortized WAL
/// appends and fsyncs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Frames appended to the log.
    pub appends: u64,
    /// Bytes written to the log (frame headers included).
    pub bytes_written: u64,
    /// Frame groups committed under one sync.
    pub groups: u64,
    /// Events carried by those groups.
    pub group_events: u64,
    /// Median capture drain batch size.
    pub batch_p50: u64,
    /// 95th-percentile capture drain batch size.
    pub batch_p95: u64,
    /// 95th-percentile group sync wall time, microseconds.
    pub sync_p95_us: u64,
}

impl WalStats {
    /// Mean events per committed group; 0 when no groups committed.
    pub fn events_per_group(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.group_events as f64 / self.groups as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"appends\": {}, \"batch_p50\": {}, \"batch_p95\": {}, \
             \"bytes_written\": {}, \"group_events\": {}, \"groups\": {}, \
             \"sync_p95_us\": {}}}",
            self.appends,
            self.batch_p50,
            self.batch_p95,
            self.bytes_written,
            self.group_events,
            self.groups,
            self.sync_p95_us
        )
    }

    fn from_json(v: &Value) -> Option<Self> {
        Some(WalStats {
            appends: v.get("appends")?.as_u64()?,
            bytes_written: v.get("bytes_written")?.as_u64()?,
            groups: v.get("groups")?.as_u64()?,
            group_events: v.get("group_events")?.as_u64()?,
            batch_p50: v.get("batch_p50")?.as_u64()?,
            batch_p95: v.get("batch_p95")?.as_u64()?,
            sync_p95_us: v.get("sync_p95_us")?.as_u64()?,
        })
    }
}

/// Latency distribution of one measured path, in microseconds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Interpolated median.
    pub p50_us: u64,
    /// Interpolated 95th percentile.
    pub p95_us: u64,
    /// Interpolated 99th percentile.
    pub p99_us: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Largest sample.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes a histogram snapshot with the interpolated estimator.
    pub fn from_histogram(snap: &HistogramSnapshot) -> Self {
        LatencySummary {
            count: snap.count,
            p50_us: snap.p50(),
            p95_us: snap.p95(),
            p99_us: snap.p99(),
            mean_us: snap.mean(),
            max_us: snap.max,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"max_us\": {}, \"mean_us\": {:.1}, \"p50_us\": {}, \
             \"p95_us\": {}, \"p99_us\": {}}}",
            self.count, self.max_us, self.mean_us, self.p50_us, self.p95_us, self.p99_us
        )
    }

    fn from_json(v: &Value) -> Option<Self> {
        Some(LatencySummary {
            count: v.get("count")?.as_u64()?,
            p50_us: v.get("p50_us")?.as_u64()?,
            p95_us: v.get("p95_us")?.as_u64()?,
            p99_us: v.get("p99_us")?.as_u64()?,
            mean_us: v.get("mean_us")?.as_f64()?,
            max_us: v.get("max_us")?.as_u64()?,
        })
    }
}

/// Store shape and size at the end of the benchmark run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreSizes {
    /// Events ingested.
    pub events: u64,
    /// Graph nodes.
    pub nodes: u64,
    /// Graph edges.
    pub edges: u64,
    /// Compacted snapshot bytes.
    pub snapshot_bytes: u64,
    /// Write-ahead-log bytes.
    pub log_bytes: u64,
}

/// One complete benchmark run, serializable to `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// `git rev-parse --short HEAD` at run time (`"nogit"` outside a repo).
    pub git_sha: String,
    /// Days of simulated history the run used.
    pub days: u32,
    /// Query invocations per path.
    pub runs_per_path: u64,
    /// Store shape and size.
    pub sizes: StoreSizes,
    /// Relational-provenance bytes over the Places baseline (the E1
    /// headline; the paper reports 1.395).
    pub e1_overhead_ratio: f64,
    /// Frozen-snapshot builds and score-cache traffic (schema v2;
    /// defaults to zeros when parsing a v1 document).
    pub frozen: FrozenStats,
    /// Per-event ingest latency.
    pub ingest: LatencySummary,
    /// Sustained-ingest throughput through the batched capture pipeline
    /// (schema v3; rendered as `ingest.events_per_sec`, 0 when parsing
    /// an older document).
    pub ingest_events_per_sec: f64,
    /// WAL group-commit telemetry from the sustained-ingest phase
    /// (schema v3; defaults to zeros when parsing an older document).
    pub wal: WalStats,
    /// Per-query-path latency, keyed by path name (all seven paths).
    pub queries: BTreeMap<String, LatencySummary>,
    /// Median wall time per EXPLAIN stage, keyed `path.stage`.
    pub stage_medians_us: BTreeMap<String, u64>,
}

impl BenchReport {
    /// Renders the schema-versioned JSON document: sorted keys throughout,
    /// `schema_version` first.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"days\": {},\n  \
             \"e1_overhead_ratio\": {:.4},\n",
            self.days, self.e1_overhead_ratio
        );
        let _ = writeln!(out, "  \"frozen\": {},", self.frozen.to_json());
        let _ = writeln!(out, "  \"git_sha\": \"{}\",", self.git_sha);
        // The ingest object carries the per-event latency summary plus
        // the sustained-throughput headline, keys still sorted.
        let _ = writeln!(
            out,
            "  \"ingest\": {{\"count\": {}, \"events_per_sec\": {:.1}, \"max_us\": {}, \
             \"mean_us\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}},",
            self.ingest.count,
            self.ingest_events_per_sec,
            self.ingest.max_us,
            self.ingest.mean_us,
            self.ingest.p50_us,
            self.ingest.p95_us,
            self.ingest.p99_us
        );
        let _ = write!(out, "  \"queries\": {{");
        for (i, (name, q)) in self.queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{name}\": {}", q.to_json());
        }
        out.push_str("\n  },\n");
        let _ = writeln!(out, "  \"runs_per_path\": {},", self.runs_per_path);
        let _ = writeln!(
            out,
            "  \"sizes\": {{\"edges\": {}, \"events\": {}, \"log_bytes\": {}, \
             \"nodes\": {}, \"snapshot_bytes\": {}}},",
            self.sizes.edges,
            self.sizes.events,
            self.sizes.log_bytes,
            self.sizes.nodes,
            self.sizes.snapshot_bytes
        );
        let _ = write!(out, "  \"stage_medians_us\": {{");
        for (i, (name, us)) in self.stage_medians_us.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{name}\": {us}");
        }
        out.push_str("\n  },\n");
        let _ = writeln!(out, "  \"wal\": {}", self.wal.to_json());
        out.push_str("}\n");
        out
    }

    /// Parses a `BENCH_*.json` document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/mismatched field on any
    /// deviation from the schema, including an unknown `schema_version`.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
        let version = v
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or("missing schema_version")?;
        if !(BENCH_SCHEMA_MIN_VERSION..=BENCH_SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "schema_version {version} unsupported (accepted: \
                 {BENCH_SCHEMA_MIN_VERSION}..={BENCH_SCHEMA_VERSION})"
            ));
        }
        // v1 predates the frozen section; default it so old baselines
        // remain usable as `--compare` inputs.
        let frozen = match v.get("frozen") {
            Some(f) => FrozenStats::from_json(f).ok_or("malformed frozen")?,
            None if version < 2 => FrozenStats::default(),
            None => return Err("missing frozen".to_owned()),
        };
        // v1/v2 predate the wal section and throughput headline; same
        // default treatment.
        let wal = match v.get("wal") {
            Some(w) => WalStats::from_json(w).ok_or("malformed wal")?,
            None if version < 3 => WalStats::default(),
            None => return Err("missing wal".to_owned()),
        };
        let ingest_obj = v.get("ingest").ok_or("missing ingest")?;
        let ingest_events_per_sec = match ingest_obj.get("events_per_sec") {
            Some(eps) => eps.as_f64().ok_or("malformed ingest.events_per_sec")?,
            None if version < 3 => 0.0,
            None => return Err("missing ingest.events_per_sec".to_owned()),
        };
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing {key}"))
        };
        let sizes = v.get("sizes").ok_or("missing sizes")?;
        let su = |key: &str| -> Result<u64, String> {
            sizes
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing sizes.{key}"))
        };
        let mut queries = BTreeMap::new();
        for (name, q) in v
            .get("queries")
            .and_then(Value::as_object)
            .ok_or("missing queries")?
        {
            let summary =
                LatencySummary::from_json(q).ok_or_else(|| format!("malformed queries.{name}"))?;
            queries.insert(name.clone(), summary);
        }
        let mut stage_medians_us = BTreeMap::new();
        for (name, us) in v
            .get("stage_medians_us")
            .and_then(Value::as_object)
            .ok_or("missing stage_medians_us")?
        {
            stage_medians_us.insert(
                name.clone(),
                us.as_u64()
                    .ok_or_else(|| format!("malformed stage_medians_us.{name}"))?,
            );
        }
        Ok(BenchReport {
            git_sha: v
                .get("git_sha")
                .and_then(Value::as_str)
                .ok_or("missing git_sha")?
                .to_owned(),
            days: u("days")? as u32,
            runs_per_path: u("runs_per_path")?,
            sizes: StoreSizes {
                events: su("events")?,
                nodes: su("nodes")?,
                edges: su("edges")?,
                snapshot_bytes: su("snapshot_bytes")?,
                log_bytes: su("log_bytes")?,
            },
            e1_overhead_ratio: v
                .get("e1_overhead_ratio")
                .and_then(Value::as_f64)
                .ok_or("missing e1_overhead_ratio")?,
            frozen,
            ingest: LatencySummary::from_json(ingest_obj).ok_or("malformed ingest")?,
            ingest_events_per_sec,
            wal,
            queries,
            stage_medians_us,
        })
    }
}

/// One detected p95 regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The regressed path (`ingest` or a query path name).
    pub path: String,
    /// Baseline p95 in microseconds.
    pub baseline_p95_us: u64,
    /// Current p95 in microseconds.
    pub current_p95_us: u64,
    /// Observed ratio (current / baseline).
    pub ratio: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: p95 {}us -> {}us ({:.2}x)",
            self.path, self.baseline_p95_us, self.current_p95_us, self.ratio
        )
    }
}

/// Compares `current` against `baseline`: any path whose p95 grew by more
/// than `threshold_pct` percent — and whose current p95 also exceeds
/// `floor_us`, so micro-latency noise cannot fail a build — is a
/// regression. Paths present on only one side are ignored (new scenarios
/// are not regressions; removed ones have nothing to compare).
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    threshold_pct: f64,
    floor_us: u64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    let mut check = |path: &str, base: &LatencySummary, cur: &LatencySummary| {
        if base.count == 0 || cur.count == 0 || cur.p95_us <= floor_us {
            return;
        }
        let allowed = base.p95_us as f64 * (1.0 + threshold_pct / 100.0);
        if cur.p95_us as f64 > allowed {
            out.push(Regression {
                path: path.to_owned(),
                baseline_p95_us: base.p95_us,
                current_p95_us: cur.p95_us,
                ratio: cur.p95_us as f64 / base.p95_us.max(1) as f64,
            });
        }
    };
    check("ingest", &baseline.ingest, &current.ingest);
    for (name, base) in &baseline.queries {
        if let Some(cur) = current.queries.get(name) {
            check(name, base, cur);
        }
    }
    out.sort_by(|a, b| {
        b.ratio
            .partial_cmp(&a.ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Like [`compare`], but only the named paths participate. The CI
/// relevance gate holds `context`/`ppr`/`personalize` to a tighter
/// threshold than the broad sweep without dragging every other path
/// down to it.
pub fn compare_paths(
    baseline: &BenchReport,
    current: &BenchReport,
    threshold_pct: f64,
    floor_us: u64,
    paths: &[&str],
) -> Vec<Regression> {
    compare(baseline, current, threshold_pct, floor_us)
        .into_iter()
        .filter(|r| paths.contains(&r.path.as_str()))
        .collect()
}

/// Computes the median of a sample set (0 for an empty set).
pub fn median_us(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_obs::Histogram;

    fn sample_report() -> BenchReport {
        let h = Histogram::default();
        for v in [900, 1000, 1100, 1200, 5000] {
            h.record(v);
        }
        let latency = LatencySummary::from_histogram(&h.snapshot());
        let mut queries = BTreeMap::new();
        for path in [
            "context",
            "ppr",
            "textual",
            "personalize",
            "timectx",
            "lineage",
            "describe",
        ] {
            queries.insert(path.to_owned(), latency.clone());
        }
        let mut stage_medians_us = BTreeMap::new();
        stage_medians_us.insert("context.expand".to_owned(), 480);
        stage_medians_us.insert("context.blend".to_owned(), 120);
        BenchReport {
            git_sha: "abc1234".to_owned(),
            days: 7,
            runs_per_path: 5,
            sizes: StoreSizes {
                events: 4000,
                nodes: 2500,
                edges: 6000,
                snapshot_bytes: 200_000,
                log_bytes: 10_000,
            },
            e1_overhead_ratio: 1.395,
            frozen: FrozenStats {
                jobs: 4,
                builds: 2,
                build_us: 1_800,
                cache_hits: 35,
                cache_misses: 5,
                cache_evictions: 1,
                cache_bytes: 65_536,
            },
            ingest: latency.clone(),
            ingest_events_per_sec: 281_250.5,
            wal: WalStats {
                appends: 4000,
                bytes_written: 512_000,
                groups: 20,
                group_events: 4000,
                batch_p50: 180,
                batch_p95: 256,
                sync_p95_us: 900,
            },
            queries,
            stage_medians_us,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let text = report.to_json();
        let parsed = BenchReport::from_json(&text).expect("parses");
        assert_eq!(parsed, report);
        // schema_version leads the document.
        assert!(text.trim_start().starts_with("{\n  \"schema_version\": 3"));
        // The frozen section renders its derived hit rate.
        assert!(text.contains("\"cache_hit_rate\": 0.8750"), "{text}");
        assert!((parsed.frozen.hit_rate() - 0.875).abs() < 1e-9);
        // The throughput headline rides inside the ingest object and the
        // wal section survives the trip.
        assert!(text.contains("\"events_per_sec\": 281250.5"), "{text}");
        assert!((parsed.wal.events_per_group() - 200.0).abs() < 1e-9);
        // All seven query paths carry percentiles.
        for path in [
            "context",
            "ppr",
            "textual",
            "personalize",
            "timectx",
            "lineage",
            "describe",
        ] {
            let q = &parsed.queries[path];
            assert!(q.p50_us <= q.p95_us && q.p95_us <= q.p99_us);
            assert!(q.count > 0);
        }
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let text = sample_report()
            .to_json()
            .replace("\"schema_version\": 3", "\"schema_version\": 999");
        assert!(BenchReport::from_json(&text)
            .unwrap_err()
            .contains("schema_version 999"));
    }

    /// Strips every v3-only addition from a rendered document.
    fn strip_v3(report: &BenchReport, text: &str) -> String {
        let wal_line = format!("  \"wal\": {}\n", report.wal.to_json());
        text.replace(&wal_line, "")
            .replace("  },\n}\n", "  }\n}\n")
            .replace(
                &format!("\"events_per_sec\": {:.1}, ", report.ingest_events_per_sec),
                "",
            )
    }

    #[test]
    fn v1_documents_parse_with_a_default_frozen_section() {
        // A pre-frozen baseline: drop the v2 and v3 sections, mark it v1.
        let mut expected = sample_report();
        let frozen_line = format!("  \"frozen\": {},\n", expected.frozen.to_json());
        let text = strip_v3(&expected, &expected.to_json())
            .replace("\"schema_version\": 3", "\"schema_version\": 1")
            .replace(&frozen_line, "");
        assert!(!text.contains("frozen"), "{text}");
        let parsed = BenchReport::from_json(&text).expect("v1 parses");
        expected.frozen = FrozenStats::default();
        expected.wal = WalStats::default();
        expected.ingest_events_per_sec = 0.0;
        assert_eq!(parsed, expected);
        assert_eq!(parsed.frozen.hit_rate(), 0.0);
        // A v3 document without the frozen section is malformed, not
        // legacy.
        let v3_missing = sample_report().to_json().replace(&frozen_line, "");
        assert_eq!(
            BenchReport::from_json(&v3_missing).unwrap_err(),
            "missing frozen"
        );
    }

    #[test]
    fn v2_documents_parse_with_a_default_wal_section() {
        // A pre-write-path baseline: no wal section, no throughput
        // headline, marked v2 — still usable as a `--compare` input.
        let mut expected = sample_report();
        let text = strip_v3(&expected, &expected.to_json())
            .replace("\"schema_version\": 3", "\"schema_version\": 2");
        assert!(!text.contains("\"wal\""), "{text}");
        assert!(!text.contains("events_per_sec"), "{text}");
        let parsed = BenchReport::from_json(&text).expect("v2 parses");
        expected.wal = WalStats::default();
        expected.ingest_events_per_sec = 0.0;
        assert_eq!(parsed, expected);
        assert_eq!(parsed.wal.events_per_group(), 0.0);
        // A v3 document missing the new pieces is malformed, not legacy.
        let report = sample_report();
        let v3_text = report.to_json();
        let wal_line = format!("  \"wal\": {}\n", report.wal.to_json());
        let no_wal = v3_text
            .replace(&wal_line, "")
            .replace("  },\n}\n", "  }\n}\n");
        assert_eq!(BenchReport::from_json(&no_wal).unwrap_err(), "missing wal");
        let no_eps = v3_text.replace(
            &format!("\"events_per_sec\": {:.1}, ", report.ingest_events_per_sec),
            "",
        );
        assert_eq!(
            BenchReport::from_json(&no_eps).unwrap_err(),
            "missing ingest.events_per_sec"
        );
    }

    #[test]
    fn compare_paths_gates_only_the_named_paths() {
        let baseline = sample_report();
        let mut slow = baseline.clone();
        // Both regress 2x, but only ppr is inside the gate.
        for path in ["ppr", "lineage"] {
            let q = slow.queries.get_mut(path).unwrap();
            q.p95_us *= 2;
        }
        let gated = compare_paths(
            &baseline,
            &slow,
            15.0,
            0,
            &["context", "ppr", "personalize"],
        );
        assert_eq!(gated.len(), 1, "{gated:?}");
        assert_eq!(gated[0].path, "ppr");
        // The broad compare still sees both.
        assert_eq!(compare(&baseline, &slow, 15.0, 0).len(), 2);
    }

    #[test]
    fn compare_flags_a_synthetic_2x_slowdown() {
        let baseline = sample_report();
        let mut slow = baseline.clone();
        // Synthetic regression: the context path doubles its p95.
        let ctx = slow.queries.get_mut("context").unwrap();
        ctx.p95_us *= 2;
        ctx.p99_us *= 2;
        let regressions = compare(&baseline, &slow, 20.0, 0);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert_eq!(regressions[0].path, "context");
        assert!((regressions[0].ratio - 2.0).abs() < 0.01);
        assert!(regressions[0].to_string().contains("2.00x"));
    }

    #[test]
    fn compare_tolerates_noise_within_threshold_and_floor() {
        let baseline = sample_report();
        let mut a_bit_slower = baseline.clone();
        for q in a_bit_slower.queries.values_mut() {
            q.p95_us = (q.p95_us as f64 * 1.15) as u64;
        }
        assert!(compare(&baseline, &a_bit_slower, 20.0, 0).is_empty());
        // A 3x jump on a sub-floor latency is noise, not a regression.
        let mut tiny = baseline.clone();
        tiny.queries.get_mut("context").unwrap().p95_us *= 3;
        assert!(compare(&baseline, &tiny, 20.0, 1_000_000).is_empty());
        // Paths only one side knows are ignored.
        let mut extra = baseline.clone();
        extra
            .queries
            .insert("novel".to_owned(), baseline.ingest.clone());
        assert!(compare(&baseline, &extra, 20.0, 0).is_empty());
    }

    #[test]
    fn median_handles_edges() {
        assert_eq!(median_us(&mut []), 0);
        assert_eq!(median_us(&mut [7]), 7);
        assert_eq!(median_us(&mut [3, 1, 2]), 2);
    }
}
