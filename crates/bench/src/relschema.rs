//! The paper-faithful relational provenance schema.
//!
//! The paper's prototype "implemented a model browser provenance schema
//! based on the Firefox Places schema as a SQLite relational database"
//! (§4) — provenance objects stored as relational *rows*. E1 measures the
//! 39.5%-overhead claim against **this** representation, so the comparison
//! matches what the authors actually built; the optimized `bp-storage`
//! figure is reported alongside as this repo's engineering improvement.
//!
//! Being "based on the Places schema", the relational rendering inherits
//! Places' normalizations:
//!
//! - strings (URLs, queries, paths, attribute text) live once in
//!   `prov_strings` and rows reference them by id — exactly how
//!   `moz_historyvisits` references `moz_places` instead of repeating the
//!   URL per visit;
//! - the *instance-of* and *version-of* relationships are foreign-key
//!   columns on the node row (like `moz_historyvisits.place_id` and
//!   `from_visit`), not edge rows; only event relationships (links,
//!   searches, overlap, downloads, …) occupy the edge table.

use bp_graph::{EdgeKind, ProvenanceGraph};
use bp_places::{Column, RowId, Table, Value};
use std::collections::HashMap;

/// Relational rendering of a provenance graph.
#[derive(Debug)]
pub struct RelationalProvenance {
    strings: Table,
    nodes: Table,
    edges: Table,
    attrs: Table,
}

impl RelationalProvenance {
    /// Materializes `graph` into relational tables.
    pub fn from_graph(graph: &ProvenanceGraph) -> Self {
        let mut strings = Table::new("prov_strings", vec![Column::unique("text")]);
        let mut string_ids: HashMap<String, RowId> = HashMap::new();
        let mut intern = |strings: &mut Table, s: &str| -> RowId {
            if let Some(&id) = string_ids.get(s) {
                return id;
            }
            let id = strings
                .insert(vec![s.into()])
                .expect("string uniqueness handled by the map");
            string_ids.insert(s.to_owned(), id);
            id
        };

        let mut nodes = Table::new(
            "prov_nodes",
            vec![
                Column::plain("kind"),
                Column::indexed("key_id"),
                Column::plain("version"),
                Column::indexed("open_date"),
                Column::plain("close_date"),
                // Foreign keys folding the bookkeeping relationships into
                // the row, Places-style.
                Column::plain("page_row"),
                Column::plain("prev_version_row"),
            ],
        );
        let mut edges = Table::new(
            "prov_edges",
            vec![
                Column::indexed("src"),
                Column::indexed("dst"),
                Column::plain("kind"),
                Column::plain("event_date"),
            ],
        );
        let mut attrs = Table::new(
            "prov_attrs",
            vec![
                Column::indexed("node"),
                Column::plain("name_id"),
                Column::plain("value"),
            ],
        );

        for (id, node) in graph.nodes() {
            let key_id = intern(&mut strings, node.key());
            // Fold instance_of / version_of into columns.
            let mut page_row = 0i64;
            let mut prev_row = 0i64;
            for (eid, parent) in graph.parents(id) {
                match graph.edge(eid).expect("live edge").kind() {
                    EdgeKind::InstanceOf => page_row = i64::from(parent.index()) + 1,
                    EdgeKind::VersionOf => prev_row = i64::from(parent.index()) + 1,
                    _ => {}
                }
            }
            nodes
                .insert(vec![
                    Value::Int(i64::from(node.kind().code())),
                    Value::Int(key_id),
                    Value::Int(i64::from(node.version().number())),
                    Value::Int(node.opened_at().as_micros()),
                    node.interval()
                        .close()
                        .map_or(Value::Null, |c| Value::Int(c.as_micros())),
                    if page_row == 0 {
                        Value::Null
                    } else {
                        Value::Int(page_row)
                    },
                    if prev_row == 0 {
                        Value::Null
                    } else {
                        Value::Int(prev_row)
                    },
                ])
                .expect("schema arity is fixed");
            for (name, value) in node.attrs().iter() {
                let name_id = intern(&mut strings, name);
                let value = match value {
                    bp_graph::AttrValue::Str(s) => Value::Int(intern(&mut strings, s)),
                    other => Value::Text(other.to_string()),
                };
                attrs
                    .insert(vec![
                        Value::Int(i64::from(id.index())),
                        Value::Int(name_id),
                        value,
                    ])
                    .expect("schema arity is fixed");
            }
        }
        for (_, edge) in graph.edges() {
            if matches!(edge.kind(), EdgeKind::InstanceOf | EdgeKind::VersionOf) {
                continue; // folded into node columns above
            }
            edges
                .insert(vec![
                    Value::Int(i64::from(edge.src().index())),
                    Value::Int(i64::from(edge.dst().index())),
                    Value::Int(i64::from(edge.kind().code())),
                    Value::Int(edge.at().as_micros()),
                ])
                .expect("schema arity is fixed");
        }
        RelationalProvenance {
            strings,
            nodes,
            edges,
            attrs,
        }
    }

    /// Serialized size of the relational provenance schema.
    pub fn encoded_size(&self) -> usize {
        self.strings.encoded_size()
            + self.nodes.encoded_size()
            + self.edges.encoded_size()
            + self.attrs.encoded_size()
    }

    /// Row counts (strings, nodes, edges, attrs).
    pub fn row_counts(&self) -> (usize, usize, usize, usize) {
        (
            self.strings.len(),
            self.nodes.len(),
            self.edges.len(),
            self.attrs.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_graph::{Node, NodeKind, Timestamp};

    #[test]
    fn materializes_all_objects_with_string_normalization() {
        let mut g = ProvenanceGraph::new();
        let a = g.add_node(
            Node::new(NodeKind::PageVisit, "http://a/", Timestamp::from_secs(1))
                .with_attr("title", "A"),
        );
        let b = g.add_node(Node::new(NodeKind::Download, "/f", Timestamp::from_secs(2)));
        g.add_edge(b, a, EdgeKind::DownloadFrom, Timestamp::from_secs(2))
            .unwrap();
        let rel = RelationalProvenance::from_graph(&g);
        // strings: "http://a/", "title", "A", "/f"
        assert_eq!(rel.row_counts(), (4, 2, 1, 1));
        assert!(rel.encoded_size() > 0);
    }

    #[test]
    fn repeated_urls_stored_once() {
        let mut g = ProvenanceGraph::new();
        for i in 0..10 {
            g.add_version(NodeKind::PageVisit, "http://same/", Timestamp::from_secs(i));
        }
        let rel = RelationalProvenance::from_graph(&g);
        let (strings, nodes, edges, _) = rel.row_counts();
        assert_eq!(strings, 1, "one row for the shared URL");
        assert_eq!(nodes, 10);
        assert_eq!(edges, 0, "version_of edges folded into columns");
    }

    #[test]
    fn bookkeeping_edges_become_columns() {
        let mut g = ProvenanceGraph::new();
        let page = g.add_node(Node::new(NodeKind::Page, "u", Timestamp::from_secs(0)));
        let v0 = g.add_version(NodeKind::PageVisit, "u", Timestamp::from_secs(1));
        g.add_edge(v0, page, EdgeKind::InstanceOf, Timestamp::from_secs(1))
            .unwrap();
        let v1 = g.add_version(NodeKind::PageVisit, "u", Timestamp::from_secs(2));
        g.add_edge(v1, page, EdgeKind::InstanceOf, Timestamp::from_secs(2))
            .unwrap();
        g.add_edge(v1, v0, EdgeKind::Link, Timestamp::from_secs(2))
            .unwrap();
        let rel = RelationalProvenance::from_graph(&g);
        let (_, nodes, edges, _) = rel.row_counts();
        assert_eq!(nodes, 3);
        assert_eq!(edges, 1, "only the Link edge remains a row");
    }

    #[test]
    fn size_scales_with_graph() {
        let mut g = ProvenanceGraph::new();
        let mut prev = None;
        for i in 0..100 {
            let v = g.add_node(Node::new(
                NodeKind::PageVisit,
                format!("http://p{i}/"),
                Timestamp::from_secs(i),
            ));
            if let Some(p) = prev {
                g.add_edge(v, p, EdgeKind::Link, Timestamp::from_secs(i))
                    .unwrap();
            }
            prev = Some(v);
        }
        let rel = RelationalProvenance::from_graph(&g);
        let (strings, nodes, edges, _) = rel.row_counts();
        assert_eq!((strings, nodes, edges), (100, 100, 99));
        let empty = RelationalProvenance::from_graph(&ProvenanceGraph::new());
        assert!(rel.encoded_size() > empty.encoded_size());
    }
}
