//! # bp-bench — experiment harness
//!
//! Regenerates every quantitative claim in the paper's evaluation (§4) and
//! the DESIGN.md ablations. The `report` binary prints the tables recorded
//! in EXPERIMENTS.md; the Criterion benches under `benches/` measure the
//! hot paths (ingest, queries, recovery, factorization).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fixtures;
pub mod relschema;
pub mod report;
