//! E3 benches: capture throughput — events/second through the full
//! capture path (graph + indexes + WAL), with and without the §3.2
//! second-class relationships.

use bp_bench::fixtures;
use bp_core::CaptureConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_capture_throughput(c: &mut Criterion) {
    let history = fixtures::history(7);
    let events = &history.events;
    let mut group = c.benchmark_group("capture_throughput");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(10);

    for (name, config) in [
        ("provenance_aware", CaptureConfig::default()),
        ("firefox_like", CaptureConfig::firefox_like()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter_batched(
                || fixtures::TempProfile::new("bench-ingest"),
                |profile| {
                    let mut browser =
                        bp_core::ProvenanceBrowser::open(profile.path(), config.clone()).unwrap();
                    browser.ingest_all(events).unwrap()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_text_indexing(c: &mut Criterion) {
    let history = fixtures::history(7);
    let urls: Vec<String> = history
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            bp_core::EventKind::Navigate { url, title, .. } => {
                Some(format!("{url} {}", title.as_deref().unwrap_or("")))
            }
            _ => None,
        })
        .collect();
    c.bench_function("inverted_index_build", |b| {
        b.iter(|| {
            let mut index = bp_text::InvertedIndex::new();
            for (i, text) in urls.iter().enumerate() {
                index.add_document(i as u32, text);
            }
            index.doc_count()
        })
    });
}

criterion_group!(benches, bench_capture_throughput, bench_text_indexing);
criterion_main!(benches);
