//! E1 benches: storage-layer costs — serialization of the two schemas,
//! snapshot compaction, and WAL append throughput.

use bp_bench::{fixtures, relschema::RelationalProvenance};
use bp_core::CaptureConfig;
use bp_places::{PlacesDb, PlacesIngester};
use bp_storage::{SyncPolicy, Wal};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const BENCH_DAYS: u32 = 7;

fn bench_schema_sizes(c: &mut Criterion) {
    let history = fixtures::history(BENCH_DAYS);
    let (_profile, browser) = fixtures::ingest(&history, CaptureConfig::default(), "bench-schema");

    let mut group = c.benchmark_group("schema_serialization");
    group.bench_function("places_ingest_and_size", |b| {
        b.iter(|| {
            let mut db = PlacesDb::new();
            let mut ingester = PlacesIngester::new();
            ingester.ingest_all(&mut db, &history.events).unwrap();
            db.encoded_size()
        })
    });
    group.bench_function("relational_provenance_materialize", |b| {
        b.iter(|| RelationalProvenance::from_graph(browser.graph()).encoded_size())
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let history = fixtures::history(BENCH_DAYS);
    c.bench_function("snapshot_compaction", |b| {
        b.iter_batched(
            || fixtures::ingest(&history, CaptureConfig::default(), "bench-snap"),
            |(_profile, mut browser)| {
                browser.snapshot().unwrap();
                browser.size_report().snapshot_bytes
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    for payload_size in [64usize, 512, 4096] {
        let payload = vec![0xabu8; payload_size];
        group.throughput(Throughput::Bytes(payload_size as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(payload_size),
            &payload,
            |b, payload| {
                let profile = fixtures::TempProfile::new("bench-wal");
                std::fs::create_dir_all(profile.path()).unwrap();
                let mut wal =
                    Wal::open(profile.path().join("bench.wal"), SyncPolicy::OsManaged).unwrap();
                b.iter(|| wal.append(payload).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let history = fixtures::history(BENCH_DAYS);
    let (profile, browser) = fixtures::ingest(&history, CaptureConfig::default(), "bench-recover");
    let nodes = browser.graph().node_count();
    drop(browser);
    c.bench_function(format!("recovery_replay_{nodes}_nodes"), |b| {
        b.iter(|| {
            bp_core::ProvenanceBrowser::open(profile.path(), CaptureConfig::default()).unwrap()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schema_sizes, bench_snapshot, bench_wal_append, bench_recovery
);
criterion_main!(benches);
