//! E2 benches: latency of the four §2 use-case queries at history scale.
//!
//! The paper's claim: "these queries complete in less than 200 ms in the
//! majority of cases and can be bound to that time in the remaining
//! cases" (§4). Criterion reports the distribution; the paper-vs-measured
//! comparison lives in EXPERIMENTS.md.

use bp_bench::fixtures;
use bp_core::CaptureConfig;
use bp_graph::traverse::Budget;
use bp_graph::NodeKind;
use bp_query::{
    contextual_history_search, first_recognizable_ancestor, personalize_query,
    textual_history_search, time_contextual_search, ContextualConfig, LineageConfig,
    PersonalizeConfig, TimeContextConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Scaled-down history for bench runtime sanity; the report binary runs
/// the full 79 days.
const BENCH_DAYS: u32 = 14;

fn bench_queries(c: &mut Criterion) {
    let history = fixtures::history(BENCH_DAYS);
    let (_profile, browser) = fixtures::ingest(&history, CaptureConfig::default(), "bench-query");
    let nodes = browser.graph().node_count();

    let mut group = c.benchmark_group("query_latency");

    let contextual_config = ContextualConfig::default();
    group.bench_with_input(
        BenchmarkId::new("contextual_search", nodes),
        &browser,
        |b, browser| {
            b.iter(|| contextual_history_search(browser, "news report market", &contextual_config))
        },
    );
    group.bench_with_input(
        BenchmarkId::new("textual_search_baseline", nodes),
        &browser,
        |b, browser| {
            b.iter(|| textual_history_search(browser, "news report market", &contextual_config))
        },
    );

    let personalize_config = PersonalizeConfig::default();
    group.bench_with_input(
        BenchmarkId::new("personalize", nodes),
        &browser,
        |b, browser| b.iter(|| personalize_query(browser, "report", &personalize_config)),
    );

    let time_config = TimeContextConfig::default();
    group.bench_with_input(
        BenchmarkId::new("time_contextual", nodes),
        &browser,
        |b, browser| b.iter(|| time_contextual_search(browser, "news", "software", &time_config)),
    );

    let download = browser
        .graph()
        .nodes_of_kind(NodeKind::Download)
        .next()
        .expect("history contains downloads");
    let lineage_config = LineageConfig {
        recognizable_visits: 2,
        ..LineageConfig::default()
    };
    group.bench_with_input(
        BenchmarkId::new("download_lineage", nodes),
        &browser,
        |b, browser| b.iter(|| first_recognizable_ancestor(browser, download, &lineage_config)),
    );

    // The bounded variant (the paper's "can be bound to that time").
    let bounded = ContextualConfig {
        budget: Budget::new().with_deadline(std::time::Duration::from_millis(200)),
        max_results: 1000,
        ..ContextualConfig::default()
    };
    group.bench_with_input(
        BenchmarkId::new("contextual_bounded_200ms", nodes),
        &browser,
        |b, browser| {
            b.iter(|| {
                contextual_history_search(browser, "news game wine travel software", &bounded)
            })
        },
    );

    group.finish();
}

fn bench_query_language(c: &mut Criterion) {
    let history = fixtures::history(BENCH_DAYS);
    let (_profile, browser) = fixtures::ingest(&history, CaptureConfig::default(), "bench-ql");
    let download = browser
        .graph()
        .nodes_of_kind(NodeKind::Download)
        .next()
        .expect("history contains downloads");
    let query = format!(
        "ancestors(#{}) where type = visit and visits >= 2 limit 1",
        download.index()
    );

    c.bench_function("ql_parse_and_execute", |b| {
        b.iter(|| bp_query::ql::run(&browser, &query, &Budget::new()).unwrap())
    });
    c.bench_function("ql_parse_only", |b| {
        b.iter(|| bp_query::ql::parse(&query).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_queries, bench_query_language
);
criterion_main!(benches);
