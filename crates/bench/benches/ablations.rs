//! Ablation benches A1–A4: the §3.1–§3.2 design decisions, measured.

use bp_bench::fixtures;
use bp_core::CaptureConfig;
use bp_graph::{EdgeKind, NodeKind};
use bp_query::{time_contextual_search, TimeContextConfig};
use bp_storage::{defactorize, factorize};
use criterion::{criterion_group, criterion_main, Criterion};

const BENCH_DAYS: u32 = 7;

/// A1 — link queries: flat per-traversal table scan (Firefox-like) vs the
/// versioned graph's key-indexed adjacency walk.
fn bench_a1_link_queries(c: &mut Criterion) {
    let history = fixtures::history(BENCH_DAYS);
    let (_profile, browser) = fixtures::ingest(&history, CaptureConfig::default(), "a1");
    let graph = browser.graph();

    let mut traversal_table: Vec<(String, String)> = Vec::new();
    for (_, e) in graph.edges() {
        if e.kind() == EdgeKind::Link {
            if let (Ok(src), Ok(dst)) = (graph.node(e.src()), graph.node(e.dst())) {
                traversal_table.push((src.key().to_owned(), dst.key().to_owned()));
            }
        }
    }
    let mut counts: std::collections::HashMap<(String, String), usize> =
        std::collections::HashMap::new();
    for (a, b) in &traversal_table {
        *counts.entry((a.clone(), b.clone())).or_insert(0) += 1;
    }
    let ((qa, qb), _) = counts
        .into_iter()
        .max_by_key(|(_, c)| *c)
        .expect("link traversals exist");

    let mut group = c.benchmark_group("a1_link_query");
    group.bench_function("flat_table_scan", |b| {
        b.iter(|| {
            traversal_table
                .iter()
                .filter(|(a, bb)| *a == qa && *bb == qb)
                .count()
        })
    });
    let keys = browser.store().keys();
    group.bench_function("versioned_graph_walk", |b| {
        b.iter(|| {
            keys.get(&qa)
                .iter()
                .flat_map(|&v| graph.parents(v))
                .filter(|(eid, dst)| {
                    graph.edge(*eid).unwrap().kind() == EdgeKind::Link
                        && graph.node(*dst).is_ok_and(|n| n.key() == qb)
                })
                .count()
        })
    });
    group.finish();
}

/// A2 — factorization encode/decode at history scale.
fn bench_a2_factorization(c: &mut Criterion) {
    let history = fixtures::history(BENCH_DAYS);
    let (_profile, browser) = fixtures::ingest(&history, CaptureConfig::default(), "a2");
    let graph = browser.graph();
    let mut group = c.benchmark_group("a2_factorization");
    group.bench_function("factorize", |b| b.iter(|| factorize(graph)));
    let fact = factorize(graph);
    group.bench_function("defactorize", |b| b.iter(|| defactorize(&fact).unwrap()));
    group.finish();
}

/// A3 — time-contextual query cost with the interval index vs a full
/// node scan.
fn bench_a3_interval_index(c: &mut Criterion) {
    let history = fixtures::history(BENCH_DAYS);
    let (_profile, browser) = fixtures::ingest(&history, CaptureConfig::default(), "a3");
    let graph = browser.graph();
    // Pick an existing visit's interval as the probe.
    let probe = graph
        .nodes_of_kind(NodeKind::PageVisit)
        .nth(50)
        .map(|n| *graph.node(n).unwrap().interval())
        .expect("history has visits");

    let mut group = c.benchmark_group("a3_interval_overlap");
    group.bench_function("time_index", |b| {
        b.iter(|| browser.store().times().overlapping(&probe).len())
    });
    group.bench_function("full_scan", |b| {
        b.iter(|| {
            graph
                .nodes()
                .filter(|(_, n)| n.interval().overlaps(&probe))
                .count()
        })
    });
    group.finish();
}

/// A4 — the §2.3 query under the two capture configurations (capability
/// ablation measured as work done).
fn bench_a4_capture_configs(c: &mut Criterion) {
    let history = fixtures::history(BENCH_DAYS);
    let mut group = c.benchmark_group("a4_time_query_by_capture");
    for (name, config) in [
        ("provenance_aware", CaptureConfig::default()),
        ("firefox_like", CaptureConfig::firefox_like()),
    ] {
        let (_profile, browser) = fixtures::ingest(&history, config, &format!("a4-{name}"));
        let time_config = TimeContextConfig::default();
        group.bench_function(name, |b| {
            b.iter(|| time_contextual_search(&browser, "news", "software", &time_config))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_a1_link_queries, bench_a2_factorization, bench_a3_interval_index, bench_a4_capture_configs
);
criterion_main!(benches);
