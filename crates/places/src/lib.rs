//! # bp-places — the Firefox Places baseline
//!
//! The paper measures its provenance schema's storage overhead *over the
//! Firefox Places schema* ("the total storage overhead of this schema over
//! Places is 39.5%", §4) and motivates its use cases against what Places
//! can already answer. This crate is that baseline, built from scratch:
//!
//! - a mini relational engine ([`Table`], [`Value`]) with rowids, unique
//!   and secondary indexes, and SQLite-flavoured size accounting;
//! - the Places schema ([`PlacesDb`]): `moz_places`, `moz_historyvisits`
//!   (with Firefox [`Transition`] codes), `moz_bookmarks`,
//!   `moz_inputhistory`, `moz_annos`;
//! - an ingester ([`PlacesIngester`]) that consumes the *same* browser
//!   event stream as `bp-core` but records only what Firefox records —
//!   dropping search terms, form lineage, tab structure, and close times,
//!   exactly the §3.2–3.3 gaps the paper documents.
//!
//! # Example
//!
//! ```
//! use bp_places::{PlacesDb, Transition};
//! use bp_graph::Timestamp;
//!
//! # fn main() -> Result<(), bp_places::TableError> {
//! let mut db = PlacesDb::new();
//! db.record_visit("http://example.com/", Timestamp::from_secs(1), Transition::Typed, None, 1)?;
//! db.set_title("http://example.com/", "Example Domain")?;
//! let hits = db.history_search("example");
//! assert_eq!(hits.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod ingest;
mod table;
mod value;

pub use db::{PlacesDb, Transition};
pub use ingest::PlacesIngester;
pub use table::{Column, RowId, Table, TableError};
pub use value::Value;

#[cfg(test)]
mod proptests {
    use super::*;
    use bp_graph::Timestamp;
    use proptest::prelude::*;

    proptest! {
        /// Visit counts are always consistent with the number of visit
        /// rows per place, whatever interleaving of URLs arrives.
        #[test]
        fn visit_counts_consistent(urls in prop::collection::vec(0u8..10, 1..100)) {
            let mut db = PlacesDb::new();
            for (i, u) in urls.iter().enumerate() {
                db.record_visit(
                    &format!("http://p{u}/"),
                    Timestamp::from_secs(i as i64),
                    Transition::Link,
                    None,
                    1,
                ).unwrap();
            }
            for (place, row) in db.places().iter() {
                let count = row[2].as_int().unwrap();
                let actual = db
                    .visits()
                    .lookup("place_id", &Value::Int(place))
                    .unwrap()
                    .len() as i64;
                prop_assert_eq!(count, actual);
            }
        }

        /// Search results always textually contain every query word.
        #[test]
        fn search_results_contain_query(
            pages in prop::collection::vec(("[a-z]{3,8}", "[a-z]{3,8}"), 1..30),
            probe_index in 0usize..30,
        ) {
            let mut db = PlacesDb::new();
            for (i, (host, word)) in pages.iter().enumerate() {
                let url = format!("http://{host}.example/{i}");
                db.record_visit(&url, Timestamp::from_secs(i as i64), Transition::Link, None, 1).unwrap();
                db.set_title(&url, word).unwrap();
            }
            let (_, probe) = &pages[probe_index % pages.len()];
            for (id, _) in db.history_search(probe) {
                let url = db.url_of(id).unwrap().to_lowercase();
                let title = db
                    .places()
                    .cell(id, "title")
                    .unwrap()
                    .as_text()
                    .unwrap_or("")
                    .to_lowercase();
                prop_assert!(url.contains(probe.as_str()) || title.contains(probe.as_str()));
            }
        }

        /// Size accounting is monotone under inserts.
        #[test]
        fn size_is_monotone(urls in prop::collection::vec(0u8..20, 1..50)) {
            let mut db = PlacesDb::new();
            let mut last = 0;
            for (i, u) in urls.iter().enumerate() {
                db.record_visit(
                    &format!("http://p{u}/page"),
                    Timestamp::from_secs(i as i64),
                    Transition::Link,
                    None,
                    1,
                ).unwrap();
                let size = db.encoded_size();
                prop_assert!(size > last, "size must grow with each visit");
                last = size;
            }
        }
    }
}
