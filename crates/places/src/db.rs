//! The Firefox Places schema on the mini relational engine.
//!
//! §3 grounds the paper in "Mozilla Firefox 3 … [which] recently underwent
//! a major revision of its history implementation" — the Places SQLite
//! database. This module reproduces the Places tables the paper's schema
//! was layered on, so experiment E1 can measure the provenance schema's
//! overhead against the same baseline the paper used:
//!
//! - `moz_places` — one row per URL (url, title, visit_count, frecency);
//! - `moz_historyvisits` — one row per visit (from_visit, place, date,
//!   type) — Firefox's "time stamps as instances of link traversals";
//! - `moz_bookmarks` — bookmark objects referencing places;
//! - `moz_inputhistory` — location-bar autocomplete history;
//! - `moz_annos` — annotations; Firefox 3 records downloads here.

use crate::table::{Column, RowId, Table, TableError};
use crate::value::Value;
use bp_graph::Timestamp;

/// Firefox visit-transition codes (`nsINavHistoryService`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transition {
    /// The user followed a link (TRANSITION_LINK = 1).
    Link = 1,
    /// The user typed the URL (TRANSITION_TYPED = 2).
    Typed = 2,
    /// The user clicked a bookmark (TRANSITION_BOOKMARK = 3).
    Bookmark = 3,
    /// Embedded content load (TRANSITION_EMBED = 4).
    Embed = 4,
    /// Permanent redirect (TRANSITION_REDIRECT_PERMANENT = 5).
    RedirectPermanent = 5,
    /// Temporary redirect (TRANSITION_REDIRECT_TEMPORARY = 6).
    RedirectTemporary = 6,
    /// Download (TRANSITION_DOWNLOAD = 7).
    Download = 7,
    /// Link in a frame (TRANSITION_FRAMED_LINK = 8).
    FramedLink = 8,
    /// Reload (TRANSITION_RELOAD = 9).
    Reload = 9,
}

/// The Places database.
#[derive(Debug, Clone)]
pub struct PlacesDb {
    places: Table,
    visits: Table,
    bookmarks: Table,
    input_history: Table,
    annos: Table,
}

impl Default for PlacesDb {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacesDb {
    /// Creates an empty Places database with the Firefox 3 schema.
    pub fn new() -> Self {
        PlacesDb {
            places: Table::new(
                "moz_places",
                vec![
                    Column::unique("url"),
                    Column::plain("title"),
                    Column::plain("visit_count"),
                    // Firefox indexes frecency; our history_search ranks by
                    // scanning, and a non-unique index over the handful of
                    // distinct frecency values degenerates (every visit
                    // would rewrite a huge index bucket). Plain column.
                    Column::plain("frecency"),
                    Column::plain("last_visit_date"),
                ],
            ),
            visits: Table::new(
                "moz_historyvisits",
                vec![
                    Column::indexed("from_visit"),
                    Column::indexed("place_id"),
                    Column::indexed("visit_date"),
                    Column::plain("visit_type"),
                    Column::plain("session"),
                ],
            ),
            bookmarks: Table::new(
                "moz_bookmarks",
                vec![
                    Column::indexed("fk"), // place id
                    Column::plain("type"),
                    Column::plain("title"),
                    Column::plain("date_added"),
                ],
            ),
            input_history: Table::new(
                "moz_inputhistory",
                vec![
                    Column::indexed("place_id"),
                    Column::plain("input"),
                    Column::plain("use_count"),
                ],
            ),
            annos: Table::new(
                "moz_annos",
                vec![
                    Column::indexed("place_id"),
                    Column::plain("anno_name"),
                    Column::plain("content"),
                    Column::plain("date_added"),
                ],
            ),
        }
    }

    /// Finds or creates the `moz_places` row for `url`, returning its id.
    ///
    /// # Errors
    ///
    /// Propagates table errors (none expected in normal operation).
    pub fn place_for_url(&mut self, url: &str) -> Result<RowId, TableError> {
        if let Some(&id) = self.places.lookup("url", &url.into())?.first() {
            return Ok(id);
        }
        self.places.insert(vec![
            url.into(),
            Value::Null,
            Value::Int(0),
            Value::Int(0),
            Value::Null,
        ])
    }

    /// Records one visit, updating the place's denormalized counters and
    /// frecency, exactly the bookkeeping Places does.
    ///
    /// # Errors
    ///
    /// Propagates table errors.
    pub fn record_visit(
        &mut self,
        url: &str,
        at: Timestamp,
        transition: Transition,
        from_visit: Option<RowId>,
        session: i64,
    ) -> Result<RowId, TableError> {
        let place = self.place_for_url(url)?;
        let visit = self.visits.insert(vec![
            Value::Int(from_visit.unwrap_or(0)),
            Value::Int(place),
            Value::Int(at.as_micros()),
            Value::Int(transition as i64),
            Value::Int(session),
        ])?;
        let count = self
            .places
            .cell(place, "visit_count")?
            .as_int()
            .unwrap_or(0)
            + 1;
        self.places
            .update(place, "visit_count", Value::Int(count))?;
        self.places
            .update(place, "last_visit_date", Value::Int(at.as_micros()))?;
        let frecency = compute_frecency(count, transition);
        self.places
            .update(place, "frecency", Value::Int(frecency))?;
        Ok(visit)
    }

    /// Sets a page title.
    ///
    /// # Errors
    ///
    /// Propagates table errors.
    pub fn set_title(&mut self, url: &str, title: &str) -> Result<(), TableError> {
        let place = self.place_for_url(url)?;
        self.places.update(place, "title", title.into())
    }

    /// Adds a bookmark for `url`.
    ///
    /// # Errors
    ///
    /// Propagates table errors.
    pub fn add_bookmark(
        &mut self,
        url: &str,
        title: &str,
        at: Timestamp,
    ) -> Result<RowId, TableError> {
        let place = self.place_for_url(url)?;
        self.bookmarks.insert(vec![
            Value::Int(place),
            Value::Int(1), // TYPE_BOOKMARK
            title.into(),
            Value::Int(at.as_micros()),
        ])
    }

    /// Records a location-bar input that led to `url` (autocomplete
    /// training data — *not* a navigation relationship; §3.2's point).
    ///
    /// # Errors
    ///
    /// Propagates table errors.
    pub fn record_input(&mut self, url: &str, input: &str) -> Result<(), TableError> {
        let place = self.place_for_url(url)?;
        let existing = self
            .input_history
            .lookup("place_id", &Value::Int(place))?
            .to_vec();
        for id in existing {
            if self.input_history.cell(id, "input")?.as_text() == Some(input) {
                let n = self
                    .input_history
                    .cell(id, "use_count")?
                    .as_int()
                    .unwrap_or(0);
                return self
                    .input_history
                    .update(id, "use_count", Value::Int(n + 1));
            }
        }
        self.input_history
            .insert(vec![Value::Int(place), input.into(), Value::Int(1)])?;
        Ok(())
    }

    /// Records a download annotation (Firefox 3 keeps download metadata in
    /// `moz_annos`: destination path annotated onto the source URL's
    /// place — "in many cases the URL is not informative", §2.4).
    ///
    /// # Errors
    ///
    /// Propagates table errors.
    pub fn record_download(
        &mut self,
        source_url: &str,
        dest_path: &str,
        at: Timestamp,
    ) -> Result<RowId, TableError> {
        let place = self.place_for_url(source_url)?;
        self.annos.insert(vec![
            Value::Int(place),
            "downloads/destinationFileURI".into(),
            dest_path.into(),
            Value::Int(at.as_micros()),
        ])
    }

    /// The "smart location bar" (the Firefox 3 feature the paper's
    /// introduction opens with): ranks URL suggestions for a typed prefix.
    /// Adaptive matches — inputs the user previously typed that led to a
    /// place (`moz_inputhistory`) — rank first, weighted by use count;
    /// substring matches over URL/title follow, ranked by frecency.
    /// Returns up to `k` `(place row, url)` pairs.
    pub fn autocomplete(&self, input: &str, k: usize) -> Vec<(RowId, String)> {
        let needle = input.to_lowercase();
        if needle.is_empty() {
            return Vec::new();
        }
        // Adaptive tier: previously typed inputs that start with this one.
        let mut scored: Vec<(RowId, i64)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (_, row) in self.input_history.iter() {
            let typed = row[1].as_text().unwrap_or("");
            if typed.to_lowercase().starts_with(&needle) {
                let place = row[0].as_int().unwrap_or(0);
                let uses = row[2].as_int().unwrap_or(0);
                if seen.insert(place) {
                    // Adaptive results outrank any frecency score.
                    scored.push((place, 1_000_000 + uses));
                }
            }
        }
        // Frecency tier: the ordinary history-search ranking.
        for (place, frecency) in self.history_search(input) {
            if seen.insert(place) {
                scored.push((place, frecency));
            }
        }
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
            .into_iter()
            .filter_map(|(place, _)| {
                self.places
                    .cell(place, "url")
                    .ok()
                    .and_then(|v| v.as_text())
                    .map(|u| (place, u.to_owned()))
            })
            .collect()
    }

    /// Textual history search, Places-style: substring match against URL
    /// and title, ranked by frecency. This is the §2.1 "currently" baseline
    /// that misses *Citizen Kane* for the query `rosebud`.
    pub fn history_search(&self, query: &str) -> Vec<(RowId, i64)> {
        let needle = query.to_lowercase();
        let mut hits: Vec<(RowId, i64)> = self
            .places
            .iter()
            .filter(|(_, row)| {
                let url = row[0].as_text().unwrap_or("").to_lowercase();
                let title = row[1].as_text().unwrap_or("").to_lowercase();
                needle
                    .split_whitespace()
                    .all(|w| url.contains(w) || title.contains(w))
            })
            .map(|(id, row)| (id, row[3].as_int().unwrap_or(0)))
            .collect();
        hits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hits
    }

    /// URL of a place row.
    ///
    /// # Errors
    ///
    /// Propagates table errors.
    pub fn url_of(&self, place: RowId) -> Result<&str, TableError> {
        Ok(self.places.cell(place, "url")?.as_text().unwrap_or(""))
    }

    /// The `moz_places` table.
    pub fn places(&self) -> &Table {
        &self.places
    }

    /// The `moz_historyvisits` table.
    pub fn visits(&self) -> &Table {
        &self.visits
    }

    /// The `moz_bookmarks` table.
    pub fn bookmarks(&self) -> &Table {
        &self.bookmarks
    }

    /// The `moz_inputhistory` table.
    pub fn input_history(&self) -> &Table {
        &self.input_history
    }

    /// The `moz_annos` table.
    pub fn annos(&self) -> &Table {
        &self.annos
    }

    /// Total rows across all tables — published as the `places.rows`
    /// gauge so the E1 size comparison has a live denominator.
    pub fn row_count(&self) -> usize {
        self.places.len()
            + self.visits.len()
            + self.bookmarks.len()
            + self.input_history.len()
            + self.annos.len()
    }

    /// Total serialized size of all tables — the E1 baseline figure.
    pub fn encoded_size(&self) -> usize {
        self.places.encoded_size()
            + self.visits.encoded_size()
            + self.bookmarks.encoded_size()
            + self.input_history.encoded_size()
            + self.annos.encoded_size()
    }
}

/// A simplified Firefox frecency: visit count weighted by transition type
/// (typed and bookmarked visits score higher than embeds/redirects).
fn compute_frecency(visit_count: i64, transition: Transition) -> i64 {
    let bonus = match transition {
        Transition::Typed => 2000,
        Transition::Bookmark => 1750,
        Transition::Link | Transition::FramedLink => 1000,
        Transition::Download => 500,
        Transition::Reload => 0,
        Transition::Embed | Transition::RedirectPermanent | Transition::RedirectTemporary => 0,
    };
    visit_count * 100 + bonus
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn visits_update_place_counters() {
        let mut db = PlacesDb::new();
        let v1 = db
            .record_visit("http://a/", t(1), Transition::Typed, None, 1)
            .unwrap();
        let _v2 = db
            .record_visit("http://a/", t(5), Transition::Link, Some(v1), 1)
            .unwrap();
        assert_eq!(db.places().len(), 1, "one place row per URL");
        assert_eq!(db.visits().len(), 2);
        let place = db.place_for_url("http://a/").unwrap();
        assert_eq!(
            db.places().cell(place, "visit_count").unwrap().as_int(),
            Some(2)
        );
        assert_eq!(
            db.places().cell(place, "last_visit_date").unwrap().as_int(),
            Some(t(5).as_micros())
        );
    }

    #[test]
    fn from_visit_forms_referrer_chains() {
        let mut db = PlacesDb::new();
        let v1 = db
            .record_visit("http://a/", t(1), Transition::Typed, None, 1)
            .unwrap();
        let v2 = db
            .record_visit("http://b/", t(2), Transition::Link, Some(v1), 1)
            .unwrap();
        assert_eq!(
            db.visits().cell(v2, "from_visit").unwrap().as_int(),
            Some(v1)
        );
    }

    #[test]
    fn title_and_search() {
        let mut db = PlacesDb::new();
        db.record_visit("http://se/?q=rosebud", t(1), Transition::Typed, None, 1)
            .unwrap();
        db.set_title("http://se/?q=rosebud", "rosebud - Search")
            .unwrap();
        db.record_visit("http://films/kane", t(2), Transition::Link, Some(1), 1)
            .unwrap();
        db.set_title("http://films/kane", "Citizen Kane (1941)")
            .unwrap();

        // Textual search finds the search page (term in URL+title)...
        let hits = db.history_search("rosebud");
        assert_eq!(hits.len(), 1);
        assert_eq!(db.url_of(hits[0].0).unwrap(), "http://se/?q=rosebud");
        // ...but NOT Citizen Kane — the §2.1 limitation this baseline
        // exists to demonstrate.
        assert!(db
            .history_search("rosebud")
            .iter()
            .all(|(id, _)| db.url_of(*id).unwrap() != "http://films/kane"));
        assert_eq!(db.history_search("kane")[0].0, 2);
        assert!(db.history_search("absent").is_empty());
    }

    #[test]
    fn multiword_search_requires_all_words() {
        let mut db = PlacesDb::new();
        db.record_visit("http://wine.example/napa", t(1), Transition::Link, None, 1)
            .unwrap();
        db.set_title("http://wine.example/napa", "Napa wine tours")
            .unwrap();
        assert_eq!(db.history_search("wine napa").len(), 1);
        assert!(db.history_search("wine bordeaux").is_empty());
    }

    #[test]
    fn frecency_ranks_typed_over_embed() {
        let mut db = PlacesDb::new();
        db.record_visit("http://typed/", t(1), Transition::Typed, None, 1)
            .unwrap();
        db.record_visit("http://embed/", t(2), Transition::Embed, None, 1)
            .unwrap();
        db.set_title("http://typed/", "shared word").unwrap();
        db.set_title("http://embed/", "shared word").unwrap();
        let hits = db.history_search("shared");
        assert_eq!(db.url_of(hits[0].0).unwrap(), "http://typed/");
    }

    #[test]
    fn bookmarks_and_annos() {
        let mut db = PlacesDb::new();
        db.record_visit("http://wiki/", t(1), Transition::Typed, None, 1)
            .unwrap();
        db.add_bookmark("http://wiki/", "Wiki", t(2)).unwrap();
        assert_eq!(db.bookmarks().len(), 1);
        db.record_download("http://host/f.zip", "/tmp/f.zip", t(3))
            .unwrap();
        assert_eq!(db.annos().len(), 1);
        // The download's place row exists even if never visited.
        assert_eq!(db.places().len(), 2);
    }

    #[test]
    fn input_history_counts_uses() {
        let mut db = PlacesDb::new();
        db.record_input("http://wiki/", "wik").unwrap();
        db.record_input("http://wiki/", "wik").unwrap();
        db.record_input("http://wiki/", "wiki f").unwrap();
        assert_eq!(db.input_history().len(), 2);
        let ids = db
            .input_history()
            .lookup("place_id", &Value::Int(1))
            .unwrap();
        let counts: Vec<i64> = ids
            .iter()
            .map(|&id| {
                db.input_history()
                    .cell(id, "use_count")
                    .unwrap()
                    .as_int()
                    .unwrap()
            })
            .collect();
        assert!(counts.contains(&2));
        assert!(counts.contains(&1));
    }

    #[test]
    fn autocomplete_prefers_adaptive_matches() {
        let mut db = PlacesDb::new();
        // A heavily visited page never typed...
        for i in 0..10 {
            db.record_visit(
                "http://popular.example/wiki",
                t(i),
                Transition::Link,
                None,
                1,
            )
            .unwrap();
        }
        db.set_title("http://popular.example/wiki", "wiki popular")
            .unwrap();
        // ...and a rarely visited page the user reaches by typing "wik".
        db.record_visit(
            "http://typed.example/wiki",
            t(20),
            Transition::Typed,
            None,
            1,
        )
        .unwrap();
        db.set_title("http://typed.example/wiki", "wiki typed")
            .unwrap();
        db.record_input("http://typed.example/wiki", "wik").unwrap();
        db.record_input("http://typed.example/wiki", "wik").unwrap();

        let suggestions = db.autocomplete("wik", 5);
        assert_eq!(suggestions.len(), 2);
        assert_eq!(
            suggestions[0].1, "http://typed.example/wiki",
            "adaptive input history wins over raw frecency"
        );
        assert_eq!(suggestions[1].1, "http://popular.example/wiki");
        // Longer prefixes still match the recorded input.
        assert!(db
            .autocomplete("wi", 5)
            .iter()
            .any(|(_, u)| u.contains("typed")));
        // Unmatched prefixes fall back to frecency-only (or nothing).
        assert!(db.autocomplete("zzz", 5).is_empty());
        assert!(db.autocomplete("", 5).is_empty());
    }

    #[test]
    fn autocomplete_respects_k() {
        let mut db = PlacesDb::new();
        for i in 0..10 {
            db.record_visit(
                &format!("http://site{i}.example/wiki"),
                t(i),
                Transition::Link,
                None,
                1,
            )
            .unwrap();
        }
        assert_eq!(db.autocomplete("wiki", 3).len(), 3);
    }

    #[test]
    fn encoded_size_accumulates_across_tables() {
        let mut db = PlacesDb::new();
        assert_eq!(db.encoded_size(), 0);
        db.record_visit("http://a/", t(1), Transition::Link, None, 1)
            .unwrap();
        let after_visit = db.encoded_size();
        assert!(after_visit > 0);
        db.add_bookmark("http://a/", "A", t(2)).unwrap();
        assert!(db.encoded_size() > after_visit);
    }
}
