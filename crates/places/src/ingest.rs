//! Ingesting the browser event stream the way Firefox 3 would.
//!
//! The E1 comparison requires both stores to see the *same* history. This
//! module consumes the identical [`BrowserEvent`] stream `bp-core` captures
//! from, but records only what Places records (§3): visits with transition
//! types and referrer chains, titles, bookmarks, location-bar inputs, and
//! download annotations. Search terms, form relationships, tab/overlap
//! structure, and close times are dropped — they are exactly the metadata
//! the paper argues browsers should keep.

use crate::db::{PlacesDb, Transition};
use crate::table::{RowId, TableError};
use bp_core::{BrowserEvent, EventKind, NavigationCause, TabId};
use std::collections::HashMap;

/// Feeds browser events into a [`PlacesDb`].
#[derive(Debug, Default)]
pub struct PlacesIngester {
    /// Last visit rowid per tab — the referrer (`from_visit`) source.
    last_visit: HashMap<TabId, RowId>,
    /// Current URL per tab (for bookmark/download attribution).
    current_url: HashMap<TabId, String>,
    /// Session counter: Places groups visits into sessions.
    session: i64,
}

impl PlacesIngester {
    /// Creates an ingester.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one event. Events Places does not model (tab open/close)
    /// update only the ingester's in-memory tab tracking.
    ///
    /// # Errors
    ///
    /// Propagates [`TableError`]s from the underlying tables.
    pub fn ingest(&mut self, db: &mut PlacesDb, event: &BrowserEvent) -> Result<(), TableError> {
        match &event.kind {
            EventKind::TabOpened { tab, .. } => {
                // A new tab starts a new visit session.
                self.session += 1;
                self.last_visit.remove(tab);
                self.current_url.remove(tab);
                Ok(())
            }
            EventKind::TabClosed { tab } => {
                // Places records no close event (§3.2).
                self.last_visit.remove(tab);
                self.current_url.remove(tab);
                Ok(())
            }
            EventKind::Navigate {
                tab,
                url,
                title,
                cause,
            } => {
                let (transition, from) = match cause {
                    NavigationCause::Link => (Transition::Link, self.last_visit.get(tab)),
                    // Typed navigations record no referrer — §3.2's
                    // "sparsely connected metadata" irony — but they do
                    // train the autocomplete input history.
                    NavigationCause::Typed => (Transition::Typed, None),
                    NavigationCause::Bookmark { .. } => (Transition::Bookmark, None),
                    NavigationCause::Redirect { status } => (
                        if *status == 301 {
                            Transition::RedirectPermanent
                        } else {
                            Transition::RedirectTemporary
                        },
                        self.last_visit.get(tab),
                    ),
                    // A search is just a link-ish navigation to Places;
                    // the query string is not captured (§3.3).
                    NavigationCause::SearchQuery { .. } => (Transition::Link, None),
                    NavigationCause::FormSubmit { .. } => {
                        (Transition::Link, self.last_visit.get(tab))
                    }
                    NavigationCause::BackForward => (Transition::Link, None),
                    NavigationCause::Reload => (Transition::Reload, self.last_visit.get(tab)),
                };
                let visit =
                    db.record_visit(url, event.at, transition, from.copied(), self.session)?;
                if let Some(t) = title {
                    db.set_title(url, t)?;
                }
                if matches!(cause, NavigationCause::Typed) {
                    // Approximate the typed prefix with the URL's head.
                    let input: String = url
                        .trim_start_matches("http://")
                        .trim_start_matches("https://")
                        .chars()
                        .take(6)
                        .collect();
                    db.record_input(url, &input)?;
                }
                self.last_visit.insert(*tab, visit);
                self.current_url.insert(*tab, url.clone());
                Ok(())
            }
            EventKind::EmbedLoad { tab, url } => {
                let from = self.last_visit.get(tab).copied();
                db.record_visit(url, event.at, Transition::Embed, from, self.session)?;
                Ok(())
            }
            EventKind::BookmarkAdd { tab, name } => {
                if let Some(url) = self.current_url.get(tab) {
                    let url = url.clone();
                    db.add_bookmark(&url, name, event.at)?;
                }
                Ok(())
            }
            EventKind::Download { tab, path, .. } => {
                if let Some(url) = self.current_url.get(tab) {
                    let url = url.clone();
                    db.record_download(&url, path, event.at)?;
                    db.record_visit(
                        &url,
                        event.at,
                        Transition::Download,
                        self.last_visit.get(tab).copied(),
                        self.session,
                    )?;
                }
                Ok(())
            }
        }
    }

    /// Applies a whole event stream.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first failure.
    pub fn ingest_all<'a>(
        &mut self,
        db: &mut PlacesDb,
        events: impl IntoIterator<Item = &'a BrowserEvent>,
    ) -> Result<usize, TableError> {
        let mut n = 0;
        for event in events {
            self.ingest(db, event)?;
            n += 1;
        }
        bp_obs::Obs::global()
            .gauge("places.rows")
            .set(db.row_count() as i64);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_graph::Timestamp;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn stream() -> Vec<BrowserEvent> {
        vec![
            BrowserEvent::tab_opened(t(0), TabId(0), None),
            BrowserEvent::navigate(
                t(1),
                TabId(0),
                "http://se/?q=rosebud",
                Some("rosebud - Search"),
                NavigationCause::SearchQuery {
                    query: "rosebud".to_owned(),
                },
            ),
            BrowserEvent::navigate(
                t(2),
                TabId(0),
                "http://films/kane",
                Some("Citizen Kane"),
                NavigationCause::Link,
            ),
            BrowserEvent::new(
                t(3),
                EventKind::BookmarkAdd {
                    tab: TabId(0),
                    name: "Kane".to_owned(),
                },
            ),
            BrowserEvent::new(
                t(4),
                EventKind::Download {
                    tab: TabId(0),
                    path: "/tmp/kane.jpg".to_owned(),
                    bytes: 100,
                },
            ),
            BrowserEvent::tab_closed(t(5), TabId(0)),
        ]
    }

    #[test]
    fn full_stream_populates_tables() {
        let mut db = PlacesDb::new();
        let mut ing = PlacesIngester::new();
        assert_eq!(ing.ingest_all(&mut db, &stream()).unwrap(), 6);
        assert_eq!(db.places().len(), 2);
        // search visit + kane visit + download visit
        assert_eq!(db.visits().len(), 3);
        assert_eq!(db.bookmarks().len(), 1);
        assert_eq!(db.annos().len(), 1);
    }

    #[test]
    fn link_visits_chain_referrers() {
        let mut db = PlacesDb::new();
        let mut ing = PlacesIngester::new();
        ing.ingest_all(&mut db, &stream()).unwrap();
        // kane visit's from_visit is the search visit.
        let kane_visit = 2;
        assert_eq!(
            db.visits().cell(kane_visit, "from_visit").unwrap().as_int(),
            Some(1)
        );
    }

    #[test]
    fn search_terms_are_not_captured() {
        // The defining gap (§3.3): Places has no record of "rosebud" as an
        // object — only as a substring of the results page URL.
        let mut db = PlacesDb::new();
        let mut ing = PlacesIngester::new();
        ing.ingest_all(&mut db, &stream()).unwrap();
        let hits = db.history_search("rosebud");
        assert_eq!(hits.len(), 1, "only the results page matches textually");
        assert_eq!(db.url_of(hits[0].0).unwrap(), "http://se/?q=rosebud");
    }

    #[test]
    fn typed_navigations_have_no_referrer_but_train_autocomplete() {
        let mut db = PlacesDb::new();
        let mut ing = PlacesIngester::new();
        let events = vec![
            BrowserEvent::tab_opened(t(0), TabId(0), None),
            BrowserEvent::navigate(t(1), TabId(0), "http://a/", None, NavigationCause::Link),
            BrowserEvent::navigate(t(2), TabId(0), "http://b/", None, NavigationCause::Typed),
        ];
        ing.ingest_all(&mut db, &events).unwrap();
        let typed_visit = 2;
        assert_eq!(
            db.visits()
                .cell(typed_visit, "from_visit")
                .unwrap()
                .as_int(),
            Some(0),
            "typed navigation drops the relationship (§3.2)"
        );
        assert_eq!(db.input_history().len(), 1);
    }

    #[test]
    fn tab_events_only_affect_session_tracking() {
        let mut db = PlacesDb::new();
        let mut ing = PlacesIngester::new();
        ing.ingest(&mut db, &BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        ing.ingest(&mut db, &BrowserEvent::tab_closed(t(1), TabId(0)))
            .unwrap();
        assert_eq!(db.encoded_size(), 0, "no rows from tab events");
    }

    #[test]
    fn downloads_without_a_page_are_dropped() {
        let mut db = PlacesDb::new();
        let mut ing = PlacesIngester::new();
        ing.ingest(&mut db, &BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        ing.ingest(
            &mut db,
            &BrowserEvent::new(
                t(1),
                EventKind::Download {
                    tab: TabId(0),
                    path: "/tmp/x".to_owned(),
                    bytes: 1,
                },
            ),
        )
        .unwrap();
        assert_eq!(db.annos().len(), 0);
    }

    #[test]
    fn sessions_increment_per_tab_open() {
        let mut db = PlacesDb::new();
        let mut ing = PlacesIngester::new();
        ing.ingest(&mut db, &BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        ing.ingest(
            &mut db,
            &BrowserEvent::navigate(t(1), TabId(0), "http://a/", None, NavigationCause::Link),
        )
        .unwrap();
        ing.ingest(&mut db, &BrowserEvent::tab_opened(t(2), TabId(1), None))
            .unwrap();
        ing.ingest(
            &mut db,
            &BrowserEvent::navigate(t(3), TabId(1), "http://b/", None, NavigationCause::Link),
        )
        .unwrap();
        assert_eq!(db.visits().cell(1, "session").unwrap().as_int(), Some(1));
        assert_eq!(db.visits().cell(2, "session").unwrap().as_int(), Some(2));
    }
}
