//! Column values for the mini relational engine.
//!
//! Modeled on SQLite's storage classes (the paper's prototype and Firefox
//! Places both sit on SQLite): NULL, INTEGER, REAL, TEXT, BLOB. Encoded
//! sizes follow SQLite's serial-type rules closely enough for the E1
//! storage accounting to be honest.

use core::fmt;

/// One column value.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes.
    Blob(Vec<u8>),
}

impl Value {
    /// Encoded payload size in bytes, following SQLite's serial types:
    /// integers use the smallest of 0/1/2/3/4/6/8 bytes, NULL is free,
    /// text/blob cost their length.
    pub fn encoded_size(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Int(i) => int_size(*i),
            Value::Real(_) => 8,
            Value::Text(s) => s.len(),
            Value::Blob(b) => b.len(),
        }
    }

    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text payload, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

fn int_size(i: i64) -> usize {
    // SQLite serial types 0..6: 0, 1, 2, 3, 4, 6, 8 bytes.
    if i == 0 {
        0 // serial type 8/9 encode 0 and 1 in the header, but keep 0 cost
    } else if (-128..128).contains(&i) {
        1
    } else if (-32_768..32_768).contains(&i) {
        2
    } else if (-8_388_608..8_388_608).contains(&i) {
        3
    } else if (-2_147_483_648..2_147_483_648).contains(&i) {
        4
    } else if (-140_737_488_355_328..140_737_488_355_328).contains(&i) {
        6
    } else {
        8
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Blob(b) => write!(f, "x'{}'", b.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}
impl From<Option<String>> for Value {
    fn from(s: Option<String>) -> Self {
        s.map_or(Value::Null, Value::Text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_sizes_follow_sqlite_tiers() {
        assert_eq!(Value::Int(0).encoded_size(), 0);
        assert_eq!(Value::Int(1).encoded_size(), 1);
        assert_eq!(Value::Int(-128).encoded_size(), 1);
        assert_eq!(Value::Int(128).encoded_size(), 2);
        assert_eq!(Value::Int(40_000).encoded_size(), 3);
        assert_eq!(Value::Int(10_000_000).encoded_size(), 4);
        assert_eq!(Value::Int(1_000_000_000_000).encoded_size(), 6);
        assert_eq!(Value::Int(i64::MAX).encoded_size(), 8);
    }

    #[test]
    fn other_sizes() {
        assert_eq!(Value::Null.encoded_size(), 0);
        assert_eq!(Value::Real(1.5).encoded_size(), 8);
        assert_eq!(Value::Text("abc".into()).encoded_size(), 3);
        assert_eq!(Value::Blob(vec![0; 5]).encoded_size(), 5);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Text("x".into()).as_int(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("a"), Value::Text("a".into()));
        assert_eq!(Value::from(None::<String>), Value::Null);
        assert_eq!(Value::from(Some("t".to_owned())), Value::Text("t".into()));
    }

    #[test]
    fn display_nonempty() {
        for v in [
            Value::Null,
            Value::Int(1),
            Value::Real(0.5),
            Value::Text("s".into()),
            Value::Blob(vec![1]),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
