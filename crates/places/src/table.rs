//! A minimal relational table with rowids and secondary indexes.
//!
//! Just enough of a relational engine to host the Firefox Places schema
//! honestly: auto-increment rowids, typed columns, unique and non-unique
//! secondary indexes on text/integer columns, and SQLite-style size
//! accounting (per-row header byte per column + payload + per-row and
//! per-index-entry overhead).

use crate::value::Value;
use std::collections::BTreeMap;

/// Row identifier (SQLite rowid).
pub type RowId = i64;

/// A table column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    name: String,
    indexed: bool,
    unique: bool,
}

impl Column {
    /// A plain column.
    pub fn plain(name: &str) -> Self {
        Column {
            name: name.to_owned(),
            indexed: false,
            unique: false,
        }
    }

    /// A column with a non-unique secondary index.
    pub fn indexed(name: &str) -> Self {
        Column {
            name: name.to_owned(),
            indexed: true,
            unique: false,
        }
    }

    /// A column with a unique index.
    pub fn unique(name: &str) -> Self {
        Column {
            name: name.to_owned(),
            indexed: true,
            unique: true,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Index key: normalized projection of a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Key {
    Null,
    Int(i64),
    Text(String),
}

fn key_of(v: &Value) -> Key {
    match v {
        Value::Null => Key::Null,
        Value::Int(i) => Key::Int(*i),
        Value::Real(r) => Key::Int(r.to_bits() as i64),
        Value::Text(s) => Key::Text(s.clone()),
        Value::Blob(b) => Key::Text(format!("{b:?}")),
    }
}

/// Errors from table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Row arity didn't match the schema.
    Arity {
        /// Columns the schema defines.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A unique index rejected a duplicate key.
    UniqueViolation {
        /// The column whose index rejected the insert.
        column: String,
    },
    /// No row with the given id.
    NoSuchRow(RowId),
    /// No column with the given name.
    NoSuchColumn(String),
}

impl core::fmt::Display for TableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TableError::Arity { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            TableError::UniqueViolation { column } => {
                write!(f, "unique constraint violated on column {column}")
            }
            TableError::NoSuchRow(id) => write!(f, "no row {id}"),
            TableError::NoSuchColumn(name) => write!(f, "no column {name}"),
        }
    }
}

impl std::error::Error for TableError {}

/// A table: rows keyed by rowid, plus secondary indexes.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    rows: BTreeMap<RowId, Vec<Value>>,
    next_rowid: RowId,
    /// column index → (key → rowids)
    indexes: BTreeMap<usize, BTreeMap<Key, Vec<RowId>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, columns: Vec<Column>) -> Self {
        let indexes = columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.indexed)
            .map(|(i, _)| (i, BTreeMap::new()))
            .collect();
        Table {
            name: name.to_owned(),
            columns,
            rows: BTreeMap::new(),
            next_rowid: 1,
            indexes,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_index(&self, column: &str) -> Result<usize, TableError> {
        self.columns
            .iter()
            .position(|c| c.name == column)
            .ok_or_else(|| TableError::NoSuchColumn(column.to_owned()))
    }

    /// Inserts a row, returning its rowid.
    ///
    /// # Errors
    ///
    /// [`TableError::Arity`] on wrong column count,
    /// [`TableError::UniqueViolation`] if a unique index rejects the row.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId, TableError> {
        if values.len() != self.columns.len() {
            return Err(TableError::Arity {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        // Check unique constraints first (no partial insert).
        for (&col, index) in &self.indexes {
            if self.columns[col].unique && !values[col].is_null() {
                let key = key_of(&values[col]);
                if index.get(&key).is_some_and(|ids| !ids.is_empty()) {
                    return Err(TableError::UniqueViolation {
                        column: self.columns[col].name.clone(),
                    });
                }
            }
        }
        let rowid = self.next_rowid;
        self.next_rowid += 1;
        for (&col, index) in self.indexes.iter_mut() {
            index.entry(key_of(&values[col])).or_default().push(rowid);
        }
        self.rows.insert(rowid, values);
        Ok(rowid)
    }

    /// Fetches a row by id.
    ///
    /// # Errors
    ///
    /// [`TableError::NoSuchRow`] if absent.
    pub fn get(&self, rowid: RowId) -> Result<&[Value], TableError> {
        self.rows
            .get(&rowid)
            .map(Vec::as_slice)
            .ok_or(TableError::NoSuchRow(rowid))
    }

    /// Reads one cell.
    ///
    /// # Errors
    ///
    /// [`TableError::NoSuchRow`] / [`TableError::NoSuchColumn`].
    pub fn cell(&self, rowid: RowId, column: &str) -> Result<&Value, TableError> {
        let col = self.column_index(column)?;
        Ok(&self.get(rowid)?[col])
    }

    /// Updates one cell, maintaining indexes.
    ///
    /// # Errors
    ///
    /// [`TableError::NoSuchRow`] / [`TableError::NoSuchColumn`], or
    /// [`TableError::UniqueViolation`] if the new value collides.
    pub fn update(&mut self, rowid: RowId, column: &str, value: Value) -> Result<(), TableError> {
        let col = self.column_index(column)?;
        if !self.rows.contains_key(&rowid) {
            return Err(TableError::NoSuchRow(rowid));
        }
        if let Some(index) = self.indexes.get(&col) {
            if self.columns[col].unique && !value.is_null() {
                let key = key_of(&value);
                if index
                    .get(&key)
                    .is_some_and(|ids| ids.iter().any(|&id| id != rowid))
                {
                    return Err(TableError::UniqueViolation {
                        column: self.columns[col].name.clone(),
                    });
                }
            }
        }
        let Some(row) = self.rows.get_mut(&rowid) else {
            return Err(TableError::NoSuchRow(rowid));
        };
        let old_key = key_of(&row[col]);
        let new_key = key_of(&value);
        row[col] = value;
        if let Some(index) = self.indexes.get_mut(&col) {
            if let Some(ids) = index.get_mut(&old_key) {
                ids.retain(|&id| id != rowid);
            }
            index.entry(new_key).or_default().push(rowid);
        }
        Ok(())
    }

    /// Looks up rowids by an indexed column's exact value.
    ///
    /// # Errors
    ///
    /// [`TableError::NoSuchColumn`] if the column is missing or unindexed.
    pub fn lookup(&self, column: &str, value: &Value) -> Result<&[RowId], TableError> {
        let col = self.column_index(column)?;
        let index = self
            .indexes
            .get(&col)
            .ok_or_else(|| TableError::NoSuchColumn(format!("{column} (unindexed)")))?;
        Ok(index.get(&key_of(value)).map_or(&[], Vec::as_slice))
    }

    /// Full scan with a predicate; returns matching rowids in id order.
    pub fn scan(&self, mut pred: impl FnMut(RowId, &[Value]) -> bool) -> Vec<RowId> {
        self.rows
            .iter()
            .filter(|(id, row)| pred(**id, row))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Iterates `(rowid, row)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows.iter().map(|(id, row)| (*id, row.as_slice()))
    }

    /// SQLite-flavoured on-disk size estimate: per row, 2 bytes record
    /// overhead + 1 header byte per column + payloads + rowid varint;
    /// per index entry, key payload + rowid.
    pub fn encoded_size(&self) -> usize {
        let mut total = 0usize;
        for row in self.rows.values() {
            total += 2 + row.len(); // record + header bytes
            total += 3; // rowid (histories exceed 2-byte ids quickly)
            total += row.iter().map(Value::encoded_size).sum::<usize>();
        }
        for (&col, index) in &self.indexes {
            let _ = col;
            for (key, ids) in index {
                let key_size = match key {
                    Key::Null => 0,
                    Key::Int(_) => 4,
                    Key::Text(s) => s.len(),
                };
                total += ids.len() * (key_size + 3 + 2);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        Table::new(
            "people",
            vec![
                Column::unique("name"),
                Column::indexed("city"),
                Column::plain("age"),
            ],
        )
    }

    #[test]
    fn insert_and_get() {
        let mut t = people();
        let id = t
            .insert(vec!["ada".into(), "london".into(), Value::Int(36)])
            .unwrap();
        assert_eq!(id, 1);
        assert_eq!(t.get(id).unwrap()[0], Value::Text("ada".into()));
        assert_eq!(t.cell(id, "age").unwrap().as_int(), Some(36));
        assert_eq!(t.len(), 1);
        assert!(t.get(99).is_err());
        assert!(t.cell(1, "nope").is_err());
    }

    #[test]
    fn arity_checked() {
        let mut t = people();
        assert_eq!(
            t.insert(vec!["ada".into()]),
            Err(TableError::Arity {
                expected: 3,
                got: 1
            })
        );
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut t = people();
        t.insert(vec!["ada".into(), "london".into(), Value::Int(36)])
            .unwrap();
        let err = t
            .insert(vec!["ada".into(), "paris".into(), Value::Int(20)])
            .unwrap_err();
        assert_eq!(
            err,
            TableError::UniqueViolation {
                column: "name".into()
            }
        );
        assert_eq!(t.len(), 1, "no partial insert");
    }

    #[test]
    fn nulls_bypass_unique() {
        let mut t = people();
        t.insert(vec![Value::Null, "x".into(), Value::Int(1)])
            .unwrap();
        t.insert(vec![Value::Null, "x".into(), Value::Int(2)])
            .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn non_unique_index_accumulates() {
        let mut t = people();
        t.insert(vec!["ada".into(), "london".into(), Value::Int(36)])
            .unwrap();
        t.insert(vec!["alan".into(), "london".into(), Value::Int(41)])
            .unwrap();
        assert_eq!(t.lookup("city", &"london".into()).unwrap().len(), 2);
        assert!(t.lookup("city", &"tokyo".into()).unwrap().is_empty());
        assert!(t.lookup("age", &Value::Int(36)).is_err(), "unindexed");
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = people();
        let id = t
            .insert(vec!["ada".into(), "london".into(), Value::Int(36)])
            .unwrap();
        t.update(id, "city", "paris".into()).unwrap();
        assert!(t.lookup("city", &"london".into()).unwrap().is_empty());
        assert_eq!(t.lookup("city", &"paris".into()).unwrap(), &[id]);
        // Unique collision on update.
        let id2 = t
            .insert(vec!["alan".into(), "york".into(), Value::Int(41)])
            .unwrap();
        assert!(t.update(id2, "name", "ada".into()).is_err());
        // Self-update is fine.
        t.update(id, "name", "ada".into()).unwrap();
        assert!(t.update(99, "city", "x".into()).is_err());
    }

    #[test]
    fn scan_and_iter() {
        let mut t = people();
        t.insert(vec!["a".into(), "x".into(), Value::Int(10)])
            .unwrap();
        t.insert(vec!["b".into(), "y".into(), Value::Int(20)])
            .unwrap();
        t.insert(vec!["c".into(), "z".into(), Value::Int(30)])
            .unwrap();
        let old = t.scan(|_, row| row[2].as_int().unwrap_or(0) >= 20);
        assert_eq!(old, vec![2, 3]);
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    fn rowids_are_sequential_and_never_reused() {
        let mut t = people();
        let a = t
            .insert(vec!["a".into(), "x".into(), Value::Int(1)])
            .unwrap();
        let b = t
            .insert(vec!["b".into(), "x".into(), Value::Int(2)])
            .unwrap();
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn encoded_size_grows_with_data() {
        let mut t = people();
        let empty = t.encoded_size();
        assert_eq!(empty, 0);
        t.insert(vec!["ada".into(), "london".into(), Value::Int(36)])
            .unwrap();
        let one = t.encoded_size();
        assert!(one > 0);
        t.insert(vec!["alan".into(), "york".into(), Value::Int(41)])
            .unwrap();
        assert!(t.encoded_size() > one);
    }
}
