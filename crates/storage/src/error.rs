//! Error type for the provenance store.

use core::fmt;

/// Result alias used throughout `bp-storage`.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors returned by storage operations.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// Data failed validation during decode (bad CRC, truncated frame,
    /// malformed record).
    Corrupt {
        /// Byte offset at which the corruption was detected.
        offset: u64,
        /// Human-readable description of what failed.
        reason: String,
    },
    /// A record referenced a string id the interner has not defined —
    /// indicates a logic error or out-of-order log.
    UnknownStringId(u32),
    /// A record was rejected by the graph layer during replay (for
    /// example, an edge whose insertion would now cycle). A committed log
    /// can only contain operations that were legal when appended, so this
    /// indicates corruption or version skew.
    Replay(String),
    /// A WAL payload exceeded the maximum frame size. Writing it anyway
    /// would either truncate the length field or produce a frame recovery
    /// treats as a torn tail — losing every frame after it — so the append
    /// is rejected up front.
    FrameTooLarge {
        /// The oversized payload's length in bytes.
        len: u64,
        /// The maximum payload size a frame may carry.
        max: u32,
    },
}

impl StorageError {
    /// Convenience constructor for corruption errors.
    pub fn corrupt(offset: u64, reason: impl Into<String>) -> Self {
        StorageError::Corrupt {
            offset,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Corrupt { offset, reason } => {
                write!(f, "corrupt data at offset {offset}: {reason}")
            }
            StorageError::UnknownStringId(id) => {
                write!(f, "unknown interned string id {id}")
            }
            StorageError::Replay(msg) => write!(f, "replay rejected: {msg}"),
            StorageError::FrameTooLarge { len, max } => {
                write!(f, "wal payload of {len} bytes exceeds max frame size {max}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let c = StorageError::corrupt(42, "bad crc");
        assert_eq!(c.to_string(), "corrupt data at offset 42: bad crc");
        assert!(StorageError::UnknownStringId(7).to_string().contains('7'));
        assert!(StorageError::Replay("cycle".into())
            .to_string()
            .contains("cycle"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err = StorageError::from(io);
        assert!(err.to_string().contains("gone"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<StorageError>();
    }
}
