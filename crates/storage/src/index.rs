//! Secondary indexes: key → nodes and time-interval overlap.
//!
//! §3.4's vision demands that "relationships, paths, and neighborhoods …
//! be queried with the same power as node objects"; practically, the query
//! layer needs two entry points the raw graph lacks: find nodes by URL /
//! key ([`KeyIndex`]), and find nodes whose open interval overlaps a time
//! range ([`TimeIndex`], the substrate of time-contextual search, §2.3).

use bp_graph::{NodeId, TimeInterval, Timestamp};
use std::collections::HashMap;

/// Maps a node's primary key (URL, query string, path) to every node
/// carrying it — all visit versions of a page share a key.
///
/// # Examples
///
/// ```
/// use bp_storage::KeyIndex;
/// use bp_graph::NodeId;
/// let mut idx = KeyIndex::new();
/// idx.insert("http://a/", NodeId::new(0));
/// idx.insert("http://a/", NodeId::new(3));
/// assert_eq!(idx.get("http://a/"), &[NodeId::new(0), NodeId::new(3)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyIndex {
    map: HashMap<String, Vec<NodeId>>,
}

impl KeyIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` carries `key`. Nodes arrive in id order, so
    /// each key's list stays sorted without explicit sorting.
    pub fn insert(&mut self, key: &str, node: NodeId) {
        self.map.entry(key.to_owned()).or_default().push(node);
    }

    /// All nodes carrying `key`, in insertion (time) order.
    pub fn get(&self, key: &str) -> &[NodeId] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Removes the whole entry for `key`, returning the nodes that
    /// carried it (used by redaction).
    pub fn remove_key(&mut self, key: &str) -> Vec<NodeId> {
        self.map.remove(key).unwrap_or_default()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Iterates `(key, nodes)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

const BLOCK: usize = 256;

/// An interval-overlap index over node open/close intervals.
///
/// Entries are kept sorted by opening timestamp (history events arrive
/// nearly in order, so inserts are usually appends). Overlap queries use a
/// binary search on the open bound plus per-block maximum-close summaries
/// to skip blocks that cannot contain overlaps — `O(log n + blocks + k)`.
///
/// # Examples
///
/// ```
/// use bp_storage::TimeIndex;
/// use bp_graph::{NodeId, TimeInterval, Timestamp};
/// let mut idx = TimeIndex::new();
/// idx.insert(NodeId::new(0), TimeInterval::closed(Timestamp::from_secs(0), Timestamp::from_secs(10)));
/// idx.insert(NodeId::new(1), TimeInterval::closed(Timestamp::from_secs(20), Timestamp::from_secs(30)));
/// let hits = idx.overlapping(&TimeInterval::closed(Timestamp::from_secs(5), Timestamp::from_secs(15)));
/// assert_eq!(hits, vec![NodeId::new(0)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeIndex {
    /// (open, close, node), sorted by open then node.
    entries: Vec<(Timestamp, Option<Timestamp>, NodeId)>,
    /// Per-block max close; `None` means the block contains a still-open
    /// interval (max = +infinity).
    block_max_close: Vec<Option<Timestamp>>,
    /// Position of each node's entry, for close-time updates.
    position: HashMap<NodeId, usize>,
}

impl TimeIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `node` with `interval`. Appends are O(1) amortized when
    /// opens arrive in nondecreasing order; out-of-order inserts shift.
    pub fn insert(&mut self, node: NodeId, interval: TimeInterval) {
        let entry = (interval.open(), interval.close(), node);
        let at = if self.entries.last().is_none_or(|last| last.0 <= entry.0) {
            self.entries.push(entry);
            self.entries.len() - 1
        } else {
            let at = self
                .entries
                .partition_point(|e| (e.0, e.2) <= (entry.0, entry.2));
            self.entries.insert(at, entry);
            // Positions after the insertion point shift right.
            for (_, pos) in self.position.iter_mut() {
                if *pos >= at {
                    *pos += 1;
                }
            }
            at
        };
        self.position.insert(node, at);
        self.refresh_blocks_from(at);
    }

    /// Updates the close timestamp of a previously inserted node.
    ///
    /// Unknown nodes are ignored (the caller may index only some kinds).
    pub fn close(&mut self, node: NodeId, at: Timestamp) {
        if let Some(&pos) = self.position.get(&node) {
            self.entries[pos].1 = Some(at);
            self.refresh_block(pos / BLOCK);
        }
    }

    /// All nodes whose interval overlaps `query`, in open-timestamp order.
    pub fn overlapping(&self, query: &TimeInterval) -> Vec<NodeId> {
        let mut out = Vec::new();
        // Entries opening after the query closes can never overlap.
        let end = match query.close() {
            Some(c) => self.entries.partition_point(|e| e.0 <= c),
            None => self.entries.len(),
        };
        let q_open = query.open();
        let full_blocks = end / BLOCK;
        for block in 0..=full_blocks {
            let start = block * BLOCK;
            if start >= end {
                break;
            }
            // Skip blocks whose intervals all close before the query opens.
            if let Some(Some(max_close)) = self.block_max_close.get(block) {
                if *max_close < q_open {
                    continue;
                }
            }
            let stop = ((block + 1) * BLOCK).min(end);
            for &(open, close, node) in &self.entries[start..stop] {
                let iv = match close {
                    Some(c) => TimeInterval::closed(open, c),
                    None => TimeInterval::open_at(open),
                };
                if iv.overlaps(query) {
                    out.push(node);
                }
            }
        }
        out
    }

    /// All nodes whose interval overlaps `query` excluding `exclude`
    /// (callers pass the anchor node itself).
    pub fn overlapping_except(&self, query: &TimeInterval, exclude: NodeId) -> Vec<NodeId> {
        let mut v = self.overlapping(query);
        v.retain(|&n| n != exclude);
        v
    }

    fn refresh_blocks_from(&mut self, pos: usize) {
        let first_block = pos / BLOCK;
        let last_block = (self.entries.len().saturating_sub(1)) / BLOCK;
        for b in first_block..=last_block {
            self.refresh_block(b);
        }
    }

    fn refresh_block(&mut self, block: usize) {
        let start = block * BLOCK;
        let stop = ((block + 1) * BLOCK).min(self.entries.len());
        if start >= stop {
            return;
        }
        let mut max: Option<Timestamp> = Some(Timestamp::from_micros(i64::MIN));
        for &(_, close, _) in &self.entries[start..stop] {
            match (max, close) {
                (Some(m), Some(c)) if c > m => max = Some(c),
                (_, None) => {
                    max = None; // still-open interval: +infinity
                    break;
                }
                _ => {}
            }
        }
        if self.block_max_close.len() <= block {
            self.block_max_close.resize(block + 1, None);
        }
        self.block_max_close[block] = max;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn secs(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn closed(a: i64, b: i64) -> TimeInterval {
        TimeInterval::closed(secs(a), secs(b))
    }

    #[test]
    fn key_index_basics() {
        let mut idx = KeyIndex::new();
        idx.insert("a", NodeId::new(0));
        idx.insert("b", NodeId::new(1));
        idx.insert("a", NodeId::new(2));
        assert_eq!(idx.get("a"), &[NodeId::new(0), NodeId::new(2)]);
        assert_eq!(idx.get("b"), &[NodeId::new(1)]);
        assert!(idx.get("missing").is_empty());
        assert_eq!(idx.key_count(), 2);
        assert_eq!(idx.iter().count(), 2);
    }

    #[test]
    fn time_index_overlap_basics() {
        let mut idx = TimeIndex::new();
        idx.insert(NodeId::new(0), closed(0, 10));
        idx.insert(NodeId::new(1), closed(5, 15));
        idx.insert(NodeId::new(2), closed(20, 30));
        assert_eq!(
            idx.overlapping(&closed(8, 12)),
            vec![NodeId::new(0), NodeId::new(1)]
        );
        assert_eq!(idx.overlapping(&closed(16, 19)), vec![]);
        assert_eq!(idx.overlapping(&closed(25, 26)), vec![NodeId::new(2)]);
    }

    #[test]
    fn open_intervals_always_overlap_later_queries() {
        let mut idx = TimeIndex::new();
        idx.insert(NodeId::new(0), TimeInterval::open_at(secs(0)));
        assert_eq!(idx.overlapping(&closed(1_000, 2_000)), vec![NodeId::new(0)]);
    }

    #[test]
    fn close_updates_future_queries() {
        let mut idx = TimeIndex::new();
        idx.insert(NodeId::new(0), TimeInterval::open_at(secs(0)));
        idx.close(NodeId::new(0), secs(10));
        assert!(idx.overlapping(&closed(20, 30)).is_empty());
        assert_eq!(idx.overlapping(&closed(5, 8)), vec![NodeId::new(0)]);
        // Closing an unknown node is a no-op.
        idx.close(NodeId::new(99), secs(1));
    }

    #[test]
    fn overlapping_except_removes_anchor() {
        let mut idx = TimeIndex::new();
        idx.insert(NodeId::new(0), closed(0, 10));
        idx.insert(NodeId::new(1), closed(5, 15));
        assert_eq!(
            idx.overlapping_except(&closed(0, 20), NodeId::new(0)),
            vec![NodeId::new(1)]
        );
    }

    #[test]
    fn out_of_order_inserts_stay_sorted() {
        let mut idx = TimeIndex::new();
        idx.insert(NodeId::new(0), closed(100, 110));
        idx.insert(NodeId::new(1), closed(50, 60)); // earlier open
        idx.insert(NodeId::new(2), closed(75, 80));
        assert_eq!(
            idx.overlapping(&closed(0, 200)),
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(0)]
        );
        // Close still lands on the right entry after shifting.
        idx.close(NodeId::new(0), secs(105));
        assert!(idx.overlapping(&closed(106, 120)).is_empty());
    }

    #[test]
    fn block_skipping_crosses_block_boundaries() {
        let mut idx = TimeIndex::new();
        // 1000 short intervals, then one long-lived interval.
        for i in 0..1000 {
            idx.insert(NodeId::new(i), closed(i as i64 * 10, i as i64 * 10 + 5));
        }
        idx.insert(NodeId::new(1000), closed(0, 1_000_000));
        let hits = idx.overlapping(&closed(999_000, 999_001));
        assert_eq!(hits, vec![NodeId::new(1000)]);
        assert_eq!(idx.len(), 1001);
        assert!(!idx.is_empty());
    }

    proptest! {
        /// The block-skipping query matches a brute-force scan.
        #[test]
        fn overlap_matches_bruteforce(
            intervals in prop::collection::vec((0i64..500, 0i64..50, any::<bool>()), 1..200),
            q_open in 0i64..600,
            q_len in 0i64..100,
        ) {
            let mut idx = TimeIndex::new();
            let mut raw = Vec::new();
            for (i, &(open, len, still_open)) in intervals.iter().enumerate() {
                let node = NodeId::new(i as u32);
                let iv = if still_open {
                    TimeInterval::open_at(secs(open))
                } else {
                    closed(open, open + len)
                };
                idx.insert(node, iv);
                raw.push((node, iv));
            }
            let query = closed(q_open, q_open + q_len);
            let mut expect: Vec<NodeId> = raw
                .iter()
                .filter(|(_, iv)| iv.overlaps(&query))
                .map(|(n, _)| *n)
                .collect();
            let mut got = idx.overlapping(&query);
            expect.sort();
            got.sort();
            prop_assert_eq!(got, expect);
        }

        /// Random close updates keep results equal to brute force.
        #[test]
        fn closes_match_bruteforce(
            opens in prop::collection::vec(0i64..300, 1..100),
            closes in prop::collection::vec((0usize..100, 0i64..400), 0..50),
            q_open in 0i64..400,
        ) {
            let mut idx = TimeIndex::new();
            let mut raw: Vec<(NodeId, TimeInterval)> = Vec::new();
            for (i, &open) in opens.iter().enumerate() {
                let node = NodeId::new(i as u32);
                let iv = TimeInterval::open_at(secs(open));
                idx.insert(node, iv);
                raw.push((node, iv));
            }
            for &(who, when) in &closes {
                if who < raw.len() {
                    let (node, iv) = raw[who];
                    if when >= iv.open().as_secs() && iv.is_open() {
                        idx.close(node, secs(when));
                        raw[who].1 = TimeInterval::closed(iv.open(), secs(when));
                    }
                }
            }
            let query = closed(q_open, q_open + 50);
            let mut expect: Vec<NodeId> = raw
                .iter()
                .filter(|(_, iv)| iv.overlaps(&query))
                .map(|(n, _)| *n)
                .collect();
            let mut got = idx.overlapping(&query);
            expect.sort();
            got.sort();
            prop_assert_eq!(got, expect);
        }
    }
}
