//! Factorized edge storage (Chapman et al.-style).
//!
//! "Chapman et al. developed general factorization and inheritance-based
//! methods that are almost certainly applicable to browser history" (§3.1).
//! Browser provenance is highly repetitive: nearly every visit carries the
//! same *shape* of out-edges (one `instance_of`, one navigation edge, maybe
//! a `version_of`). This module factors that repetition out:
//!
//! - each node's out-edge **kind signature** (the ordered list of edge
//!   kinds) is stored once in a dictionary and referenced by id;
//! - destination node ids are stored as deltas from the source id (visits
//!   link mostly to recent nodes, so deltas are small varints);
//! - nodes with no out-edges cost one bit of presence information (they are
//!   simply skipped — the node id delta encodes the gap).
//!
//! Factorization covers graph *structure* (src, dst, kind); timestamps and
//! attributes remain in the record log. Ablation **A2** compares this
//! encoding against the raw per-edge triples.

use crate::error::{StorageError, StorageResult};
use crate::varint;
use bp_graph::{EdgeKind, NodeId, ProvenanceGraph};
use std::collections::HashMap;

/// A factorized encoding of a graph's edge structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactorizedEdges {
    bytes: Vec<u8>,
    signature_count: usize,
    edge_count: usize,
}

impl FactorizedEdges {
    /// Encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        self.bytes.len()
    }

    /// Number of distinct kind signatures in the dictionary.
    pub fn signature_count(&self) -> usize {
        self.signature_count
    }

    /// Number of edges encoded.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Raw encoded bytes (for persistence).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reconstructs a value from persisted bytes (as produced by
    /// [`as_bytes`](Self::as_bytes)) plus the edge count recorded alongside
    /// them. The signature dictionary length is read back from the head of
    /// the encoding; full validation happens in [`defactorize`].
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Corrupt`] if the dictionary length prefix is
    /// unreadable.
    pub fn from_bytes(bytes: Vec<u8>, edge_count: usize) -> StorageResult<Self> {
        let mut pos = 0usize;
        let dict_len = varint::read_u64(&bytes, &mut pos)?;
        let signature_count = usize::try_from(dict_len)
            .ok()
            .filter(|&n| n <= bytes.len())
            .ok_or_else(|| StorageError::corrupt(0, "signature dict too large"))?;
        Ok(FactorizedEdges {
            bytes,
            signature_count,
            edge_count,
        })
    }
}

/// Factorizes the edge structure of `graph`.
///
/// Layout:
/// ```text
/// [sig_dict_len][per sig: kind_count, kinds...]
/// [group_count][per group: src_id_delta, sig_id, dst_deltas...]
/// ```
pub fn factorize(graph: &ProvenanceGraph) -> FactorizedEdges {
    // Build the signature dictionary.
    let mut dict: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut dict_order: Vec<Vec<u8>> = Vec::new();
    let mut groups: Vec<(u32, u32, Vec<i64>)> = Vec::new(); // (src, sig, dst deltas)
    let mut edge_count = 0usize;

    for src in graph.node_ids() {
        let out = graph.out_edges(src);
        if out.is_empty() {
            continue;
        }
        let mut kinds = Vec::with_capacity(out.len());
        let mut deltas = Vec::with_capacity(out.len());
        for &eid in out {
            let Ok(e) = graph.edge(eid) else { continue };
            kinds.push(e.kind().code());
            deltas.push(i64::from(src.index()) - i64::from(e.dst().index()));
            edge_count += 1;
        }
        let sig_id = *dict.entry(kinds.clone()).or_insert_with(|| {
            dict_order.push(kinds);
            (dict_order.len() - 1) as u32
        });
        groups.push((src.index(), sig_id, deltas));
    }

    let mut bytes = Vec::new();
    varint::write_u64(&mut bytes, dict_order.len() as u64);
    for sig in &dict_order {
        varint::write_u64(&mut bytes, sig.len() as u64);
        bytes.extend_from_slice(sig);
    }
    varint::write_u64(&mut bytes, groups.len() as u64);
    let mut last_src = 0u32;
    for (src, sig_id, deltas) in &groups {
        varint::write_u64(&mut bytes, u64::from(src - last_src));
        last_src = *src;
        varint::write_u64(&mut bytes, u64::from(*sig_id));
        for &d in deltas {
            varint::write_i64(&mut bytes, d);
        }
    }

    FactorizedEdges {
        bytes,
        signature_count: dict_order.len(),
        edge_count,
    }
}

/// Decodes a factorized structure back into `(src, dst, kind)` triples, in
/// per-source, per-edge order (matching [`ProvenanceGraph::out_edges`]
/// order).
///
/// # Errors
///
/// Returns [`StorageError::Corrupt`] on malformed input.
pub fn defactorize(encoded: &FactorizedEdges) -> StorageResult<Vec<(NodeId, NodeId, EdgeKind)>> {
    let buf = &encoded.bytes;
    let mut pos = 0usize;
    let dict_len = varint::read_u64(buf, &mut pos)? as usize;
    if dict_len > buf.len() {
        return Err(StorageError::corrupt(
            pos as u64,
            "signature dict too large",
        ));
    }
    let mut dict: Vec<Vec<EdgeKind>> = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let n = varint::read_u64(buf, &mut pos)? as usize;
        if pos + n > buf.len() {
            return Err(StorageError::corrupt(pos as u64, "truncated signature"));
        }
        let mut kinds = Vec::with_capacity(n);
        for &code in &buf[pos..pos + n] {
            kinds.push(
                EdgeKind::from_code(code)
                    .ok_or_else(|| StorageError::corrupt(pos as u64, "bad edge kind"))?,
            );
        }
        pos += n;
        dict.push(kinds);
    }
    let group_count = varint::read_u64(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(encoded.edge_count);
    let mut last_src = 0u32;
    for _ in 0..group_count {
        let delta = varint::read_u32(buf, &mut pos)?;
        let src = last_src + delta;
        last_src = src;
        let sig_id = varint::read_u32(buf, &mut pos)? as usize;
        let kinds = dict
            .get(sig_id)
            .ok_or_else(|| StorageError::corrupt(pos as u64, "bad signature id"))?;
        for &kind in kinds {
            let d = varint::read_i64(buf, &mut pos)?;
            let dst = i64::from(src) - d;
            let dst = u32::try_from(dst)
                .map_err(|_| StorageError::corrupt(pos as u64, "dst delta out of range"))?;
            out.push((NodeId::new(src), NodeId::new(dst), kind));
        }
    }
    Ok(out)
}

/// Size in bytes of the *raw* (unfactorized) structure encoding: per edge,
/// varint src + varint dst + kind byte. The A2 baseline.
pub fn raw_structure_size(graph: &ProvenanceGraph) -> usize {
    let mut bytes = Vec::new();
    for (_, e) in graph.edges() {
        varint::write_u64(&mut bytes, u64::from(e.src().index()));
        varint::write_u64(&mut bytes, u64::from(e.dst().index()));
        bytes.push(e.kind().code());
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_graph::{Node, NodeKind, Timestamp};

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// A repetitive history: every visit has instance_of + link, like real
    /// browsing.
    fn repetitive(n: usize) -> ProvenanceGraph {
        let mut g = ProvenanceGraph::new();
        let page = g.add_node(Node::new(NodeKind::Page, "http://hub/", t(0)));
        let mut prev = None;
        for i in 0..n {
            let v = g.add_node(Node::new(
                NodeKind::PageVisit,
                format!("http://p{i}/"),
                t(i as i64 + 1),
            ));
            g.add_edge(v, page, EdgeKind::InstanceOf, t(i as i64 + 1))
                .unwrap();
            if let Some(p) = prev {
                g.add_edge(v, p, EdgeKind::Link, t(i as i64 + 1)).unwrap();
            }
            prev = Some(v);
        }
        g
    }

    fn structure_of(g: &ProvenanceGraph) -> Vec<(NodeId, NodeId, EdgeKind)> {
        let mut out = Vec::new();
        for src in g.node_ids() {
            for &eid in g.out_edges(src) {
                let e = g.edge(eid).unwrap();
                out.push((src, e.dst(), e.kind()));
            }
        }
        out
    }

    #[test]
    fn roundtrip_exact() {
        let g = repetitive(50);
        let fact = factorize(&g);
        let decoded = defactorize(&fact).unwrap();
        assert_eq!(decoded, structure_of(&g));
        assert_eq!(fact.edge_count(), g.edge_count());
    }

    #[test]
    fn factorized_beats_raw_on_repetitive_structure() {
        let g = repetitive(500);
        let fact = factorize(&g);
        let raw = raw_structure_size(&g);
        assert!(
            fact.encoded_size() < raw,
            "factorized {} should beat raw {}",
            fact.encoded_size(),
            raw
        );
        // The dictionary is tiny: only a couple of distinct signatures.
        assert!(
            fact.signature_count() <= 3,
            "got {}",
            fact.signature_count()
        );
    }

    #[test]
    fn empty_graph() {
        let g = ProvenanceGraph::new();
        let fact = factorize(&g);
        assert_eq!(fact.edge_count(), 0);
        assert!(defactorize(&fact).unwrap().is_empty());
    }

    #[test]
    fn graph_with_no_edges() {
        let mut g = ProvenanceGraph::new();
        g.add_node(Node::new(NodeKind::Page, "a", t(0)));
        g.add_node(Node::new(NodeKind::Page, "b", t(0)));
        let fact = factorize(&g);
        assert_eq!(fact.edge_count(), 0);
        assert!(defactorize(&fact).unwrap().is_empty());
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let g = repetitive(10);
        let mut fact = factorize(&g);
        fact.bytes.truncate(fact.bytes.len() / 2);
        assert!(defactorize(&fact).is_err());
    }

    #[test]
    fn all_edge_kinds_survive() {
        let mut g = ProvenanceGraph::new();
        let hub = g.add_node(Node::new(NodeKind::Page, "hub", t(0)));
        for (i, kind) in EdgeKind::ALL.into_iter().enumerate() {
            let v = g.add_node(Node::new(
                NodeKind::PageVisit,
                format!("v{i}"),
                t(i as i64 + 1),
            ));
            g.add_edge(v, hub, kind, t(i as i64 + 1)).unwrap();
        }
        let decoded = defactorize(&factorize(&g)).unwrap();
        let kinds: Vec<EdgeKind> = decoded.iter().map(|(_, _, k)| *k).collect();
        assert_eq!(kinds, EdgeKind::ALL.to_vec());
    }
}
