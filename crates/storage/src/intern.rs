//! String interning.
//!
//! Browser histories repeat strings heavily — domains, attribute keys
//! ("title", "visit_count"), transition labels. Chapman et al.'s provenance
//! factorization (cited in §3.1) begins with exactly this observation;
//! interning is the store's first compression layer. Each distinct string
//! gets a dense `u32` id; records reference ids, and `define` records in
//! the WAL persist the mapping itself.

use std::collections::HashMap;

/// A dense string ↔ id table.
///
/// Ids are assigned sequentially from 0 in first-seen order, which makes
/// the table reproducible from a replayed log.
///
/// # Examples
///
/// ```
/// use bp_storage::StringInterner;
/// let mut interner = StringInterner::new();
/// let a = interner.intern("title");
/// let b = interner.intern("title");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), Some("title"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StringInterner {
    by_string: HashMap<String, u32>,
    by_id: Vec<String>,
}

impl StringInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `s`, allocating the next id if unseen. The
    /// boolean is `true` when the string was newly defined (callers append
    /// a `define` record to the log in that case).
    pub fn intern_full(&mut self, s: &str) -> (u32, bool) {
        if let Some(&id) = self.by_string.get(s) {
            return (id, false);
        }
        let id = self.by_id.len() as u32;
        self.by_id.push(s.to_owned());
        self.by_string.insert(s.to_owned(), id);
        (id, true)
    }

    /// Returns the id for `s`, allocating if unseen.
    pub fn intern(&mut self, s: &str) -> u32 {
        self.intern_full(s).0
    }

    /// Looks up a string without allocating.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.by_string.get(s).copied()
    }

    /// Resolves an id back to its string.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.by_id.get(id as usize).map(String::as_str)
    }

    /// Installs a specific id → string mapping during log replay.
    ///
    /// Replay must define ids in exactly the order they were allocated;
    /// a gap or mismatch indicates a corrupt or reordered log.
    ///
    /// # Errors
    ///
    /// Returns `Err(expected_id)` if `id` is not the next id to allocate.
    pub fn define(&mut self, id: u32, s: &str) -> Result<(), u32> {
        let expected = self.by_id.len() as u32;
        if id != expected {
            return Err(expected);
        }
        self.by_id.push(s.to_owned());
        self.by_string.insert(s.to_owned(), id);
        Ok(())
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Total bytes of interned string payloads (for size accounting).
    pub fn payload_bytes(&self) -> usize {
        self.by_id.iter().map(String::len).sum()
    }

    /// Iterates `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = StringInterner::new();
        assert_eq!(i.intern("a"), i.intern("a"));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = StringInterner::new();
        assert_eq!(i.intern("x"), 0);
        assert_eq!(i.intern("y"), 1);
        assert_eq!(i.intern("x"), 0);
        assert_eq!(i.intern("z"), 2);
    }

    #[test]
    fn intern_full_reports_novelty() {
        let mut i = StringInterner::new();
        assert_eq!(i.intern_full("a"), (0, true));
        assert_eq!(i.intern_full("a"), (0, false));
    }

    #[test]
    fn resolve_and_lookup() {
        let mut i = StringInterner::new();
        let id = i.intern("hello");
        assert_eq!(i.resolve(id), Some("hello"));
        assert_eq!(i.lookup("hello"), Some(id));
        assert_eq!(i.resolve(99), None);
        assert_eq!(i.lookup("missing"), None);
    }

    #[test]
    fn define_enforces_order() {
        let mut i = StringInterner::new();
        i.define(0, "a").unwrap();
        i.define(1, "b").unwrap();
        assert_eq!(i.define(3, "d"), Err(2));
        assert_eq!(i.resolve(1), Some("b"));
    }

    #[test]
    fn payload_bytes_counts_string_content() {
        let mut i = StringInterner::new();
        i.intern("abc");
        i.intern("de");
        assert_eq!(i.payload_bytes(), 5);
    }

    #[test]
    fn iter_in_id_order() {
        let mut i = StringInterner::new();
        i.intern("b");
        i.intern("a");
        let all: Vec<(u32, &str)> = i.iter().collect();
        assert_eq!(all, vec![(0, "b"), (1, "a")]);
    }

    proptest! {
        /// Interning then resolving is the identity, and a rebuilt interner
        /// (via define in id order) matches the original.
        #[test]
        fn intern_resolve_roundtrip(strings in prop::collection::vec(".{0,20}", 0..50)) {
            let mut i = StringInterner::new();
            let ids: Vec<u32> = strings.iter().map(|s| i.intern(s)).collect();
            for (s, id) in strings.iter().zip(&ids) {
                prop_assert_eq!(i.resolve(*id), Some(s.as_str()));
            }
            // Replay reconstruction.
            let mut replayed = StringInterner::new();
            for (id, s) in i.iter() {
                replayed.define(id, s).unwrap();
            }
            prop_assert_eq!(replayed.len(), i.len());
            for (id, s) in i.iter() {
                prop_assert_eq!(replayed.resolve(id), Some(s));
            }
        }
    }
}
