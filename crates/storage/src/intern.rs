//! String interning.
//!
//! Browser histories repeat strings heavily — domains, attribute keys
//! ("title", "visit_count"), transition labels. Chapman et al.'s provenance
//! factorization (cited in §3.1) begins with exactly this observation;
//! interning is the store's first compression layer. Each distinct string
//! gets a dense `u32` id; records reference ids, and `define` records in
//! the WAL persist the mapping itself.
//!
//! Two implementations share that contract: [`StringInterner`] is the
//! plain single-threaded table, and [`ShardedInterner`] partitions the
//! string → id map across FNV-hashed shards with per-shard locks so
//! capture-side interning of fresh URLs no longer serializes against
//! query-side lookups (the store embeds the sharded one).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A dense string ↔ id table.
///
/// Ids are assigned sequentially from 0 in first-seen order, which makes
/// the table reproducible from a replayed log.
///
/// # Examples
///
/// ```
/// use bp_storage::StringInterner;
/// let mut interner = StringInterner::new();
/// let a = interner.intern("title");
/// let b = interner.intern("title");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), Some("title"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StringInterner {
    by_string: HashMap<String, u32>,
    by_id: Vec<String>,
}

impl StringInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `s`, allocating the next id if unseen. The
    /// boolean is `true` when the string was newly defined (callers append
    /// a `define` record to the log in that case).
    pub fn intern_full(&mut self, s: &str) -> (u32, bool) {
        if let Some(&id) = self.by_string.get(s) {
            return (id, false);
        }
        let id = self.by_id.len() as u32;
        self.by_id.push(s.to_owned());
        self.by_string.insert(s.to_owned(), id);
        (id, true)
    }

    /// Returns the id for `s`, allocating if unseen.
    pub fn intern(&mut self, s: &str) -> u32 {
        self.intern_full(s).0
    }

    /// Looks up a string without allocating.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.by_string.get(s).copied()
    }

    /// Resolves an id back to its string.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.by_id.get(id as usize).map(String::as_str)
    }

    /// Installs a specific id → string mapping during log replay.
    ///
    /// Replay must define ids in exactly the order they were allocated;
    /// a gap or mismatch indicates a corrupt or reordered log.
    ///
    /// # Errors
    ///
    /// Returns `Err(expected_id)` if `id` is not the next id to allocate.
    pub fn define(&mut self, id: u32, s: &str) -> Result<(), u32> {
        let expected = self.by_id.len() as u32;
        if id != expected {
            return Err(expected);
        }
        self.by_id.push(s.to_owned());
        self.by_string.insert(s.to_owned(), id);
        Ok(())
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Total bytes of interned string payloads (for size accounting).
    pub fn payload_bytes(&self) -> usize {
        self.by_id.iter().map(String::len).sum()
    }

    /// Iterates `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

/// Number of lock shards in a [`ShardedInterner`]. A power of two so the
/// hash → shard reduction is a mask; 16 shards keep contention negligible
/// for a handful of capture/query threads without bloating the struct.
const SHARD_COUNT: usize = 16;

/// FNV-1a — the shard partition hash. Hand-rolled (no external deps) and
/// deliberately *not* the std hasher: shard placement must be stable
/// across runs so the deterministic stress tests can reason about it.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A concurrently usable string ↔ id table with FNV-partitioned shards.
///
/// Semantics are identical to [`StringInterner`] — dense sequential ids in
/// first-defined order, replayable via [`define`](Self::define) — but every
/// method takes `&self`: the string → id map lives in [`SHARD_COUNT`]
/// independently locked shards, and the id → string table is a separate
/// lock acquired only on the (rare, per-*novel*-string) allocation path
/// and on resolve. Interning a hot URL takes one shard read lock; two
/// threads interning different strings almost always touch different
/// shards.
///
/// Lock order is always shard → `by_id`, on every path, so the pair cannot
/// deadlock.
///
/// # Examples
///
/// ```
/// use bp_storage::ShardedInterner;
/// let interner = ShardedInterner::new();
/// let a = interner.intern("title");
/// let b = interner.intern("title");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a).as_deref(), Some("title"));
/// ```
#[derive(Debug, Default)]
pub struct ShardedInterner {
    /// string → id, partitioned by `fnv1a(s) % SHARD_COUNT`.
    shards: [RwLock<HashMap<String, u32>>; SHARD_COUNT],
    /// id → string, append-only in id order.
    by_id: RwLock<Vec<String>>,
    /// Running total of interned payload bytes — kept incrementally so
    /// [`payload_bytes`](Self::payload_bytes) is O(1) (it used to be an
    /// O(strings) walk on every per-event gauge publish).
    payload: AtomicUsize,
}

impl ShardedInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_of(&self, s: &str) -> &RwLock<HashMap<String, u32>> {
        // SHARD_COUNT is a power of two; mask instead of modulo.
        let index = usize_from_hash(fnv1a(s)) & (SHARD_COUNT - 1);
        &self.shards[index]
    }

    /// Returns the id for `s`, allocating the next id if unseen. The
    /// boolean is `true` when the string was newly defined (callers append
    /// a `define` record to the log in that case).
    pub fn intern_full(&self, s: &str) -> (u32, bool) {
        let shard = self.shard_of(s);
        if let Some(&id) = shard.read().get(s) {
            return (id, false);
        }
        let mut map = shard.write();
        // Double-check: another thread may have won the race between the
        // read unlock and the write lock.
        if let Some(&id) = map.get(s) {
            return (id, false);
        }
        let mut by_id = self.by_id.write();
        let id = u32::try_from(by_id.len()).unwrap_or(u32::MAX);
        by_id.push(s.to_owned());
        drop(by_id);
        self.payload.fetch_add(s.len(), Ordering::Relaxed);
        map.insert(s.to_owned(), id);
        (id, true)
    }

    /// Returns the id for `s`, allocating if unseen.
    pub fn intern(&self, s: &str) -> u32 {
        self.intern_full(s).0
    }

    /// Looks up a string without allocating.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.shard_of(s).read().get(s).copied()
    }

    /// Resolves an id back to its (cloned) string.
    pub fn resolve(&self, id: u32) -> Option<String> {
        self.by_id.read().get(id as usize).cloned()
    }

    /// Installs a specific id → string mapping during log replay.
    ///
    /// Replay must define ids in exactly the order they were allocated;
    /// a gap or mismatch indicates a corrupt or reordered log.
    ///
    /// # Errors
    ///
    /// Returns `Err(expected_id)` if `id` is not the next id to allocate.
    pub fn define(&self, id: u32, s: &str) -> Result<(), u32> {
        // Same shard → by_id lock order as intern_full.
        let mut map = self.shard_of(s).write();
        let mut by_id = self.by_id.write();
        let expected = u32::try_from(by_id.len()).unwrap_or(u32::MAX);
        if id != expected {
            return Err(expected);
        }
        by_id.push(s.to_owned());
        drop(by_id);
        self.payload.fetch_add(s.len(), Ordering::Relaxed);
        map.insert(s.to_owned(), id);
        Ok(())
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.by_id.read().len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.read().is_empty()
    }

    /// Total bytes of interned string payloads — O(1), maintained
    /// incrementally.
    pub fn payload_bytes(&self) -> usize {
        self.payload.load(Ordering::Relaxed)
    }

    /// Snapshot of the strings in id order.
    pub fn strings(&self) -> Vec<String> {
        self.by_id.read().clone()
    }
}

/// `u64 → usize` without an `as` cast (L003): shard selection only needs
/// the low bits, which always fit.
fn usize_from_hash(h: u64) -> usize {
    usize::try_from(h & 0xffff).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = StringInterner::new();
        assert_eq!(i.intern("a"), i.intern("a"));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = StringInterner::new();
        assert_eq!(i.intern("x"), 0);
        assert_eq!(i.intern("y"), 1);
        assert_eq!(i.intern("x"), 0);
        assert_eq!(i.intern("z"), 2);
    }

    #[test]
    fn intern_full_reports_novelty() {
        let mut i = StringInterner::new();
        assert_eq!(i.intern_full("a"), (0, true));
        assert_eq!(i.intern_full("a"), (0, false));
    }

    #[test]
    fn resolve_and_lookup() {
        let mut i = StringInterner::new();
        let id = i.intern("hello");
        assert_eq!(i.resolve(id), Some("hello"));
        assert_eq!(i.lookup("hello"), Some(id));
        assert_eq!(i.resolve(99), None);
        assert_eq!(i.lookup("missing"), None);
    }

    #[test]
    fn define_enforces_order() {
        let mut i = StringInterner::new();
        i.define(0, "a").unwrap();
        i.define(1, "b").unwrap();
        assert_eq!(i.define(3, "d"), Err(2));
        assert_eq!(i.resolve(1), Some("b"));
    }

    #[test]
    fn payload_bytes_counts_string_content() {
        let mut i = StringInterner::new();
        i.intern("abc");
        i.intern("de");
        assert_eq!(i.payload_bytes(), 5);
    }

    #[test]
    fn iter_in_id_order() {
        let mut i = StringInterner::new();
        i.intern("b");
        i.intern("a");
        let all: Vec<(u32, &str)> = i.iter().collect();
        assert_eq!(all, vec![(0, "b"), (1, "a")]);
    }

    #[test]
    fn sharded_matches_plain_semantics() {
        let plain = {
            let mut i = StringInterner::new();
            i.intern("x");
            i.intern("y");
            i.intern("x");
            i
        };
        let sharded = ShardedInterner::new();
        assert_eq!(sharded.intern("x"), 0);
        assert_eq!(sharded.intern("y"), 1);
        assert_eq!(sharded.intern("x"), 0);
        assert_eq!(sharded.len(), plain.len());
        assert_eq!(sharded.payload_bytes(), plain.payload_bytes());
        assert_eq!(sharded.resolve(1).as_deref(), Some("y"));
        assert_eq!(sharded.resolve(9), None);
        assert_eq!(sharded.lookup("y"), Some(1));
        assert_eq!(sharded.lookup("z"), None);
        assert_eq!(sharded.intern_full("z"), (2, true));
        assert_eq!(sharded.intern_full("z"), (2, false));
        assert!(!sharded.is_empty());
        assert!(ShardedInterner::new().is_empty());
    }

    #[test]
    fn sharded_define_enforces_order() {
        let i = ShardedInterner::new();
        i.define(0, "a").unwrap();
        i.define(1, "b").unwrap();
        assert_eq!(i.define(3, "d"), Err(2));
        assert_eq!(i.resolve(1).as_deref(), Some("b"));
        assert_eq!(i.strings(), vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn fnv_is_stable() {
        // Shard placement must not drift between runs or platforms: pin
        // the reference FNV-1a vectors.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
    }

    proptest! {
        /// A sharded interner and the plain one agree on every id for any
        /// interleaving-free sequence, and replay via define matches.
        #[test]
        fn sharded_agrees_with_plain(strings in prop::collection::vec(".{0,20}", 0..50)) {
            let mut plain = StringInterner::new();
            let sharded = ShardedInterner::new();
            for s in &strings {
                prop_assert_eq!(plain.intern_full(s), sharded.intern_full(s));
            }
            prop_assert_eq!(plain.len(), sharded.len());
            prop_assert_eq!(plain.payload_bytes(), sharded.payload_bytes());
            let replayed = ShardedInterner::new();
            for (id, s) in sharded.strings().iter().enumerate() {
                replayed.define(u32::try_from(id).unwrap(), s).unwrap();
            }
            for (id, s) in plain.iter() {
                prop_assert_eq!(replayed.resolve(id), Some(s.to_owned()));
            }
        }
    }

    proptest! {
        /// Interning then resolving is the identity, and a rebuilt interner
        /// (via define in id order) matches the original.
        #[test]
        fn intern_resolve_roundtrip(strings in prop::collection::vec(".{0,20}", 0..50)) {
            let mut i = StringInterner::new();
            let ids: Vec<u32> = strings.iter().map(|s| i.intern(s)).collect();
            for (s, id) in strings.iter().zip(&ids) {
                prop_assert_eq!(i.resolve(*id), Some(s.as_str()));
            }
            // Replay reconstruction.
            let mut replayed = StringInterner::new();
            for (id, s) in i.iter() {
                replayed.define(id, s).unwrap();
            }
            prop_assert_eq!(replayed.len(), i.len());
            for (id, s) in i.iter() {
                prop_assert_eq!(replayed.resolve(id), Some(s));
            }
        }
    }
}
