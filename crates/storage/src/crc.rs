//! CRC-32C (Castagnoli) checksums for log-record integrity.
//!
//! Every WAL record carries a CRC over its payload so recovery can detect
//! torn writes and bit rot at the record granularity and stop replay at the
//! first damaged record (see [`crate::wal`]). Implemented from scratch with
//! a lazily-built 8-bit lookup table.

use std::sync::OnceLock;

const POLY: u32 = 0x82f6_3b78; // CRC-32C (Castagnoli), reflected

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for b in 0u8..=255 {
            let mut crc = u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            t[usize::from(b)] = crc;
        }
        t
    })
}

/// Computes the CRC-32C of `data`.
///
/// # Examples
///
/// ```
/// use bp_storage::crc32c;
/// // Known-answer test vector from RFC 3720 (iSCSI).
/// assert_eq!(crc32c(b"123456789"), 0xE306_9283);
/// ```
pub fn crc32c(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &byte in data {
        // (crc ^ byte) & 0xff is exactly the low byte of crc xor'd with
        // the input byte; indexing via u8 keeps the codec cast-free.
        crc = (crc >> 8) ^ t[usize::from(crc.to_le_bytes()[0] ^ byte)];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_answer_vectors() {
        // RFC 3720 appendix B.4 test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32c(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32c(&copy), base, "flip at byte {i} bit {bit} undetected");
                copy[i] ^= 1 << bit;
            }
        }
    }

    proptest! {
        #[test]
        fn deterministic(data in prop::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(crc32c(&data), crc32c(&data));
        }

        #[test]
        fn appending_changes_crc(data in prop::collection::vec(any::<u8>(), 0..256), extra: u8) {
            let mut longer = data.clone();
            longer.push(extra);
            // Not a guarantee for CRCs in general, but holds for a single
            // appended byte: the CRC register cannot map to itself.
            prop_assert_ne!(crc32c(&data), crc32c(&longer));
        }
    }
}
