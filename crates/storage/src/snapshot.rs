//! Columnar, delta-encoded snapshot format (`BPSNAP\x02`).
//!
//! The v1 snapshot was simply the compacted op stream — every node record
//! re-paid the per-op framing (tag byte, interleaved string defines,
//! per-record attr counts). Browser history is highly regular, so a
//! column-per-field layout compresses much better (§3.1; the paper's E1
//! budget is 39.5% overhead over raw history):
//!
//! - **strings** are front-coded in id order: each entry stores the length
//!   of the prefix it shares with its predecessor plus the differing
//!   suffix. Interned strings are dominated by URLs that share long
//!   scheme://host/path prefixes.
//! - **nodes** are split into columns: kind bytes, zigzag-delta key ids,
//!   versions, zigzag-delta open timestamps, then attribute lists. Sorted
//!   and near-sorted columns make the varints one byte each.
//! - **edge structure** reuses [`crate::factorize`]'s signature-dictionary
//!   encoding when the graph's per-source edge grouping matches edge-id
//!   order (the common case: capture creates a node's out-edges right
//!   after the node), and falls back to explicit delta triples otherwise.
//!   Timestamps and attributes live in separate columns either way.
//! - **closes** are (node-id delta, close-time delta) pairs.
//!
//! Decoding lowers the columns back into the [`Op`] stream the v1 format
//! stored literally — DefineStrings in id order, AddNodes, AddEdges,
//! CloseNodes — so recovery replays through exactly the same structural
//! apply path and rebuilds bit-identical state.

use crate::cast::{offset_u64, usize_from_u64};
use crate::error::{StorageError, StorageResult};
use crate::factorize::{defactorize, factorize, FactorizedEdges};
use crate::intern::ShardedInterner;
use crate::record::{read_attrs, write_attrs, Op};
use crate::varint;
use bp_graph::{NodeId, NodeKind, ProvenanceGraph, Timestamp, Version};

/// Edge-structure encoding selector: explicit delta triples.
const EDGES_EXPLICIT: u8 = 0;
/// Edge-structure encoding selector: factorized signature dictionary.
const EDGES_FACTORIZED: u8 = 1;

/// Encodes `graph` into one columnar frame, interning every string the
/// snapshot references into `compact` (in the id order the decoder will
/// replay them).
///
/// # Errors
///
/// Infallible for any in-memory graph today; the `Result` keeps the
/// signature aligned with [`decode`] and future size limits.
pub(crate) fn encode(graph: &ProvenanceGraph, compact: &ShardedInterner) -> StorageResult<Vec<u8>> {
    // First pass: assign compact string ids in reference order (node keys
    // and attr keys in node-id order, then edge attr keys in edge-id
    // order) — the same order the string table is emitted and replayed.
    for (_, node) in graph.nodes() {
        compact.intern(node.key());
        for (k, _) in node.attrs().iter() {
            compact.intern(k);
        }
    }
    for (_, edge) in graph.edges() {
        for (k, _) in edge.attrs().iter() {
            compact.intern(k);
        }
    }

    let mut out = Vec::new();

    // --- String table, front-coded in id order. ---
    let table = compact.strings();
    varint::write_u64(&mut out, offset_u64(table.len()));
    let mut prev = "";
    for s in &table {
        let shared = common_prefix_len(prev, s);
        varint::write_u64(&mut out, offset_u64(shared));
        varint::write_u64(&mut out, offset_u64(s.len() - shared));
        out.extend_from_slice(&s.as_bytes()[shared..]);
        prev = s;
    }

    // --- Node columns. ---
    varint::write_u64(&mut out, offset_u64(graph.node_count()));
    for (_, node) in graph.nodes() {
        out.push(node.kind().code());
    }
    let mut last_key = 0i64;
    for (_, node) in graph.nodes() {
        // Resolved above, so lookup cannot miss.
        let key = i64::from(compact.intern(node.key()));
        varint::write_i64(&mut out, key - last_key);
        last_key = key;
    }
    for (_, node) in graph.nodes() {
        varint::write_u64(&mut out, u64::from(node.version().number()));
    }
    let mut last_open = 0i64;
    for (_, node) in graph.nodes() {
        let micros = node.opened_at().as_micros();
        varint::write_i64(&mut out, micros - last_open);
        last_open = micros;
    }
    for (_, node) in graph.nodes() {
        let attrs: Vec<(u32, bp_graph::AttrValue)> = node
            .attrs()
            .iter()
            .map(|(k, v)| (compact.intern(k), v.clone()))
            .collect();
        write_attrs(&mut out, &attrs);
    }

    // --- Edge structure. ---
    varint::write_u64(&mut out, offset_u64(graph.edge_count()));
    if grouped_order_is_id_order(graph) {
        let fact = factorize(graph);
        out.push(EDGES_FACTORIZED);
        varint::write_bytes(&mut out, fact.as_bytes());
    } else {
        out.push(EDGES_EXPLICIT);
        let mut last_src = 0i64;
        for (_, edge) in graph.edges() {
            let src = i64::from(edge.src().index());
            varint::write_i64(&mut out, src - last_src);
            last_src = src;
            varint::write_i64(&mut out, src - i64::from(edge.dst().index()));
            out.push(edge.kind().code());
        }
    }
    // Edge timestamp + attr columns, always in edge-id order.
    let mut last_at = 0i64;
    for (_, edge) in graph.edges() {
        let micros = edge.at().as_micros();
        varint::write_i64(&mut out, micros - last_at);
        last_at = micros;
    }
    for (_, edge) in graph.edges() {
        let attrs: Vec<(u32, bp_graph::AttrValue)> = edge
            .attrs()
            .iter()
            .map(|(k, v)| (compact.intern(k), v.clone()))
            .collect();
        write_attrs(&mut out, &attrs);
    }

    // --- Close records, ascending node id. ---
    let closes: Vec<(u32, i64)> = graph
        .nodes()
        .filter_map(|(id, n)| n.interval().close().map(|c| (id.index(), c.as_micros())))
        .collect();
    varint::write_u64(&mut out, offset_u64(closes.len()));
    let mut last_id = 0u64;
    let mut last_close = 0i64;
    for (id, micros) in &closes {
        let id = u64::from(*id);
        varint::write_u64(&mut out, id - last_id);
        last_id = id;
        varint::write_i64(&mut out, micros - last_close);
        last_close = *micros;
    }

    Ok(out)
}

/// Decodes one columnar frame back into the equivalent op stream (string
/// defines, nodes, edges, closes — all in id order).
///
/// # Errors
///
/// Returns [`StorageError::Corrupt`] on truncation or malformed columns.
pub(crate) fn decode(frame: &[u8]) -> StorageResult<Vec<Op>> {
    let buf = frame;
    let mut pos = 0usize;
    let mut ops = Vec::new();

    // --- String table. ---
    let n_strings = read_count(buf, &mut pos)?;
    let mut prev = String::new();
    for i in 0..n_strings {
        let shared = read_count(buf, &mut pos)?;
        if shared > prev.len() || !prev.is_char_boundary(shared) {
            return Err(StorageError::corrupt(
                offset_u64(pos),
                "front-coded prefix exceeds predecessor",
            ));
        }
        let suffix = varint::read_str(buf, &mut pos)?;
        let mut s = String::with_capacity(shared + suffix.len());
        s.push_str(&prev[..shared]);
        s.push_str(suffix);
        ops.push(Op::DefineString {
            id: u32_from_index(i, pos)?,
            value: s.clone(),
        });
        prev = s;
    }

    // --- Node columns. ---
    let n_nodes = read_count(buf, &mut pos)?;
    let mut kinds = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let code = read_byte(buf, &mut pos)?;
        kinds.push(
            NodeKind::from_code(code)
                .ok_or_else(|| StorageError::corrupt(offset_u64(pos), "bad node kind"))?,
        );
    }
    let mut keys = Vec::with_capacity(n_nodes);
    let mut last_key = 0i64;
    for _ in 0..n_nodes {
        last_key += varint::read_i64(buf, &mut pos)?;
        keys.push(u32_from_signed(last_key, pos)?);
    }
    let mut versions = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        versions.push(Version::new(varint::read_u32(buf, &mut pos)?));
    }
    let mut opens = Vec::with_capacity(n_nodes);
    let mut last_open = 0i64;
    for _ in 0..n_nodes {
        last_open += varint::read_i64(buf, &mut pos)?;
        opens.push(Timestamp::from_micros(last_open));
    }
    for i in 0..n_nodes {
        let attrs = read_attrs(buf, &mut pos)?;
        ops.push(Op::AddNode {
            kind: kinds[i],
            key: keys[i],
            version: versions[i],
            open_at: opens[i],
            attrs,
        });
    }
    let node_ops_start = ops.len() - n_nodes;

    // --- Edge structure. ---
    let n_edges = read_count(buf, &mut pos)?;
    let tag = read_byte(buf, &mut pos)?;
    let structure: Vec<(NodeId, NodeId, bp_graph::EdgeKind)> = match tag {
        EDGES_FACTORIZED => {
            let bytes = varint::read_bytes(buf, &mut pos)?.to_vec();
            let fact = FactorizedEdges::from_bytes(bytes, n_edges)?;
            let triples = defactorize(&fact)?;
            if triples.len() != n_edges {
                return Err(StorageError::corrupt(
                    offset_u64(pos),
                    "factorized edge count mismatch",
                ));
            }
            triples
        }
        EDGES_EXPLICIT => {
            let mut triples = Vec::with_capacity(n_edges);
            let mut last_src = 0i64;
            for _ in 0..n_edges {
                last_src += varint::read_i64(buf, &mut pos)?;
                let src = u32_from_signed(last_src, pos)?;
                let dst_delta = varint::read_i64(buf, &mut pos)?;
                let dst = u32_from_signed(last_src - dst_delta, pos)?;
                let code = read_byte(buf, &mut pos)?;
                let kind = bp_graph::EdgeKind::from_code(code)
                    .ok_or_else(|| StorageError::corrupt(offset_u64(pos), "bad edge kind"))?;
                triples.push((NodeId::new(src), NodeId::new(dst), kind));
            }
            triples
        }
        other => {
            return Err(StorageError::corrupt(
                offset_u64(pos),
                format!("unknown edge encoding tag {other}"),
            ))
        }
    };
    let mut ats = Vec::with_capacity(n_edges);
    let mut last_at = 0i64;
    for _ in 0..n_edges {
        last_at += varint::read_i64(buf, &mut pos)?;
        ats.push(Timestamp::from_micros(last_at));
    }
    for (i, (src, dst, kind)) in structure.into_iter().enumerate() {
        let attrs = read_attrs(buf, &mut pos)?;
        ops.push(Op::AddEdge {
            src,
            dst,
            kind,
            at: ats[i],
            attrs,
        });
    }

    // --- Closes. ---
    let n_closes = read_count(buf, &mut pos)?;
    let mut last_id = 0u64;
    let mut last_close = 0i64;
    for _ in 0..n_closes {
        last_id += varint::read_u64(buf, &mut pos)?;
        let node = usize_from_u64(last_id)
            .filter(|&id| id < n_nodes)
            .ok_or_else(|| StorageError::corrupt(offset_u64(pos), "close references bad node"))?;
        last_close += varint::read_i64(buf, &mut pos)?;
        let _ = node_ops_start; // ids are dense: validated against n_nodes above
        ops.push(Op::CloseNode {
            node: NodeId::new(u32_from_index(node, pos)?),
            at: Timestamp::from_micros(last_close),
        });
    }
    if pos != buf.len() {
        return Err(StorageError::corrupt(
            offset_u64(pos),
            "trailing bytes after snapshot columns",
        ));
    }
    Ok(ops)
}

/// Whether walking nodes in id order and each node's out-edges in list
/// order visits edge ids 0, 1, 2, … — the precondition for reusing the
/// factorized structure encoding (which stores edges grouped by source).
fn grouped_order_is_id_order(graph: &ProvenanceGraph) -> bool {
    let mut next = 0u32;
    for src in graph.node_ids() {
        for &eid in graph.out_edges(src) {
            if eid.index() != next {
                return false;
            }
            next += 1;
        }
    }
    true
}

fn common_prefix_len(a: &str, b: &str) -> usize {
    let mut n = a
        .as_bytes()
        .iter()
        .zip(b.as_bytes())
        .take_while(|(x, y)| x == y)
        .count();
    // Keep the split on a char boundary so decode can slice the prefix.
    while !b.is_char_boundary(n) {
        n -= 1;
    }
    n
}

fn read_count(buf: &[u8], pos: &mut usize) -> StorageResult<usize> {
    let n = varint::read_u64(buf, pos)?;
    usize_from_u64(n)
        .filter(|&n| n <= buf.len())
        .ok_or_else(|| StorageError::corrupt(offset_u64(*pos), "count exceeds buffer"))
}

fn read_byte(buf: &[u8], pos: &mut usize) -> StorageResult<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| StorageError::corrupt(offset_u64(*pos), "truncated byte"))?;
    *pos += 1;
    Ok(b)
}

fn u32_from_index(i: usize, pos: usize) -> StorageResult<u32> {
    u32::try_from(i).map_err(|_| StorageError::corrupt(offset_u64(pos), "index exceeds u32"))
}

fn u32_from_signed(v: i64, pos: usize) -> StorageResult<u32> {
    u32::try_from(v).map_err(|_| StorageError::corrupt(offset_u64(pos), "delta out of range"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_graph::{AttrValue, EdgeKind, Node};

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// A graph shaped like real capture output: out-edges created right
    /// after their source node (grouped order == id order).
    fn capture_shaped(n: usize) -> ProvenanceGraph {
        let mut g = ProvenanceGraph::new();
        let hub = g.add_node(Node::new(NodeKind::Page, "http://hub.example/", t(0)));
        let mut prev = None;
        for i in 0..n {
            let mut node = Node::new(
                NodeKind::PageVisit,
                format!("http://hub.example/article/{i}"),
                t(i64::try_from(i).unwrap() + 1),
            );
            node.attrs_mut().set("title", format!("Article {i}"));
            let v = g.add_node(node);
            let ts = t(i64::try_from(i).unwrap() + 1);
            g.add_edge(v, hub, EdgeKind::InstanceOf, ts).unwrap();
            if let Some(p) = prev {
                g.add_edge(v, p, EdgeKind::Link, ts).unwrap();
            }
            prev = Some(v);
        }
        g
    }

    /// Interleaves edge creation across sources so grouped order differs
    /// from id order, forcing the explicit fallback.
    fn interleaved() -> ProvenanceGraph {
        let mut g = ProvenanceGraph::new();
        let a = g.add_node(Node::new(NodeKind::Page, "a", t(0)));
        let b = g.add_node(Node::new(NodeKind::Page, "b", t(0)));
        let c = g.add_node(Node::new(NodeKind::Page, "c", t(0)));
        g.add_edge(c, a, EdgeKind::Link, t(1)).unwrap(); // edge 0: src 2
        g.add_edge(b, a, EdgeKind::Link, t(2)).unwrap(); // edge 1: src 1
        g.add_edge(c, b, EdgeKind::Link, t(3)).unwrap(); // edge 2: src 2
        g
    }

    fn replay(ops: Vec<Op>) -> (ProvenanceGraph, ShardedInterner) {
        let g = std::cell::RefCell::new(ProvenanceGraph::new());
        let interner = ShardedInterner::new();
        for op in ops {
            match op {
                Op::DefineString { id, value } => interner.define(id, &value).unwrap(),
                Op::AddNode {
                    kind,
                    key,
                    version,
                    open_at,
                    attrs,
                } => {
                    let key = interner.resolve(key).unwrap();
                    let mut node = Node::with_version(kind, &key, version, open_at);
                    for (kid, v) in attrs {
                        node.attrs_mut().set(interner.resolve(kid).unwrap(), v);
                    }
                    g.borrow_mut().add_node(node);
                }
                Op::AddEdge {
                    src,
                    dst,
                    kind,
                    at,
                    attrs,
                } => {
                    let mut edge = bp_graph::Edge::new(src, dst, kind, at);
                    for (kid, v) in attrs {
                        edge.attrs_mut().set(interner.resolve(kid).unwrap(), v);
                    }
                    g.borrow_mut().add_edge_full(edge).unwrap();
                }
                Op::CloseNode { node, at } => {
                    g.borrow_mut().node_mut(node).unwrap().close_at(at);
                }
                other => panic!("unexpected op in snapshot stream: {other:?}"),
            }
        }
        (g.into_inner(), interner)
    }

    fn fingerprint(g: &ProvenanceGraph) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (id, n) in g.nodes() {
            let _ = writeln!(s, "N {id} {n:?}");
        }
        for (id, e) in g.edges() {
            let _ = writeln!(s, "E {id} {e:?}");
        }
        s
    }

    #[test]
    fn roundtrip_capture_shaped_uses_factorized_edges() {
        let mut g = capture_shaped(40);
        g.node_mut(NodeId::new(3)).unwrap().close_at(t(100));
        g.node_mut(NodeId::new(7)).unwrap().close_at(t(101));
        assert!(grouped_order_is_id_order(&g));
        let compact = ShardedInterner::new();
        let frame = encode(&g, &compact).unwrap();
        let (decoded, interner) = replay(decode(&frame).unwrap());
        assert_eq!(fingerprint(&decoded), fingerprint(&g));
        assert_eq!(interner.len(), compact.len());
        assert_eq!(interner.strings(), compact.strings());
    }

    #[test]
    fn roundtrip_interleaved_uses_explicit_edges() {
        let g = interleaved();
        assert!(!grouped_order_is_id_order(&g));
        let frame = encode(&g, &ShardedInterner::new()).unwrap();
        let (decoded, _) = replay(decode(&frame).unwrap());
        assert_eq!(fingerprint(&decoded), fingerprint(&g));
    }

    #[test]
    fn roundtrip_attr_values_of_every_type() {
        let mut g = ProvenanceGraph::new();
        let mut node = Node::new(NodeKind::Download, "/tmp/f.bin", t(1));
        node.attrs_mut().set("s", "text");
        node.attrs_mut().set("i", -42i64);
        node.attrs_mut().set("f", 2.5f64);
        node.attrs_mut().set("b", true);
        node.attrs_mut().set("raw", AttrValue::Bytes(vec![0, 255]));
        g.add_node(node);
        let frame = encode(&g, &ShardedInterner::new()).unwrap();
        let (decoded, _) = replay(decode(&frame).unwrap());
        assert_eq!(fingerprint(&decoded), fingerprint(&g));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = ProvenanceGraph::new();
        let frame = encode(&g, &ShardedInterner::new()).unwrap();
        assert!(decode(&frame).unwrap().is_empty());
    }

    #[test]
    fn columnar_is_smaller_than_op_stream() {
        let g = capture_shaped(200);
        let compact = ShardedInterner::new();
        let columns = encode(&g, &compact).unwrap();
        // The v1 equivalent: the compacted op stream.
        let mut codec = crate::record::Codec::new();
        let mut v1 = Vec::new();
        for (id, s) in compact.strings().iter().enumerate() {
            codec.encode(
                &Op::DefineString {
                    id: u32::try_from(id).unwrap(),
                    value: s.clone(),
                },
                &mut v1,
            );
        }
        for (_, node) in g.nodes() {
            let attrs = node
                .attrs()
                .iter()
                .map(|(k, v)| (compact.intern(k), v.clone()))
                .collect();
            codec.encode(
                &Op::AddNode {
                    kind: node.kind(),
                    key: compact.intern(node.key()),
                    version: node.version(),
                    open_at: node.opened_at(),
                    attrs,
                },
                &mut v1,
            );
        }
        for (_, edge) in g.edges() {
            codec.encode(
                &Op::AddEdge {
                    src: edge.src(),
                    dst: edge.dst(),
                    kind: edge.kind(),
                    at: edge.at(),
                    attrs: Vec::new(),
                },
                &mut v1,
            );
        }
        assert!(
            columns.len() * 10 < v1.len() * 9,
            "columnar {} should be at least 10% below op-stream {}",
            columns.len(),
            v1.len()
        );
    }

    #[test]
    fn truncated_frames_are_corrupt_never_panic() {
        let g = capture_shaped(10);
        let frame = encode(&g, &ShardedInterner::new()).unwrap();
        for cut in 0..frame.len() {
            assert!(
                decode(&frame[..cut]).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let g = capture_shaped(3);
        let mut frame = encode(&g, &ShardedInterner::new()).unwrap();
        frame.push(7);
        assert!(decode(&frame).is_err());
    }

    #[test]
    fn front_coding_respects_char_boundaries() {
        let mut g = ProvenanceGraph::new();
        g.add_node(Node::new(NodeKind::Page, "http://é/aé", t(0)));
        g.add_node(Node::new(NodeKind::Page, "http://é/aüz", t(0)));
        let frame = encode(&g, &ShardedInterner::new()).unwrap();
        let (decoded, _) = replay(decode(&frame).unwrap());
        assert_eq!(fingerprint(&decoded), fingerprint(&g));
    }
}
