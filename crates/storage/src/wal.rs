//! Append-only write-ahead log with checksummed frames.
//!
//! Frame layout: `[len: u32 LE][crc32c(payload): u32 LE][payload]`.
//! Appends are atomic at the frame level: recovery scans frames from the
//! head and stops at the first missing/truncated/corrupt frame, truncating
//! the file back to the last clean frame boundary — a torn tail (the
//! browser crashed mid-write) loses at most the final uncommitted record,
//! never earlier history.

use crate::cast::{offset_u64, usize_from_u64};
use crate::crc::crc32c;
use crate::error::{StorageError, StorageResult};
use bp_obs::ClockHandle;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

const FRAME_HEADER: usize = 8;
/// Frames above this size are presumed corrupt length fields; no single
/// history record comes close.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Durability policy for appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every append (slowest, strongest).
    Always,
    /// Let the OS flush; [`Wal::sync`] can be called at batch boundaries.
    #[default]
    OsManaged,
    /// Group commit: frames accumulate unsynced and [`Wal::append_group`]
    /// (or [`Wal::append`]) issues one `fsync` once `max_events` frames
    /// have been appended since the last sync **or** `max_delay` has
    /// elapsed since it — amortizing the sync cost over a whole batch
    /// while bounding how much committed-in-memory history a power loss
    /// can cost.
    GroupCommit {
        /// Sync after this many unsynced frames (≥ 1; 0 behaves as 1).
        max_events: usize,
        /// Sync when this much wall-clock has passed since the last sync.
        max_delay: Duration,
    },
}

/// What one [`Wal::append_group`] call did, for metric accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupAppend {
    /// Frames written by this group.
    pub frames: usize,
    /// Total bytes written (headers included).
    pub bytes: u64,
    /// Whether this group's boundary triggered an `fsync`.
    pub synced: bool,
    /// Time the `fsync` took, in microseconds (0 when not synced).
    pub sync_micros: u64,
}

/// An append-only checksummed record log.
///
/// # Examples
///
/// ```
/// use bp_storage::{Wal, SyncPolicy};
/// # fn main() -> Result<(), bp_storage::StorageError> {
/// let dir = std::env::temp_dir().join(format!("bp-wal-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("log.wal");
/// # let _ = std::fs::remove_file(&path);
/// let mut wal = Wal::open(&path, SyncPolicy::OsManaged)?;
/// wal.append(b"record one")?;
/// wal.append(b"record two")?;
/// let records = wal.read_all()?;
/// assert_eq!(records.frames.len(), 2);
/// # std::fs::remove_file(&path)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    /// Offset of the end of the last known-good frame.
    clean_len: u64,
    /// Whether [`Wal::open`] found and truncated a torn tail.
    truncated_on_open: bool,
    /// Frames appended since the last `fsync` (drives
    /// [`SyncPolicy::GroupCommit`]'s `max_events` threshold).
    unsynced_frames: usize,
    /// Time source for sync pacing and timing (mockable in tests).
    clock: ClockHandle,
    /// `clock` reading at the last `fsync` (drives `max_delay`).
    last_sync_us: u64,
}

/// The readable content of a log: clean frames plus torn-tail diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalContents {
    /// Payloads of every intact frame, in append order.
    pub frames: Vec<Vec<u8>>,
    /// Byte offset of the end of the last intact frame.
    pub clean_len: u64,
    /// `true` if bytes after `clean_len` were ignored (torn tail).
    pub torn_tail: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` and validates existing
    /// frames, truncating any torn tail.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] for filesystem failures.
    pub fn open(path: impl AsRef<Path>, policy: SyncPolicy) -> StorageResult<Self> {
        Self::open_with_clock(path, policy, ClockHandle::real())
    }

    /// [`Wal::open`] with an explicit time source, so tests can drive
    /// [`SyncPolicy::GroupCommit`]'s `max_delay` with a mock clock.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] for filesystem failures.
    pub fn open_with_clock(
        path: impl AsRef<Path>,
        policy: SyncPolicy,
        clock: ClockHandle,
    ) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let contents = scan(&mut file)?;
        if contents.torn_tail {
            file.set_len(contents.clean_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        let last_sync_us = clock.now_micros();
        Ok(Wal {
            file,
            path,
            policy,
            clean_len: contents.clean_len,
            truncated_on_open: contents.torn_tail,
            unsynced_frames: 0,
            clock,
            last_sync_us,
        })
    }

    /// `true` if opening this log found a torn tail and truncated it.
    pub fn truncated_on_open(&self) -> bool {
        self.truncated_on_open
    }

    /// The path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current length of committed data in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.clean_len
    }

    /// Appends one payload as a checksummed frame.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::FrameTooLarge`] for payloads over
    /// [`MAX_FRAME`] bytes — the length field would wrap (or the frame
    /// would read back as a torn tail, discarding every frame after it),
    /// so the append is refused before any byte reaches the file. Returns
    /// [`StorageError::Io`] on write failure; the in-memory clean length
    /// only advances after a successful write (and sync, under
    /// [`SyncPolicy::Always`]).
    pub fn append(&mut self, payload: &[u8]) -> StorageResult<()> {
        self.append_group(&[payload]).map(|_| ())
    }

    /// Appends several payloads as one contiguous frame-group: every
    /// payload gets its own checksummed frame (so recovery replays any
    /// complete prefix of them after a torn write), but the group shares a
    /// single `write` call and at most one `fsync` at its boundary — the
    /// group-commit optimization. Under [`SyncPolicy::GroupCommit`] the
    /// sync is further amortized across groups: it fires only once
    /// `max_events` frames are unsynced or `max_delay` has elapsed.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::FrameTooLarge`] if **any** payload is
    /// oversized — checked before a single byte reaches the file, so a
    /// refused group leaves the log untouched. Returns
    /// [`StorageError::Io`] on write/sync failure.
    pub fn append_group(&mut self, payloads: &[impl AsRef<[u8]>]) -> StorageResult<GroupAppend> {
        if payloads.is_empty() {
            return Ok(GroupAppend {
                frames: 0,
                bytes: 0,
                synced: false,
                sync_micros: 0,
            });
        }
        // Validate every length up front: all-or-nothing.
        let mut total = 0usize;
        for payload in payloads {
            frame_payload_len(payload.as_ref().len())?;
            total += FRAME_HEADER + payload.as_ref().len();
        }
        let mut group = Vec::with_capacity(total);
        for payload in payloads {
            let payload = payload.as_ref();
            // Validated above; re-deriving keeps the header honest.
            let len = frame_payload_len(payload.len())?;
            group.extend_from_slice(&len.to_le_bytes());
            group.extend_from_slice(&crc32c(payload).to_le_bytes());
            group.extend_from_slice(payload);
        }
        self.file.write_all(&group)?;
        self.unsynced_frames += payloads.len();
        let (synced, sync_micros) = if self.due_for_sync() {
            let sw = self.clock.start();
            self.file.sync_data()?;
            let micros = sw.elapsed_micros();
            self.unsynced_frames = 0;
            self.last_sync_us = self.clock.now_micros();
            (true, micros)
        } else {
            (false, 0)
        };
        self.clean_len += offset_u64(group.len());
        Ok(GroupAppend {
            frames: payloads.len(),
            bytes: offset_u64(group.len()),
            synced,
            sync_micros,
        })
    }

    /// Whether the policy wants an `fsync` at this group boundary.
    fn due_for_sync(&self) -> bool {
        match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::OsManaged => false,
            SyncPolicy::GroupCommit {
                max_events,
                max_delay,
            } => {
                let delay_us = u64::try_from(max_delay.as_micros()).unwrap_or(u64::MAX);
                self.unsynced_frames >= max_events.max(1)
                    || self.clock.now_micros().saturating_sub(self.last_sync_us) >= delay_us
            }
        }
    }

    /// Flushes pending appends to stable storage.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] on sync failure.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.file.sync_data()?;
        self.unsynced_frames = 0;
        self.last_sync_us = self.clock.now_micros();
        Ok(())
    }

    /// Re-reads and validates the whole log from disk.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] on read failure. Corruption is not an
    /// error: it terminates the scan and is reported via
    /// [`WalContents::torn_tail`].
    pub fn read_all(&mut self) -> StorageResult<WalContents> {
        let contents = scan(&mut self.file)?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(contents)
    }

    /// Truncates the log to zero length (used after a snapshot compaction).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] on failure.
    pub fn reset(&mut self) -> StorageResult<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.clean_len = 0;
        self.unsynced_frames = 0;
        self.last_sync_us = self.clock.now_micros();
        Ok(())
    }
}

/// Validates a payload length for encoding into a frame header.
///
/// Factored out of [`Wal::append`] so the boundary can be tested without
/// materializing multi-gigabyte payloads.
///
/// # Errors
///
/// Returns [`StorageError::FrameTooLarge`] when `payload_len` exceeds
/// [`MAX_FRAME`]. Before this check existed, a payload of exactly
/// `u32::MAX + 1` bytes encoded a length field of 0 — the frame's own
/// payload would be replayed as empty and every byte after the header
/// misparsed as garbage frames.
fn frame_payload_len(payload_len: usize) -> StorageResult<u32> {
    match u32::try_from(payload_len) {
        Ok(len) if len <= MAX_FRAME => Ok(len),
        _ => Err(StorageError::FrameTooLarge {
            len: offset_u64(payload_len),
            max: MAX_FRAME,
        }),
    }
}

fn scan(file: &mut File) -> StorageResult<WalContents> {
    file.seek(SeekFrom::Start(0))?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let mut clean_len = 0u64;
    let mut torn_tail = false;
    while pos < data.len() {
        if pos + FRAME_HEADER > data.len() {
            torn_tail = true;
            break;
        }
        let (Ok(len_bytes), Ok(crc_bytes)) = (
            <[u8; 4]>::try_from(&data[pos..pos + 4]),
            <[u8; 4]>::try_from(&data[pos + 4..pos + 8]),
        ) else {
            // Unreachable: the header-length check above guarantees both
            // slices are exactly four bytes. Treated as a torn tail rather
            // than a panic path (L002).
            torn_tail = true;
            break;
        };
        let len = u32::from_le_bytes(len_bytes);
        let crc = u32::from_le_bytes(crc_bytes);
        if len > MAX_FRAME {
            torn_tail = true;
            break;
        }
        let start = pos + FRAME_HEADER;
        let Some(end) = usize_from_u64(u64::from(len)).and_then(|l| start.checked_add(l)) else {
            torn_tail = true;
            break;
        };
        if end > data.len() {
            torn_tail = true;
            break;
        }
        let payload = &data[start..end];
        if crc32c(payload) != crc {
            torn_tail = true;
            break;
        }
        frames.push(payload.to_vec());
        pos = end;
        clean_len = offset_u64(end);
    }
    Ok(WalContents {
        frames,
        clean_len,
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "bp-wal-test-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
        fn file(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn append_and_read_back() {
        let dir = TempDir::new("basic");
        let mut wal = Wal::open(dir.file("a.wal"), SyncPolicy::Always).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"").unwrap();
        wal.append(b"three").unwrap();
        let contents = wal.read_all().unwrap();
        assert_eq!(
            contents.frames,
            vec![b"one".to_vec(), vec![], b"three".to_vec()]
        );
        assert!(!contents.torn_tail);
    }

    #[test]
    fn reopen_preserves_frames() {
        let dir = TempDir::new("reopen");
        let path = dir.file("a.wal");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(b"persisted").unwrap();
        }
        let mut wal = Wal::open(&path, SyncPolicy::OsManaged).unwrap();
        let contents = wal.read_all().unwrap();
        assert_eq!(contents.frames, vec![b"persisted".to_vec()]);
        // And appends continue after the existing tail.
        wal.append(b"more").unwrap();
        assert_eq!(wal.read_all().unwrap().frames.len(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = TempDir::new("torn");
        let path = dir.file("a.wal");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(b"good one").unwrap();
            wal.append(b"good two").unwrap();
        }
        // Simulate a crash mid-append: write a partial frame.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[42u8, 0, 0]).unwrap();
        }
        let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
        let contents = wal.read_all().unwrap();
        assert_eq!(contents.frames.len(), 2, "both committed frames survive");
        assert!(!contents.torn_tail, "tail was truncated at open");
        // The file is physically truncated.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), contents.clean_len);
    }

    #[test]
    fn corrupt_payload_stops_replay_at_last_good_frame() {
        let dir = TempDir::new("bitrot");
        let path = dir.file("a.wal");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(b"frame-a").unwrap();
            wal.append(b"frame-b").unwrap();
        }
        // Flip a bit in the second frame's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload_start = 8 + 7 + 8; // frame1 hdr + payload + frame2 hdr
        bytes[second_payload_start] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
        let contents = wal.read_all().unwrap();
        assert_eq!(contents.frames, vec![b"frame-a".to_vec()]);
    }

    #[test]
    fn absurd_length_field_treated_as_torn() {
        let dir = TempDir::new("hugelen");
        let path = dir.file("a.wal");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
        let contents = wal.read_all().unwrap();
        assert!(contents.frames.is_empty());
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = TempDir::new("reset");
        let mut wal = Wal::open(dir.file("a.wal"), SyncPolicy::Always).unwrap();
        wal.append(b"x").unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        assert!(wal.read_all().unwrap().frames.is_empty());
        wal.append(b"y").unwrap();
        assert_eq!(wal.read_all().unwrap().frames, vec![b"y".to_vec()]);
    }

    #[test]
    fn len_bytes_tracks_appends() {
        let dir = TempDir::new("len");
        let mut wal = Wal::open(dir.file("a.wal"), SyncPolicy::OsManaged).unwrap();
        assert_eq!(wal.len_bytes(), 0);
        wal.append(b"12345").unwrap();
        assert_eq!(wal.len_bytes(), 8 + 5);
        wal.sync().unwrap();
    }

    #[test]
    fn payload_lengths_around_u32_max_are_rejected_not_truncated() {
        // Regression: `payload.len() as u32` silently truncated the length
        // field, so a payload of u32::MAX + 1 bytes wrote a header claiming
        // length 0. Checked without allocating 4 GiB.
        assert!(matches!(
            frame_payload_len(u64::MAX as usize),
            Err(StorageError::FrameTooLarge { .. })
        ));
        let wrap = usize::try_from(u64::from(u32::MAX) + 1).unwrap();
        assert!(matches!(
            frame_payload_len(wrap),
            Err(StorageError::FrameTooLarge { len, max: MAX_FRAME })
                if len == u64::from(u32::MAX) + 1
        ));
        // Boundary: exactly MAX_FRAME is allowed, one more is not.
        let max = usize::try_from(MAX_FRAME).unwrap();
        assert_eq!(frame_payload_len(max).unwrap(), MAX_FRAME);
        assert!(frame_payload_len(max + 1).is_err());
        assert_eq!(frame_payload_len(0).unwrap(), 0);
    }

    #[test]
    fn oversized_append_is_refused_and_log_stays_intact() {
        let dir = TempDir::new("oversize");
        let mut wal = Wal::open(dir.file("a.wal"), SyncPolicy::Always).unwrap();
        wal.append(b"before").unwrap();
        let len_before = wal.len_bytes();
        let huge = vec![0u8; usize::try_from(MAX_FRAME).unwrap() + 1];
        assert!(matches!(
            wal.append(&huge),
            Err(StorageError::FrameTooLarge { .. })
        ));
        // Nothing was written: committed length unchanged, replay clean.
        assert_eq!(wal.len_bytes(), len_before);
        let contents = wal.read_all().unwrap();
        assert_eq!(contents.frames, vec![b"before".to_vec()]);
        assert!(!contents.torn_tail);
        // And the log still accepts normal appends afterwards.
        wal.append(b"after").unwrap();
        assert_eq!(wal.read_all().unwrap().frames.len(), 2);
    }

    #[test]
    fn append_group_writes_one_frame_per_payload() {
        let dir = TempDir::new("group");
        let mut wal = Wal::open(dir.file("a.wal"), SyncPolicy::OsManaged).unwrap();
        let receipt = wal
            .append_group(&[b"alpha".as_slice(), b"".as_slice(), b"gamma".as_slice()])
            .unwrap();
        assert_eq!(receipt.frames, 3);
        assert_eq!(receipt.bytes, (8 + 5) + 8 + (8 + 5));
        assert!(!receipt.synced, "OsManaged never syncs at the boundary");
        let contents = wal.read_all().unwrap();
        assert_eq!(
            contents.frames,
            vec![b"alpha".to_vec(), vec![], b"gamma".to_vec()]
        );
        // An empty group is a no-op.
        let empty: &[&[u8]] = &[];
        assert_eq!(wal.append_group(empty).unwrap().frames, 0);
        assert_eq!(wal.read_all().unwrap().frames.len(), 3);
    }

    #[test]
    fn append_group_refuses_oversized_member_without_writing() {
        let dir = TempDir::new("group-oversize");
        let mut wal = Wal::open(dir.file("a.wal"), SyncPolicy::OsManaged).unwrap();
        let huge = vec![0u8; usize::try_from(MAX_FRAME).unwrap() + 1];
        let group = vec![b"ok".to_vec(), huge];
        assert!(matches!(
            wal.append_group(&group),
            Err(StorageError::FrameTooLarge { .. })
        ));
        // Nothing — not even the valid first member — reached the file.
        assert_eq!(wal.len_bytes(), 0);
        assert!(wal.read_all().unwrap().frames.is_empty());
    }

    #[test]
    fn group_commit_policy_syncs_on_event_threshold() {
        let dir = TempDir::new("group-events");
        let policy = SyncPolicy::GroupCommit {
            max_events: 4,
            max_delay: Duration::from_secs(3600),
        };
        let mut wal = Wal::open(dir.file("a.wal"), policy).unwrap();
        // 3 unsynced frames: below the threshold, no sync.
        let r = wal
            .append_group(&[b"a".as_slice(), b"b".as_slice(), b"c".as_slice()])
            .unwrap();
        assert!(!r.synced);
        // One more crosses max_events = 4.
        let r = wal.append_group(&[b"d".as_slice()]).unwrap();
        assert!(r.synced);
        // Counter reset: the next small group doesn't sync again.
        let r = wal.append_group(&[b"e".as_slice()]).unwrap();
        assert!(!r.synced);
    }

    #[test]
    fn group_commit_policy_syncs_on_delay() {
        let dir = TempDir::new("group-delay");
        let policy = SyncPolicy::GroupCommit {
            max_events: 1_000_000,
            max_delay: Duration::ZERO,
        };
        let mut wal = Wal::open(dir.file("a.wal"), policy).unwrap();
        // Zero delay: every boundary is past due.
        let r = wal.append_group(&[b"a".as_slice()]).unwrap();
        assert!(r.synced);
    }

    #[test]
    fn group_commit_delay_is_mock_clock_driven() {
        let dir = TempDir::new("group-mock");
        let policy = SyncPolicy::GroupCommit {
            max_events: 1_000_000,
            max_delay: Duration::from_millis(5),
        };
        let (clock, mock) = bp_obs::ClockHandle::mock();
        let mut wal = Wal::open_with_clock(dir.file("a.wal"), policy, clock).unwrap();
        let r = wal.append_group(&[b"a".as_slice()]).unwrap();
        assert!(!r.synced, "inside the delay window");
        mock.advance(Duration::from_millis(5));
        let r = wal.append_group(&[b"b".as_slice()]).unwrap();
        assert!(r.synced, "delay elapsed forces the sync");
        // The sync reset the window: immediately after, no sync again.
        let r = wal.append_group(&[b"c".as_slice()]).unwrap();
        assert!(!r.synced);
    }

    #[test]
    fn always_policy_syncs_every_group() {
        let dir = TempDir::new("group-always");
        let mut wal = Wal::open(dir.file("a.wal"), SyncPolicy::Always).unwrap();
        let r = wal
            .append_group(&[b"a".as_slice(), b"b".as_slice()])
            .unwrap();
        assert!(r.synced);
    }

    #[test]
    fn truncating_inside_a_frame_group_recovers_the_complete_prefix() {
        // Property (ISSUE 10 satellite): cut the file at EVERY byte offset
        // inside a multi-frame group — recovery must yield exactly the
        // complete-prefix frames, never a partial or reordered set.
        let dir = TempDir::new("group-torn");
        let path = dir.file("full.wal");
        let payloads: Vec<Vec<u8>> = (0..7)
            .map(|i| format!("group-frame-{i}-{}", "x".repeat(i * 3)).into_bytes())
            .collect();
        {
            let mut wal = Wal::open(&path, SyncPolicy::OsManaged).unwrap();
            // Two groups: 4 frames + 3 frames.
            wal.append_group(&payloads[..4]).unwrap();
            wal.append_group(&payloads[4..]).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Frame boundaries for the expected-prefix computation.
        let mut boundaries = vec![0usize];
        for p in &payloads {
            boundaries.push(boundaries.last().unwrap() + FRAME_HEADER + p.len());
        }
        for cut in 0..=full.len() {
            let cut_path = dir.file(&format!("cut-{cut}.wal"));
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let mut wal = Wal::open(&cut_path, SyncPolicy::OsManaged).unwrap();
            let contents = wal.read_all().unwrap();
            let expected = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(
                contents.frames.len(),
                expected,
                "cut at byte {cut}: complete-prefix frame count"
            );
            for (frame, want) in contents.frames.iter().zip(&payloads) {
                assert_eq!(frame, want);
            }
            // Appends continue cleanly after recovery.
            wal.append(b"after").unwrap();
            assert_eq!(wal.read_all().unwrap().frames.len(), expected + 1);
        }
    }

    #[test]
    fn every_prefix_truncation_recovers_cleanly() {
        // Property: cutting the file at ANY byte keeps a prefix of frames.
        let dir = TempDir::new("prefix");
        let path = dir.file("a.wal");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            for i in 0..5 {
                wal.append(format!("frame-{i}").as_bytes()).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            let cut_path = dir.file(&format!("cut-{cut}.wal"));
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let mut wal = Wal::open(&cut_path, SyncPolicy::OsManaged).unwrap();
            let contents = wal.read_all().unwrap();
            // Frames must be an exact prefix of the originals.
            for (i, frame) in contents.frames.iter().enumerate() {
                assert_eq!(frame, format!("frame-{i}").as_bytes());
            }
            assert!(contents.frames.len() <= 5);
        }
    }
}
