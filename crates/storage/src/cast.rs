//! Checked integer conversions for the codec layer.
//!
//! The codec files (`varint`, `record`, `wal`, `crc`) are forbidden from
//! using bare `as` casts (bp-lint L003): a silent truncation there changes
//! on-disk bytes. The conversions they need are concentrated here, where
//! each one can state why it is lossless or how it fails.

/// A byte offset or length as a `u64` for error reporting and size
/// accounting. `usize` is at most 64 bits on every supported target, so
/// this is lossless; the saturation path is unreachable and exists only to
/// avoid a panic route.
pub(crate) fn offset_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// A decoded `u64` count/length as a `usize`, or `None` when it exceeds
/// the address space (only possible on 32-bit targets; always corrupt
/// data, since no real payload approaches 4 GiB).
pub(crate) fn usize_from_u64(n: u64) -> Option<usize> {
    usize::try_from(n).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_is_identity_in_u64_range() {
        assert_eq!(offset_u64(0), 0);
        assert_eq!(offset_u64(123_456), 123_456);
    }

    #[test]
    fn usize_from_u64_roundtrips_in_range() {
        assert_eq!(usize_from_u64(42), Some(42));
        #[cfg(target_pointer_width = "64")]
        assert_eq!(usize_from_u64(u64::MAX), Some(usize::MAX));
    }
}
