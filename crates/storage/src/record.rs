//! Log-record format: the operations that mutate a provenance store.
//!
//! The store is a replayable sequence of [`Op`]s. String payloads that
//! repeat (URLs, attribute keys) go through the interner and appear in the
//! log as [`Op::DefineString`] records followed by references; timestamps
//! are delta-encoded against the previous record ([`Codec`] carries that
//! state), since history events are nearly sorted in time and deltas
//! compress far better than absolute microsecond counts.

use crate::cast::{offset_u64, usize_from_u64};
use crate::error::{StorageError, StorageResult};
use crate::varint;
use bp_graph::{AttrValue, EdgeKind, NodeId, NodeKind, Timestamp, Version};

/// One replayable store mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Defines interned string `id` (ids are dense and in order).
    DefineString {
        /// The id being defined; must be the interner's next id at replay.
        id: u32,
        /// The string payload.
        value: String,
    },
    /// Appends a node. The node's id is implicit: nodes are numbered
    /// densely in log order, so replay assigns the same ids.
    AddNode {
        /// Node kind.
        kind: NodeKind,
        /// Interned id of the node's primary key (URL, query, path, …).
        key: u32,
        /// Version of this instance (§3.1).
        version: Version,
        /// Opening timestamp.
        open_at: Timestamp,
        /// Attributes as (interned key id, value) pairs, sorted by key id.
        attrs: Vec<(u32, AttrValue)>,
    },
    /// Appends an edge (same implicit dense numbering as nodes).
    AddEdge {
        /// Derived endpoint.
        src: NodeId,
        /// Derivation-source endpoint.
        dst: NodeId,
        /// The generating action.
        kind: EdgeKind,
        /// When the action occurred.
        at: Timestamp,
        /// Attributes as (interned key id, value) pairs.
        attrs: Vec<(u32, AttrValue)>,
    },
    /// Closes a node's open interval (§3.2's missing "close" record).
    CloseNode {
        /// The node being closed.
        node: NodeId,
        /// Closing timestamp.
        at: Timestamp,
    },
    /// Sets or updates one attribute on an existing node (e.g. a title
    /// that arrives after the page loads, or a bumped visit counter).
    SetNodeAttr {
        /// The node to update.
        node: NodeId,
        /// Interned attribute key id.
        key: u32,
        /// New value.
        value: AttrValue,
    },
    /// Redacts a node: its key becomes the interned `replacement` and its
    /// attributes are dropped (§4 privacy). Structure is preserved.
    RedactNode {
        /// The node to redact.
        node: NodeId,
        /// Interned id of the replacement key.
        replacement: u32,
    },
}

const TAG_DEFINE_STRING: u8 = 0;
const TAG_ADD_NODE: u8 = 1;
const TAG_ADD_EDGE: u8 = 2;
const TAG_CLOSE_NODE: u8 = 3;
const TAG_SET_NODE_ATTR: u8 = 4;
const TAG_REDACT_NODE: u8 = 5;

const ATTR_STR: u8 = 0;
const ATTR_INT: u8 = 1;
const ATTR_FLOAT: u8 = 2;
const ATTR_BOOL_FALSE: u8 = 3;
const ATTR_BOOL_TRUE: u8 = 4;
const ATTR_BYTES: u8 = 5;

/// Stateful encoder/decoder for [`Op`]s.
///
/// Carries the previous timestamp for delta encoding; encode and decode
/// must process the same op sequence from the same starting state (a fresh
/// `Codec` at the head of the log, or one reset after a snapshot).
#[derive(Debug, Clone, Default)]
pub struct Codec {
    last_micros: i64,
}

impl Codec {
    /// Creates a codec at the log-head state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `op`, appending to `out`.
    pub fn encode(&mut self, op: &Op, out: &mut Vec<u8>) {
        match op {
            Op::DefineString { id, value } => {
                out.push(TAG_DEFINE_STRING);
                varint::write_u64(out, u64::from(*id));
                varint::write_str(out, value);
            }
            Op::AddNode {
                kind,
                key,
                version,
                open_at,
                attrs,
            } => {
                out.push(TAG_ADD_NODE);
                out.push(kind.code());
                varint::write_u64(out, u64::from(*key));
                varint::write_u64(out, u64::from(version.number()));
                self.write_ts(out, *open_at);
                write_attrs(out, attrs);
            }
            Op::AddEdge {
                src,
                dst,
                kind,
                at,
                attrs,
            } => {
                out.push(TAG_ADD_EDGE);
                varint::write_u64(out, u64::from(src.index()));
                varint::write_u64(out, u64::from(dst.index()));
                out.push(kind.code());
                self.write_ts(out, *at);
                write_attrs(out, attrs);
            }
            Op::CloseNode { node, at } => {
                out.push(TAG_CLOSE_NODE);
                varint::write_u64(out, u64::from(node.index()));
                self.write_ts(out, *at);
            }
            Op::SetNodeAttr { node, key, value } => {
                out.push(TAG_SET_NODE_ATTR);
                varint::write_u64(out, u64::from(node.index()));
                varint::write_u64(out, u64::from(*key));
                write_attr_value(out, value);
            }
            Op::RedactNode { node, replacement } => {
                out.push(TAG_REDACT_NODE);
                varint::write_u64(out, u64::from(node.index()));
                varint::write_u64(out, u64::from(*replacement));
            }
        }
    }

    /// Decodes one op from `buf` at `*pos`, advancing `*pos`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Corrupt`] on truncation, unknown tags, or
    /// malformed payloads.
    pub fn decode(&mut self, buf: &[u8], pos: &mut usize) -> StorageResult<Op> {
        let at = offset_u64(*pos);
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| StorageError::corrupt(at, "missing op tag"))?;
        *pos += 1;
        match tag {
            TAG_DEFINE_STRING => {
                let id = varint::read_u32(buf, pos)?;
                let value = varint::read_str(buf, pos)?.to_owned();
                Ok(Op::DefineString { id, value })
            }
            TAG_ADD_NODE => {
                let kind_code = read_byte(buf, pos)?;
                let kind = NodeKind::from_code(kind_code)
                    .ok_or_else(|| StorageError::corrupt(at, "bad node kind"))?;
                let key = varint::read_u32(buf, pos)?;
                let version = Version::new(varint::read_u32(buf, pos)?);
                let open_at = self.read_ts(buf, pos)?;
                let attrs = read_attrs(buf, pos)?;
                Ok(Op::AddNode {
                    kind,
                    key,
                    version,
                    open_at,
                    attrs,
                })
            }
            TAG_ADD_EDGE => {
                let src = NodeId::new(varint::read_u32(buf, pos)?);
                let dst = NodeId::new(varint::read_u32(buf, pos)?);
                let kind_code = read_byte(buf, pos)?;
                let kind = EdgeKind::from_code(kind_code)
                    .ok_or_else(|| StorageError::corrupt(at, "bad edge kind"))?;
                let ts = self.read_ts(buf, pos)?;
                let attrs = read_attrs(buf, pos)?;
                Ok(Op::AddEdge {
                    src,
                    dst,
                    kind,
                    at: ts,
                    attrs,
                })
            }
            TAG_CLOSE_NODE => {
                let node = NodeId::new(varint::read_u32(buf, pos)?);
                let ts = self.read_ts(buf, pos)?;
                Ok(Op::CloseNode { node, at: ts })
            }
            TAG_SET_NODE_ATTR => {
                let node = NodeId::new(varint::read_u32(buf, pos)?);
                let key = varint::read_u32(buf, pos)?;
                let value = read_attr_value(buf, pos)?;
                Ok(Op::SetNodeAttr { node, key, value })
            }
            TAG_REDACT_NODE => {
                let node = NodeId::new(varint::read_u32(buf, pos)?);
                let replacement = varint::read_u32(buf, pos)?;
                Ok(Op::RedactNode { node, replacement })
            }
            other => Err(StorageError::corrupt(at, format!("unknown op tag {other}"))),
        }
    }

    fn write_ts(&mut self, out: &mut Vec<u8>, ts: Timestamp) {
        let micros = ts.as_micros();
        varint::write_i64(out, micros - self.last_micros);
        self.last_micros = micros;
    }

    fn read_ts(&mut self, buf: &[u8], pos: &mut usize) -> StorageResult<Timestamp> {
        let delta = varint::read_i64(buf, pos)?;
        self.last_micros += delta;
        Ok(Timestamp::from_micros(self.last_micros))
    }
}

fn read_byte(buf: &[u8], pos: &mut usize) -> StorageResult<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| StorageError::corrupt(offset_u64(*pos), "truncated byte"))?;
    *pos += 1;
    Ok(b)
}

pub(crate) fn write_attrs(out: &mut Vec<u8>, attrs: &[(u32, AttrValue)]) {
    varint::write_u64(out, offset_u64(attrs.len()));
    for (key, value) in attrs {
        varint::write_u64(out, u64::from(*key));
        write_attr_value(out, value);
    }
}

pub(crate) fn read_attrs(buf: &[u8], pos: &mut usize) -> StorageResult<Vec<(u32, AttrValue)>> {
    // Guard against absurd counts from corrupt data before allocating.
    let count = usize_from_u64(varint::read_u64(buf, pos)?)
        .filter(|&c| c <= buf.len().saturating_sub(*pos))
        .ok_or_else(|| StorageError::corrupt(offset_u64(*pos), "attr count exceeds buffer"))?;
    let mut attrs = Vec::with_capacity(count);
    for _ in 0..count {
        let key = varint::read_u32(buf, pos)?;
        let value = read_attr_value(buf, pos)?;
        attrs.push((key, value));
    }
    Ok(attrs)
}

fn write_attr_value(out: &mut Vec<u8>, value: &AttrValue) {
    match value {
        AttrValue::Str(s) => {
            out.push(ATTR_STR);
            varint::write_str(out, s);
        }
        AttrValue::Int(i) => {
            out.push(ATTR_INT);
            varint::write_i64(out, *i);
        }
        AttrValue::Float(f) => {
            out.push(ATTR_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        AttrValue::Bool(false) => out.push(ATTR_BOOL_FALSE),
        AttrValue::Bool(true) => out.push(ATTR_BOOL_TRUE),
        AttrValue::Bytes(b) => {
            out.push(ATTR_BYTES);
            varint::write_bytes(out, b);
        }
    }
}

fn read_attr_value(buf: &[u8], pos: &mut usize) -> StorageResult<AttrValue> {
    let at = offset_u64(*pos);
    let tag = read_byte(buf, pos)?;
    match tag {
        ATTR_STR => Ok(AttrValue::Str(varint::read_str(buf, pos)?.to_owned())),
        ATTR_INT => Ok(AttrValue::Int(varint::read_i64(buf, pos)?)),
        ATTR_FLOAT => {
            let end = *pos + 8;
            if end > buf.len() {
                return Err(StorageError::corrupt(at, "truncated float"));
            }
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&buf[*pos..end]);
            *pos = end;
            Ok(AttrValue::Float(f64::from_le_bytes(bytes)))
        }
        ATTR_BOOL_FALSE => Ok(AttrValue::Bool(false)),
        ATTR_BOOL_TRUE => Ok(AttrValue::Bool(true)),
        ATTR_BYTES => Ok(AttrValue::Bytes(varint::read_bytes(buf, pos)?.to_vec())),
        other => Err(StorageError::corrupt(
            at,
            format!("unknown attr tag {other}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(ops: &[Op]) -> Vec<Op> {
        let mut enc = Codec::new();
        let mut buf = Vec::new();
        for op in ops {
            enc.encode(op, &mut buf);
        }
        let mut dec = Codec::new();
        let mut pos = 0;
        let mut out = Vec::new();
        while pos < buf.len() {
            out.push(dec.decode(&buf, &mut pos).unwrap());
        }
        assert_eq!(pos, buf.len());
        out
    }

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::DefineString {
                id: 0,
                value: "http://a.example/".to_owned(),
            },
            Op::DefineString {
                id: 1,
                value: "title".to_owned(),
            },
            Op::AddNode {
                kind: NodeKind::PageVisit,
                key: 0,
                version: Version::FIRST,
                open_at: Timestamp::from_micros(1_000_000),
                attrs: vec![(1, AttrValue::Str("Example".to_owned()))],
            },
            Op::AddNode {
                kind: NodeKind::Download,
                key: 0,
                version: Version::new(2),
                open_at: Timestamp::from_micros(1_000_500),
                attrs: vec![],
            },
            Op::AddEdge {
                src: NodeId::new(1),
                dst: NodeId::new(0),
                kind: EdgeKind::DownloadFrom,
                at: Timestamp::from_micros(1_000_700),
                attrs: vec![(1, AttrValue::Int(7))],
            },
            Op::CloseNode {
                node: NodeId::new(0),
                at: Timestamp::from_micros(2_000_000),
            },
            Op::SetNodeAttr {
                node: NodeId::new(0),
                key: 1,
                value: AttrValue::Float(2.5),
            },
        ]
    }

    #[test]
    fn ops_roundtrip() {
        let ops = sample_ops();
        assert_eq!(roundtrip(&ops), ops);
    }

    #[test]
    fn delta_timestamps_compress_nearby_events() {
        let mut codec = Codec::new();
        let mut buf_near = Vec::new();
        // Two events 100 µs apart: second timestamp costs 1 byte.
        codec.encode(
            &Op::CloseNode {
                node: NodeId::new(0),
                at: Timestamp::from_micros(1_700_000_000_000_000),
            },
            &mut buf_near,
        );
        let len_first = buf_near.len();
        codec.encode(
            &Op::CloseNode {
                node: NodeId::new(0),
                at: Timestamp::from_micros(1_700_000_000_000_100),
            },
            &mut buf_near,
        );
        let second_len = buf_near.len() - len_first;
        assert!(
            second_len <= 4,
            "nearby event should be tiny, got {second_len}"
        );
        assert!(len_first >= 9, "first absolute timestamp is large");
    }

    #[test]
    fn unknown_tags_are_corrupt() {
        let mut dec = Codec::new();
        let mut pos = 0;
        assert!(dec.decode(&[200u8], &mut pos).is_err());
        // Unknown attr tag inside SetNodeAttr.
        let buf = vec![TAG_SET_NODE_ATTR, 0, 0, 99];
        let mut pos = 0;
        let mut dec = Codec::new();
        assert!(dec.decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn truncated_payloads_are_corrupt() {
        let ops = sample_ops();
        let mut enc = Codec::new();
        let mut buf = Vec::new();
        for op in &ops {
            enc.encode(op, &mut buf);
        }
        // Every strict prefix must fail cleanly somewhere, never panic.
        for cut in 0..buf.len() {
            let mut dec = Codec::new();
            let mut pos = 0;
            let mut decoded = 0;
            while let Ok(_op) = dec.decode(&buf[..cut], &mut pos) {
                decoded += 1;
                if pos >= cut {
                    break;
                }
            }
            assert!(decoded <= ops.len());
        }
    }

    #[test]
    fn bad_kind_codes_are_corrupt() {
        // AddNode with kind code 99.
        let buf = vec![TAG_ADD_NODE, 99];
        let mut dec = Codec::new();
        let mut pos = 0;
        assert!(dec.decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn absurd_attr_count_rejected_before_allocation() {
        let mut buf = vec![TAG_ADD_NODE, NodeKind::Page.code()];
        varint::write_u64(&mut buf, 0); // key
        varint::write_u64(&mut buf, 0); // version
        varint::write_i64(&mut buf, 0); // ts delta
        varint::write_u64(&mut buf, u64::MAX); // attr count
        let mut dec = Codec::new();
        let mut pos = 0;
        assert!(dec.decode(&buf, &mut pos).is_err());
    }

    fn attr_value_strategy() -> impl Strategy<Value = AttrValue> {
        prop_oneof![
            ".{0,20}".prop_map(AttrValue::Str),
            any::<i64>().prop_map(AttrValue::Int),
            any::<f64>()
                .prop_filter("NaN breaks PartialEq", |f| !f.is_nan())
                .prop_map(AttrValue::Float),
            any::<bool>().prop_map(AttrValue::Bool),
            prop::collection::vec(any::<u8>(), 0..20).prop_map(AttrValue::Bytes),
        ]
    }

    fn attrs_strategy() -> impl Strategy<Value = Vec<(u32, AttrValue)>> {
        prop::collection::vec((any::<u32>(), attr_value_strategy()), 0..4)
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u32>(), ".{0,30}").prop_map(|(id, value)| Op::DefineString { id, value }),
            (
                0u8..7,
                any::<u32>(),
                any::<u32>(),
                any::<i64>(),
                attrs_strategy()
            )
                .prop_map(|(k, key, v, ts, attrs)| Op::AddNode {
                    kind: NodeKind::from_code(k).unwrap(),
                    key,
                    version: Version::new(v),
                    open_at: Timestamp::from_micros(ts / 2),
                    attrs,
                }),
            (
                any::<u32>(),
                any::<u32>(),
                0u8..15,
                any::<i64>(),
                attrs_strategy()
            )
                .prop_map(|(src, dst, k, ts, attrs)| Op::AddEdge {
                    src: NodeId::new(src),
                    dst: NodeId::new(dst),
                    kind: EdgeKind::from_code(k).unwrap(),
                    at: Timestamp::from_micros(ts / 2),
                    attrs,
                }),
            (any::<u32>(), any::<i64>()).prop_map(|(n, ts)| Op::CloseNode {
                node: NodeId::new(n),
                at: Timestamp::from_micros(ts / 2),
            }),
            (any::<u32>(), any::<u32>()).prop_map(|(n, r)| Op::RedactNode {
                node: NodeId::new(n),
                replacement: r,
            }),
        ]
    }

    proptest! {
        /// Arbitrary op sequences roundtrip exactly (delta state included).
        #[test]
        fn arbitrary_ops_roundtrip(ops in prop::collection::vec(op_strategy(), 0..40)) {
            prop_assert_eq!(roundtrip(&ops), ops);
        }

        /// Decoding arbitrary bytes never panics.
        #[test]
        fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
            let mut dec = Codec::new();
            let mut pos = 0;
            while pos < bytes.len() {
                if dec.decode(&bytes, &mut pos).is_err() {
                    break;
                }
            }
        }
    }
}
