//! # bp-storage — the durable provenance graph store
//!
//! The paper's prototype stored its "model browser provenance schema … as a
//! SQLite relational database" (§4). This crate is the equivalent substrate
//! built from scratch for the reproduction (SQLite is a substrate the paper
//! did not contribute; see DESIGN.md for the substitution argument): a
//! write-ahead-logged, snapshot-compacted, crash-recoverable store for the
//! homogeneous provenance graph, with the storage-research flourishes §3.1
//! calls for:
//!
//! - [`Wal`] — checksummed append-only log with torn-tail recovery;
//! - [`Codec`]/[`Op`] — compact record format (varints, interned strings,
//!   delta-encoded timestamps);
//! - [`StringInterner`]/[`ShardedInterner`] — dictionary compression of
//!   repeated strings (the sharded variant takes `&self` so capture no
//!   longer serializes against queries);
//! - [`factorize`] — Chapman-style structural factorization of repeated
//!   edge patterns (ablation A2);
//! - [`KeyIndex`]/[`TimeIndex`] — URL lookup and interval-overlap indexes
//!   (the substrate of time-contextual search, §2.3);
//! - [`ProvenanceStore`] — the façade tying graph, log, and indexes
//!   together with exact crash recovery.
//!
//! # Example
//!
//! ```
//! use bp_storage::{ProvenanceStore, SyncPolicy};
//! use bp_graph::{NodeKind, EdgeKind, Timestamp};
//!
//! # fn main() -> Result<(), bp_storage::StorageError> {
//! let dir = std::env::temp_dir().join(format!("bp-lib-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut store = ProvenanceStore::open(&dir, SyncPolicy::OsManaged)?;
//! let visit = store.add_visit("http://example.com/", Timestamp::from_secs(1))?;
//! let dl = store.add_node(NodeKind::Download, "/tmp/f.zip", Timestamp::from_secs(2), &[])?;
//! store.add_edge(dl, visit, EdgeKind::DownloadFrom, Timestamp::from_secs(2))?;
//! assert_eq!(store.graph().edge_count(), 1);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cast;
mod crc;
mod error;
mod factorize;
mod index;
mod intern;
mod record;
mod snapshot;
mod store;
pub mod varint;
mod wal;

pub use crc::crc32c;
pub use error::{StorageError, StorageResult};
pub use factorize::{defactorize, factorize, raw_structure_size, FactorizedEdges};
pub use index::{KeyIndex, TimeIndex};
pub use intern::{ShardedInterner, StringInterner};
pub use record::{Codec, Op};
pub use store::{ProvenanceStore, SizeReport};
pub use wal::{GroupAppend, SyncPolicy, Wal, WalContents};

#[cfg(test)]
mod proptests {
    use super::*;
    use bp_graph::{EdgeKind, NodeKind, Timestamp};
    use proptest::prelude::*;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "bp-storage-prop-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// A random mutation script against the store.
    #[derive(Debug, Clone)]
    enum Cmd {
        Visit(u8),
        Edge(u8, u8, u8),
        Close(u8),
        Attr(u8, u8),
        Snapshot,
    }

    fn cmd_strategy() -> impl Strategy<Value = Cmd> {
        prop_oneof![
            4 => (0u8..12).prop_map(Cmd::Visit),
            4 => (any::<u8>(), any::<u8>(), 0u8..15).prop_map(|(a, b, k)| Cmd::Edge(a, b, k)),
            2 => any::<u8>().prop_map(Cmd::Close),
            2 => (any::<u8>(), any::<u8>()).prop_map(|(n, v)| Cmd::Attr(n, v)),
            1 => Just(Cmd::Snapshot),
        ]
    }

    fn run_script(store: &mut ProvenanceStore, cmds: &[Cmd]) {
        let mut clock = 0i64;
        for cmd in cmds {
            clock += 1;
            let ts = Timestamp::from_secs(clock);
            match cmd {
                Cmd::Visit(u) => {
                    store.add_visit(&format!("http://p{u}/"), ts).unwrap();
                }
                Cmd::Edge(a, b, k) => {
                    let n = store.graph().node_count() as u32;
                    if n == 0 {
                        continue;
                    }
                    let src = bp_graph::NodeId::new(*a as u32 % n);
                    let dst = bp_graph::NodeId::new(*b as u32 % n);
                    let kind = EdgeKind::from_code(*k).unwrap_or(EdgeKind::Link);
                    let _ = store.add_edge(src, dst, kind, ts);
                }
                Cmd::Close(u) => {
                    let n = store.graph().node_count() as u32;
                    if n == 0 {
                        continue;
                    }
                    let node = bp_graph::NodeId::new(*u as u32 % n);
                    // close_at panics if before open; guard like the
                    // capture layer does.
                    let open = store.graph().node(node).unwrap().opened_at();
                    if ts >= open {
                        store.close_node(node, ts).unwrap();
                    }
                }
                Cmd::Attr(u, v) => {
                    let n = store.graph().node_count() as u32;
                    if n == 0 {
                        continue;
                    }
                    let node = bp_graph::NodeId::new(*u as u32 % n);
                    store
                        .set_node_attr(node, "visit_count", i64::from(*v))
                        .unwrap();
                }
                Cmd::Snapshot => store.snapshot().unwrap(),
            }
        }
    }

    fn fingerprint(store: &ProvenanceStore) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (id, n) in store.graph().nodes() {
            let _ = writeln!(s, "N {id} {n:?}");
        }
        for (id, e) in store.graph().edges() {
            let _ = writeln!(s, "E {id} {e:?}");
        }
        let _ = writeln!(s, "I {}", store.interner().len());
        let _ = writeln!(
            s,
            "V {:?}",
            store
                .graph()
                .latest_version_of(NodeKind::PageVisit, "http://p0/")
        );
        s
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any mutation script, replayed through close/reopen, recovers the
        /// exact committed state (graph shape, attributes, intervals).
        #[test]
        fn recovery_is_exact(cmds in prop::collection::vec(cmd_strategy(), 1..60)) {
            let dir = TempDir::new("exact");
            let mut store = ProvenanceStore::open(&dir.0, SyncPolicy::OsManaged).unwrap();
            run_script(&mut store, &cmds);
            let fingerprint_before = fingerprint(&store);
            drop(store);
            let store = ProvenanceStore::open(&dir.0, SyncPolicy::OsManaged).unwrap();
            prop_assert_eq!(fingerprint(&store), fingerprint_before);
            prop_assert!(store.graph().verify_acyclic());
        }

        /// Factorized edge structure always decodes back exactly, for any
        /// graph the store can produce.
        #[test]
        fn factorization_roundtrips(cmds in prop::collection::vec(cmd_strategy(), 1..60)) {
            let dir = TempDir::new("fact");
            let mut store = ProvenanceStore::open(&dir.0, SyncPolicy::OsManaged).unwrap();
            run_script(&mut store, &cmds);
            let g = store.graph();
            let fact = factorize(g);
            let decoded = defactorize(&fact).unwrap();
            let mut expected = Vec::new();
            for src in g.node_ids() {
                for &eid in g.out_edges(src) {
                    let e = g.edge(eid).unwrap();
                    expected.push((src, e.dst(), e.kind()));
                }
            }
            prop_assert_eq!(decoded, expected);
        }
    }
}
