//! The durable provenance graph store.
//!
//! [`ProvenanceStore`] is the paper's "single, homogeneous provenance graph
//! store" (§3.4) made durable: an in-memory [`ProvenanceGraph`] kept
//! consistent with an on-disk write-ahead log plus snapshot, and two
//! secondary indexes (key → nodes, interval overlap) maintained inline.
//!
//! Layout on disk (one directory per profile):
//!
//! ```text
//! <dir>/snapshot.bps   compacted op stream (atomic rename on snapshot)
//! <dir>/log.wal        ops appended since the last snapshot
//! ```
//!
//! Recovery replays the snapshot, then the log, truncating any torn tail.
//! Replay is deterministic: node/edge ids are dense log positions, so the
//! rebuilt graph is byte-for-byte the pre-crash committed state.

use crate::error::{StorageError, StorageResult};
use crate::index::{KeyIndex, TimeIndex};
use crate::intern::ShardedInterner;
use crate::record::{Codec, Op};
use crate::wal::{SyncPolicy, Wal};
use bp_graph::{
    AttrValue, Edge, EdgeKind, GraphError, Node, NodeId, NodeKind, ProvenanceGraph, TimeInterval,
    Timestamp, Version,
};
use bp_obs::{Counter, Histogram, Level, Obs};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SNAPSHOT_FILE: &str = "snapshot.bps";
const LOG_FILE: &str = "log.wal";
/// Magic + format version, written as the snapshot's first frame. Recovery
/// rejects snapshots from an unknown format generation instead of
/// misinterpreting their bytes. Version 2 is the columnar delta encoding
/// ([`crate::snapshot`]); version 1 (the literal op stream) is still read.
const SNAPSHOT_HEADER: &[u8] = b"BPSNAP\x02";
const SNAPSHOT_HEADER_V1: &[u8] = b"BPSNAP\x01";

/// A durable, indexed browser-provenance store.
///
/// # Examples
///
/// ```
/// use bp_storage::{ProvenanceStore, SyncPolicy};
/// use bp_graph::{NodeKind, EdgeKind, Timestamp};
///
/// # fn main() -> Result<(), bp_storage::StorageError> {
/// let dir = std::env::temp_dir().join(format!("bp-store-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let mut store = ProvenanceStore::open(&dir, SyncPolicy::OsManaged)?;
/// let t = Timestamp::from_secs(1);
/// let term = store.add_node(NodeKind::SearchTerm, "rosebud", t, &[])?;
/// let visit = store.add_visit("http://se/?q=rosebud", t)?;
/// store.add_edge(visit, term, EdgeKind::SearchResult, t)?;
/// assert_eq!(store.graph().node_count(), 2);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProvenanceStore {
    graph: ProvenanceGraph,
    interner: ShardedInterner,
    keys: KeyIndex,
    times: TimeIndex,
    wal: Wal,
    codec: Codec,
    dir: PathBuf,
    policy: SyncPolicy,
    /// When batching, encoded ops accumulate here and are appended as one
    /// frame at [`commit_batch`](Self::commit_batch) — making multi-op
    /// units (one browser event's worth of mutations) atomic on disk.
    pending: Option<Vec<u8>>,
    /// When a write group is open, committed batch frames accumulate here
    /// and hit the log as one [`Wal::append_group`] call (one `write`, one
    /// policy-driven `sync`) at [`commit_write_group`](Self::commit_write_group).
    group: Option<Vec<Vec<u8>>>,
    obs: Obs,
    /// Hot-path metric handles, resolved once at open.
    wal_appends: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    wal_group_groups: Arc<Counter>,
    wal_group_events: Arc<Counter>,
    wal_group_sync_us: Arc<Histogram>,
}

impl ProvenanceStore {
    /// Opens (creating if necessary) the store in `dir`, replaying any
    /// existing snapshot and log.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] on filesystem failure, or
    /// [`StorageError::Corrupt`]/[`StorageError::Replay`] if committed
    /// records cannot be reapplied (which indicates on-disk corruption
    /// beyond a torn tail).
    pub fn open(dir: impl AsRef<Path>, policy: SyncPolicy) -> StorageResult<Self> {
        Self::open_with_obs(dir, policy, Obs::global())
    }

    /// [`open`](Self::open) reporting metrics and journal events into an
    /// explicit [`Obs`] handle instead of the process-global one. Tests
    /// that assert exact metric values use this with [`Obs::isolated`].
    ///
    /// # Errors
    ///
    /// See [`open`](Self::open).
    pub fn open_with_obs(
        dir: impl AsRef<Path>,
        policy: SyncPolicy,
        obs: Obs,
    ) -> StorageResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let wal_appends = obs.counter("wal.appends_total");
        let wal_bytes = obs.counter("wal.bytes_written");
        let wal_group_groups = obs.counter("wal.group_commit.groups");
        let wal_group_events = obs.counter("wal.group_commit.events");
        let wal_group_sync_us = obs.histogram("wal.group_commit.sync_us");
        let mut store = ProvenanceStore {
            graph: ProvenanceGraph::new(),
            interner: ShardedInterner::new(),
            keys: KeyIndex::new(),
            times: TimeIndex::new(),
            wal: Wal::open(dir.join(LOG_FILE), policy)?,
            codec: Codec::new(),
            dir,
            policy,
            pending: None,
            group: None,
            obs,
            wal_appends,
            wal_bytes,
            wal_group_groups,
            wal_group_events,
            wal_group_sync_us,
        };
        store.recover()?;
        store.publish_gauges();
        Ok(store)
    }

    /// The observability handle this store reports into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Publishes the store's size gauges (graph, interner) to the registry.
    fn publish_gauges(&self) {
        self.obs
            .gauge("storage.graph_nodes")
            .set(self.graph.node_count() as i64);
        self.obs
            .gauge("storage.graph_edges")
            .set(self.graph.edge_count() as i64);
        self.obs
            .gauge("storage.interner_strings")
            .set(self.interner.len() as i64);
        self.obs
            .gauge("storage.interner_bytes")
            .set(self.interner.payload_bytes() as i64);
    }

    fn recover(&mut self) -> StorageResult<()> {
        let snapshot_path = self.dir.join(SNAPSHOT_FILE);
        if snapshot_path.exists() {
            let mut snap = Wal::open(&snapshot_path, SyncPolicy::OsManaged)?;
            let contents = snap.read_all()?;
            let mut frames = contents.frames.iter();
            match frames.next() {
                Some(header) if header == SNAPSHOT_HEADER => {
                    // v2: columnar frames lower back into the op stream.
                    for frame in frames {
                        for op in crate::snapshot::decode(frame)? {
                            self.replay(op)?;
                        }
                    }
                }
                Some(header) if header == SNAPSHOT_HEADER_V1 => {
                    // v1: the frames are the literal compacted op stream.
                    let mut codec = Codec::new();
                    for frame in frames {
                        let mut pos = 0;
                        while pos < frame.len() {
                            let op = codec.decode(frame, &mut pos)?;
                            self.replay(op)?;
                        }
                    }
                }
                Some(other) => {
                    return Err(StorageError::corrupt(
                        0,
                        format!(
                            "snapshot format mismatch: expected {SNAPSHOT_HEADER:?}, found {:?}",
                            &other[..other.len().min(8)]
                        ),
                    ))
                }
                None => {} // empty snapshot: nothing to replay
            }
        }
        // The log's codec state continues from a fresh codec (the log is
        // reset at snapshot time), not from the snapshot codec.
        let contents = self.wal.read_all()?;
        let mut codec = Codec::new();
        for frame in &contents.frames {
            let mut pos = 0;
            while pos < frame.len() {
                let op = codec.decode(frame, &mut pos)?;
                self.replay(op)?;
            }
        }
        // Future appends continue the replayed delta state.
        self.codec = codec;
        if self.wal.truncated_on_open() {
            self.obs.counter("wal.torn_tail_truncations").inc();
            self.obs.journal().record(
                Level::Warn,
                "torn tail truncated on log open (crash mid-append); committed history intact",
            );
            bp_obs::log::warn(
                "bp_storage::store",
                "torn tail truncated on log open; committed history intact",
                &[],
            );
        }
        if !contents.frames.is_empty() {
            self.obs
                .counter("wal.recovered_frames")
                .add(contents.frames.len() as u64);
            self.obs.journal().record(
                Level::Info,
                format!(
                    "recovered {} log frames: {} nodes, {} edges",
                    contents.frames.len(),
                    self.graph.node_count(),
                    self.graph.edge_count()
                ),
            );
            bp_obs::log::info(
                "bp_storage::store",
                "write-ahead log recovered",
                &[
                    ("frames", contents.frames.len().to_string()),
                    ("nodes", self.graph.node_count().to_string()),
                    ("edges", self.graph.edge_count().to_string()),
                ],
            );
        }
        Ok(())
    }

    fn replay(&mut self, op: Op) -> StorageResult<()> {
        match op {
            Op::DefineString { id, value } => {
                self.interner.define(id, &value).map_err(|expected| {
                    StorageError::Replay(format!(
                        "string id {id} defined out of order (expected {expected})"
                    ))
                })
            }
            other => self.apply_structural(&other).map(|_| ()),
        }
    }

    /// Applies a non-DefineString op to graph + indexes (shared between
    /// live mutation and replay).
    fn apply_structural(&mut self, op: &Op) -> StorageResult<Option<NodeId>> {
        match op {
            Op::DefineString { .. } => Err(StorageError::Replay(
                "DefineString reached the structural apply path".to_owned(),
            )),
            Op::AddNode {
                kind,
                key,
                version,
                open_at,
                attrs,
            } => {
                let key_str = self
                    .interner
                    .resolve(*key)
                    .ok_or(StorageError::UnknownStringId(*key))?;
                let mut node = Node::with_version(*kind, &key_str, *version, *open_at);
                for (kid, value) in attrs {
                    let kname = self
                        .interner
                        .resolve(*kid)
                        .ok_or(StorageError::UnknownStringId(*kid))?;
                    node.attrs_mut().set(kname, value.clone());
                }
                let id = self.graph.add_node(node);
                self.keys.insert(&key_str, id);
                self.times.insert(id, TimeInterval::open_at(*open_at));
                Ok(Some(id))
            }
            Op::AddEdge {
                src,
                dst,
                kind,
                at,
                attrs,
            } => {
                let mut edge = Edge::new(*src, *dst, *kind, *at);
                for (kid, value) in attrs {
                    let kname = self
                        .interner
                        .resolve(*kid)
                        .ok_or(StorageError::UnknownStringId(*kid))?;
                    edge.attrs_mut().set(kname, value.clone());
                }
                self.graph
                    .add_edge_full(edge)
                    .map_err(|e| StorageError::Replay(e.to_string()))?;
                Ok(None)
            }
            Op::CloseNode { node, at } => {
                self.graph
                    .node_mut(*node)
                    .map_err(|e| StorageError::Replay(e.to_string()))?
                    .close_at(*at);
                self.times.close(*node, *at);
                Ok(None)
            }
            Op::SetNodeAttr { node, key, value } => {
                let kname = self
                    .interner
                    .resolve(*key)
                    .ok_or(StorageError::UnknownStringId(*key))?;
                self.graph
                    .node_mut(*node)
                    .map_err(|e| StorageError::Replay(e.to_string()))?
                    .attrs_mut()
                    .set(kname, value.clone());
                Ok(None)
            }
            Op::RedactNode { node, replacement } => {
                let replacement = self
                    .interner
                    .resolve(*replacement)
                    .ok_or(StorageError::UnknownStringId(*replacement))?;
                let old_key = self
                    .graph
                    .redact_node(*node, replacement.clone())
                    .map_err(|e| StorageError::Replay(e.to_string()))?;
                // The key index must stop resolving the old key for this
                // node; the redacted placeholder becomes its key instead.
                let survivors: Vec<NodeId> = self
                    .keys
                    .remove_key(&old_key)
                    .into_iter()
                    .filter(|&n| n != *node)
                    .collect();
                for survivor in survivors {
                    self.keys.insert(&old_key, survivor);
                }
                self.keys.insert(&replacement, *node);
                Ok(None)
            }
        }
    }

    /// Interns `s`, appending a DefineString record if new.
    fn intern(&mut self, s: &str, batch: &mut Vec<u8>) -> u32 {
        let (id, new) = self.interner.intern_full(s);
        if new {
            let op = Op::DefineString {
                id,
                value: s.to_owned(),
            };
            self.codec.encode(&op, batch);
        }
        id
    }

    fn intern_attrs(
        &mut self,
        attrs: &[(&str, AttrValue)],
        batch: &mut Vec<u8>,
    ) -> Vec<(u32, AttrValue)> {
        attrs
            .iter()
            .map(|(k, v)| (self.intern(k, batch), v.clone()))
            .collect()
    }

    /// Appends one frame to the log, keeping the WAL counters in step.
    fn append_frame(&mut self, payload: &[u8]) -> StorageResult<()> {
        self.wal.append(payload)?;
        self.wal_appends.inc();
        // 8 bytes of frame header (length + checksum) per append.
        self.wal_bytes.add(payload.len() as u64 + 8);
        Ok(())
    }

    /// Routes one finished frame either into the open write group
    /// (deferring the disk write to the group boundary) or straight to the
    /// log.
    fn enqueue_frame(&mut self, frame: Vec<u8>) -> StorageResult<()> {
        match &mut self.group {
            Some(group) => {
                group.push(frame);
                Ok(())
            }
            None => self.append_frame(&frame),
        }
    }

    fn commit(&mut self, op: Op, mut batch: Vec<u8>) -> StorageResult<Option<NodeId>> {
        self.codec.encode(&op, &mut batch);
        let result = self.apply_structural(&op)?;
        match &mut self.pending {
            Some(pending) => pending.extend_from_slice(&batch),
            None => self.enqueue_frame(batch)?,
        }
        Ok(result)
    }

    /// Starts an atomic batch: subsequent mutations accumulate in memory
    /// and reach the log as **one frame** at
    /// [`commit_batch`](Self::commit_batch). Recovery therefore replays a
    /// batch entirely or not at all — the capture layer wraps each browser
    /// event in a batch so a crash can never persist half a navigation
    /// (a visit without its edges, a download without its source link).
    ///
    /// Batches do not nest; calling again while one is open is a no-op.
    pub fn begin_batch(&mut self) {
        if self.pending.is_none() {
            self.pending = Some(Vec::new());
        }
    }

    /// Appends the open batch to the log as a single frame.
    ///
    /// A no-op if no batch is open or it is empty.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] if the append fails; the in-memory
    /// state already reflects the batch (mutations are validated before
    /// application, so the only divergence risk is the device failing).
    pub fn commit_batch(&mut self) -> StorageResult<()> {
        if let Some(pending) = self.pending.take() {
            if !pending.is_empty() {
                let grouped = self.group.is_some();
                self.enqueue_frame(pending)?;
                // Inside a write group the gauges are published once at the
                // group boundary instead of per batch.
                if !grouped {
                    self.publish_gauges();
                }
            }
        }
        Ok(())
    }

    /// Starts a write group: frames produced by subsequent
    /// [`commit_batch`](Self::commit_batch) calls (and unbatched commits)
    /// accumulate in memory and reach the log as **one**
    /// [`Wal::append_group`] call — one `write(2)`, one policy-driven
    /// `sync` — at [`commit_write_group`](Self::commit_write_group). Each
    /// batch keeps its own frame, so torn-group recovery still replays
    /// complete batches only.
    ///
    /// Groups do not nest; calling again while one is open is a no-op.
    pub fn begin_write_group(&mut self) {
        if self.group.is_none() {
            self.group = Some(Vec::new());
        }
    }

    /// Appends the open write group's frames to the log in one call.
    ///
    /// A no-op if no group is open or it is empty.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] if the append fails; as with
    /// [`commit_batch`](Self::commit_batch), the in-memory state already
    /// reflects the group's mutations.
    pub fn commit_write_group(&mut self) -> StorageResult<()> {
        let Some(frames) = self.group.take() else {
            return Ok(());
        };
        if frames.is_empty() {
            return Ok(());
        }
        let receipt = self.wal.append_group(&frames)?;
        self.wal_appends.add(receipt.frames as u64);
        self.wal_bytes.add(receipt.bytes);
        self.wal_group_groups.inc();
        self.wal_group_events.add(receipt.frames as u64);
        if receipt.synced {
            self.wal_group_sync_us.record(receipt.sync_micros);
        }
        self.publish_gauges();
        Ok(())
    }

    /// Whether a write group is currently open.
    pub fn group_active(&self) -> bool {
        self.group.is_some()
    }

    /// Adds a node of any kind with attributes; returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] if the log append fails.
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        key: &str,
        at: Timestamp,
        attrs: &[(&str, AttrValue)],
    ) -> StorageResult<NodeId> {
        let version = if kind.is_versioned() {
            self.graph
                .latest_version_of(kind, key)
                .map_or(Version::FIRST, |(_, v)| v.next())
        } else {
            Version::FIRST
        };
        self.add_node_at_version(kind, key, at, attrs, version)
    }

    /// Adds a node whose version the caller has already resolved, skipping
    /// the version-chain lookup. Callers must pass the version that
    /// [`add_node`](Self::add_node) would have computed; anything else
    /// corrupts the version chain.
    fn add_node_at_version(
        &mut self,
        kind: NodeKind,
        key: &str,
        at: Timestamp,
        attrs: &[(&str, AttrValue)],
        version: Version,
    ) -> StorageResult<NodeId> {
        let mut batch = Vec::new();
        let key_id = self.intern(key, &mut batch);
        let encoded_attrs = self.intern_attrs(attrs, &mut batch);
        let op = Op::AddNode {
            kind,
            key: key_id,
            version,
            open_at: at,
            attrs: encoded_attrs,
        };
        self.commit(op, batch)?
            .ok_or_else(|| StorageError::Replay("AddNode commit yielded no node id".to_owned()))
    }

    /// Adds a page-visit instance of `url`, automatically versioned and
    /// linked to its predecessor with a [`EdgeKind::VersionOf`] edge —
    /// the §3.1 cycle-breaking entry point.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] if the log append fails.
    pub fn add_visit(&mut self, url: &str, at: Timestamp) -> StorageResult<NodeId> {
        self.add_visit_with_attrs(url, at, &[])
    }

    /// [`add_visit`](Self::add_visit) with initial attributes folded into
    /// the `AddNode` record. The version chain is resolved exactly once:
    /// the same lookup yields both the new node's version and the
    /// predecessor for its [`EdgeKind::VersionOf`] edge, which matters on
    /// the capture hot path where every navigate lands here.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] if the log append fails.
    pub fn add_visit_with_attrs(
        &mut self,
        url: &str,
        at: Timestamp,
        attrs: &[(&str, AttrValue)],
    ) -> StorageResult<NodeId> {
        let prior = self.graph.latest_version_of(NodeKind::PageVisit, url);
        let version = prior.map_or(Version::FIRST, |(_, v)| v.next());
        let id = self.add_node_at_version(NodeKind::PageVisit, url, at, attrs, version)?;
        if let Some((prev, _)) = prior {
            self.add_edge(id, prev, EdgeKind::VersionOf, at)?;
        }
        Ok(id)
    }

    /// Adds a derives-from edge.
    ///
    /// # Errors
    ///
    /// [`StorageError::Replay`] wraps graph rejections (cycle, unknown
    /// node, self-loop); [`StorageError::Io`] covers log failures. On
    /// rejection nothing is logged.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        kind: EdgeKind,
        at: Timestamp,
    ) -> StorageResult<()> {
        self.add_edge_with_attrs(src, dst, kind, at, &[])
    }

    /// Adds a derives-from edge carrying attributes.
    ///
    /// # Errors
    ///
    /// See [`add_edge`](Self::add_edge).
    pub fn add_edge_with_attrs(
        &mut self,
        src: NodeId,
        dst: NodeId,
        kind: EdgeKind,
        at: Timestamp,
        attrs: &[(&str, AttrValue)],
    ) -> StorageResult<()> {
        // Validate before interning or encoding: a rejected edge must not
        // reach the log (replay would fail on it) nor perturb codec or
        // interner state.
        self.check_edge(src, dst)?;
        let mut batch = Vec::new();
        let encoded_attrs = self.intern_attrs(attrs, &mut batch);
        let op = Op::AddEdge {
            src,
            dst,
            kind,
            at,
            attrs: encoded_attrs,
        };
        self.commit(op, batch)?;
        Ok(())
    }

    /// Fully validates an edge before anything is interned, encoded, or
    /// logged: a rejected edge must leave the store (including the codec's
    /// delta-timestamp state and the interner) exactly as it found it.
    fn check_edge(&self, src: NodeId, dst: NodeId) -> StorageResult<()> {
        let validate = |r: Result<&Node, GraphError>| {
            r.map(|_| ())
                .map_err(|e| StorageError::Replay(e.to_string()))
        };
        validate(self.graph.node(src))?;
        validate(self.graph.node(dst))?;
        if src == dst {
            return Err(StorageError::Replay(GraphError::SelfLoop(src).to_string()));
        }
        if self.graph.would_cycle(src, dst) {
            return Err(StorageError::Replay(
                GraphError::WouldCycle { src, dst }.to_string(),
            ));
        }
        Ok(())
    }

    /// Closes a node's open interval (§3.2's page-close record).
    ///
    /// # Errors
    ///
    /// [`StorageError::Replay`] if the node is unknown, [`StorageError::Io`]
    /// on log failure.
    pub fn close_node(&mut self, node: NodeId, at: Timestamp) -> StorageResult<()> {
        self.graph
            .node(node)
            .map_err(|e| StorageError::Replay(e.to_string()))?;
        self.commit(Op::CloseNode { node, at }, Vec::new())?;
        Ok(())
    }

    /// Sets one attribute on an existing node.
    ///
    /// # Errors
    ///
    /// [`StorageError::Replay`] if the node is unknown, [`StorageError::Io`]
    /// on log failure.
    pub fn set_node_attr(
        &mut self,
        node: NodeId,
        key: &str,
        value: impl Into<AttrValue>,
    ) -> StorageResult<()> {
        self.graph
            .node(node)
            .map_err(|e| StorageError::Replay(e.to_string()))?;
        let mut batch = Vec::new();
        let key_id = self.intern(key, &mut batch);
        self.commit(
            Op::SetNodeAttr {
                node,
                key: key_id,
                value: value.into(),
            },
            batch,
        )?;
        Ok(())
    }

    /// Redacts every node whose primary key equals `key` (§4 privacy):
    /// their keys become `[redacted:<node id>]`, attributes are dropped,
    /// and the old key stops resolving in the key index. Graph structure
    /// and timestamps are preserved. Returns the redacted node ids.
    ///
    /// The URL string itself disappears from disk at the next
    /// [`snapshot`](Self::snapshot): compaction rewrites the string table
    /// with only live references.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] if logging fails; an unknown key is
    /// not an error (returns an empty list).
    pub fn redact_key(&mut self, key: &str) -> StorageResult<Vec<NodeId>> {
        let nodes = self.keys.get(key).to_vec();
        for &node in &nodes {
            let mut batch = Vec::new();
            let replacement = self.intern(&format!("[redacted:{}]", node.index()), &mut batch);
            self.commit(Op::RedactNode { node, replacement }, batch)?;
        }
        if !nodes.is_empty() {
            self.obs
                .counter("storage.redactions_total")
                .add(nodes.len() as u64);
            // Deliberately does NOT name the key: the journal must not
            // become a side channel for content the user asked to scrub.
            self.obs.journal().record(
                Level::Warn,
                format!("redaction scrubbed {} history objects", nodes.len()),
            );
            // Same privacy rule as the journal entry: count only, no key.
            bp_obs::log::warn(
                "bp_storage::store",
                "redaction scrubbed history objects",
                &[("objects", nodes.len().to_string())],
            );
        }
        Ok(nodes)
    }

    /// The in-memory graph view.
    pub fn graph(&self) -> &ProvenanceGraph {
        &self.graph
    }

    /// The key (URL/query/path) index.
    pub fn keys(&self) -> &KeyIndex {
        &self.keys
    }

    /// The interval-overlap index.
    pub fn times(&self) -> &TimeIndex {
        &self.times
    }

    /// The string interner.
    pub fn interner(&self) -> &ShardedInterner {
        &self.interner
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Flushes the log to stable storage.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] on sync failure.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.wal.sync()
    }

    /// Writes a compacted snapshot of the current state and resets the log.
    ///
    /// The snapshot is written to a temporary file and atomically renamed,
    /// so a crash during compaction leaves either the old snapshot+log or
    /// the new snapshot intact.
    ///
    /// Compaction rebuilds the string table from scratch: only strings the
    /// live graph still references are written. Together with
    /// [`redact_key`](Self::redact_key), this guarantees redacted URLs do
    /// not survive on disk after the next snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] on filesystem failure.
    pub fn snapshot(&mut self) -> StorageResult<()> {
        let sw = bp_obs::ClockHandle::real().start();
        // An open batch (and any open write group) must land in the (old)
        // log before it is replaced; their ops are already applied in
        // memory and the snapshot below captures them, so flushing keeps
        // every representation aligned.
        self.commit_batch()?;
        self.commit_write_group()?;
        let tmp = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        let _ = std::fs::remove_file(&tmp);
        // Fresh interner: ids are re-assigned in first-reference order and
        // dead strings (including redacted keys) are dropped.
        let compact = ShardedInterner::new();
        {
            let mut snap = Wal::open(&tmp, SyncPolicy::OsManaged)?;
            snap.append(SNAPSHOT_HEADER)?;
            let columns = crate::snapshot::encode(&self.graph, &compact)?;
            snap.append(&columns)?;
            snap.sync()?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        self.wal.reset()?;
        self.codec = Codec::new();
        // Future log records must reference the compact table, matching
        // what recovery will replay.
        self.interner = compact;
        let elapsed = sw.elapsed();
        self.obs.counter("storage.compactions_total").inc();
        self.obs
            .histogram("storage.snapshot_duration_us")
            .record_duration(elapsed);
        self.publish_gauges();
        let report = self.size_report();
        self.obs.journal().record(
            Level::Info,
            format!(
                "compaction wrote {} snapshot bytes ({} nodes, {} edges) in {elapsed:?}; log reset",
                report.snapshot_bytes, report.node_count, report.edge_count
            ),
        );
        bp_obs::log::info(
            "bp_storage::store",
            "compaction complete; log reset",
            &[
                ("snapshot_bytes", report.snapshot_bytes.to_string()),
                ("nodes", report.node_count.to_string()),
                ("edges", report.edge_count.to_string()),
                ("elapsed", format!("{elapsed:?}")),
            ],
        );
        Ok(())
    }

    /// On-disk size accounting for experiment E1.
    pub fn size_report(&self) -> SizeReport {
        let snapshot_bytes = std::fs::metadata(self.dir.join(SNAPSHOT_FILE))
            .map(|m| m.len())
            .unwrap_or(0);
        SizeReport {
            snapshot_bytes,
            log_bytes: self.wal.len_bytes(),
            node_count: self.graph.node_count(),
            edge_count: self.graph.edge_count(),
            interned_strings: self.interner.len(),
            interned_bytes: self.interner.payload_bytes() as u64,
        }
    }

    /// Durability policy the store was opened with.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.policy
    }
}

/// On-disk footprint summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeReport {
    /// Bytes in the snapshot file.
    pub snapshot_bytes: u64,
    /// Committed bytes in the log.
    pub log_bytes: u64,
    /// Nodes in the store.
    pub node_count: usize,
    /// Edges in the store.
    pub edge_count: usize,
    /// Distinct interned strings.
    pub interned_strings: usize,
    /// Total interned string payload bytes.
    pub interned_bytes: u64,
}

impl SizeReport {
    /// Total on-disk bytes (snapshot + log).
    pub fn total_bytes(&self) -> u64 {
        self.snapshot_bytes + self.log_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "bp-store-test-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// Builds a small history; returns (dir kept alive, node ids).
    fn build(dir: &TempDir) -> (ProvenanceStore, Vec<NodeId>) {
        let mut store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        let term = store
            .add_node(NodeKind::SearchTerm, "rosebud", t(1), &[])
            .unwrap();
        let search = store.add_visit("http://se/?q=rosebud", t(2)).unwrap();
        store
            .add_edge(search, term, EdgeKind::SearchResult, t(2))
            .unwrap();
        let kane = store.add_visit("http://films/kane", t(3)).unwrap();
        store.add_edge(kane, search, EdgeKind::Link, t(3)).unwrap();
        store.set_node_attr(kane, "title", "Citizen Kane").unwrap();
        store.close_node(search, t(4)).unwrap();
        (store, vec![term, search, kane])
    }

    #[test]
    fn basic_mutations_update_graph_and_indexes() {
        let dir = TempDir::new("basic");
        let (store, ids) = build(&dir);
        assert_eq!(store.graph().node_count(), 3);
        assert_eq!(store.graph().edge_count(), 2);
        assert_eq!(store.keys().get("http://films/kane"), &[ids[2]]);
        assert_eq!(
            store.graph().node(ids[2]).unwrap().attrs().get_str("title"),
            Some("Citizen Kane")
        );
        assert_eq!(
            store.graph().node(ids[1]).unwrap().interval().close(),
            Some(t(4))
        );
        // Time index was updated by the close.
        let hits = store.times().overlapping(&TimeInterval::closed(t(5), t(6)));
        assert!(!hits.contains(&ids[1]), "search closed at t=4");
        assert!(hits.contains(&ids[2]), "kane still open");
    }

    #[test]
    fn reopen_recovers_identical_state() {
        let dir = TempDir::new("recover");
        let (store, ids) = build(&dir);
        let nodes_before: Vec<String> = store
            .graph()
            .nodes()
            .map(|(_, n)| format!("{n:?}"))
            .collect();
        let edges_before: Vec<String> = store
            .graph()
            .edges()
            .map(|(_, e)| format!("{e:?}"))
            .collect();
        drop(store);

        let store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        let nodes_after: Vec<String> = store
            .graph()
            .nodes()
            .map(|(_, n)| format!("{n:?}"))
            .collect();
        let edges_after: Vec<String> = store
            .graph()
            .edges()
            .map(|(_, e)| format!("{e:?}"))
            .collect();
        assert_eq!(nodes_before, nodes_after);
        assert_eq!(edges_before, edges_after);
        assert_eq!(store.keys().get("http://films/kane"), &[ids[2]]);
    }

    #[test]
    fn writes_after_recovery_continue_cleanly() {
        let dir = TempDir::new("continue");
        let (store, ids) = build(&dir);
        drop(store);
        let mut store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        let dl = store
            .add_node(NodeKind::Download, "/tmp/kane.mp4", t(10), &[])
            .unwrap();
        store
            .add_edge(dl, ids[2], EdgeKind::DownloadFrom, t(10))
            .unwrap();
        drop(store);
        let store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        assert_eq!(store.graph().node_count(), 4);
        assert_eq!(store.graph().edge_count(), 3);
    }

    #[test]
    fn visits_version_automatically() {
        let dir = TempDir::new("versions");
        let mut store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        let v0 = store.add_visit("http://same/", t(1)).unwrap();
        let v1 = store.add_visit("http://same/", t(2)).unwrap();
        assert_ne!(v0, v1);
        assert_eq!(store.graph().node(v1).unwrap().version(), Version::new(1));
        let has_version_edge = store
            .graph()
            .parents(v1)
            .any(|(e, p)| store.graph().edge(e).unwrap().kind() == EdgeKind::VersionOf && p == v0);
        assert!(has_version_edge);
        // Both visits share the key index entry.
        assert_eq!(store.keys().get("http://same/"), &[v0, v1]);
    }

    #[test]
    fn rejected_edges_do_not_pollute_the_log() {
        let dir = TempDir::new("reject");
        let mut store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        let a = store.add_visit("a", t(1)).unwrap();
        assert!(store.add_edge(a, a, EdgeKind::Link, t(1)).is_err());
        assert!(store
            .add_edge(a, NodeId::new(99), EdgeKind::Link, t(1))
            .is_err());
        drop(store);
        // Recovery must succeed — the bad edges never hit the log.
        let store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        assert_eq!(store.graph().edge_count(), 0);
    }

    #[test]
    fn snapshot_compacts_and_recovers() {
        let dir = TempDir::new("snapshot");
        let (mut store, ids) = build(&dir);
        store.snapshot().unwrap();
        let report = store.size_report();
        assert!(report.snapshot_bytes > 0);
        assert_eq!(report.log_bytes, 0, "log reset after snapshot");
        // Post-snapshot writes land in the fresh log.
        let dl = store
            .add_node(NodeKind::Download, "/tmp/x", t(20), &[])
            .unwrap();
        store
            .add_edge(dl, ids[2], EdgeKind::DownloadFrom, t(20))
            .unwrap();
        drop(store);

        let store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        assert_eq!(store.graph().node_count(), 4);
        assert_eq!(store.graph().edge_count(), 3);
        assert_eq!(
            store.graph().node(ids[2]).unwrap().attrs().get_str("title"),
            Some("Citizen Kane"),
            "attributes folded into snapshot survive"
        );
        assert_eq!(
            store.graph().node(ids[1]).unwrap().interval().close(),
            Some(t(4)),
            "close records folded into snapshot survive"
        );
    }

    #[test]
    fn double_snapshot_is_idempotent() {
        let dir = TempDir::new("double-snap");
        let (mut store, _) = build(&dir);
        store.snapshot().unwrap();
        let first = store.size_report().snapshot_bytes;
        store.snapshot().unwrap();
        let second = store.size_report().snapshot_bytes;
        assert_eq!(first, second);
        drop(store);
        let store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        assert_eq!(store.graph().node_count(), 3);
    }

    #[test]
    fn torn_log_tail_loses_only_last_record() {
        let dir = TempDir::new("torn");
        let (store, _) = build(&dir);
        let nodes = store.graph().node_count();
        drop(store);
        // Append garbage to the log (simulated torn write).
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.0.join(LOG_FILE))
            .unwrap();
        f.write_all(&[1, 2, 3]).unwrap();
        drop(f);
        let store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        assert_eq!(store.graph().node_count(), nodes);
    }

    #[test]
    fn size_report_totals() {
        let dir = TempDir::new("sizes");
        let (store, _) = build(&dir);
        let report = store.size_report();
        assert!(report.log_bytes > 0);
        assert_eq!(report.node_count, 3);
        assert_eq!(report.edge_count, 2);
        assert!(report.interned_strings >= 4, "keys + attr key");
        assert_eq!(report.total_bytes(), report.log_bytes);
    }

    #[test]
    fn empty_store_opens_and_reopens() {
        let dir = TempDir::new("empty");
        {
            let store = ProvenanceStore::open(&dir.0, SyncPolicy::OsManaged).unwrap();
            assert_eq!(store.graph().node_count(), 0);
        }
        let store = ProvenanceStore::open(&dir.0, SyncPolicy::OsManaged).unwrap();
        assert_eq!(store.graph().node_count(), 0);
        assert_eq!(store.sync_policy(), SyncPolicy::OsManaged);
    }

    #[test]
    fn redaction_hides_key_and_survives_recovery() {
        let dir = TempDir::new("redact");
        let (mut store, ids) = build(&dir);
        let redacted = store.redact_key("http://films/kane").unwrap();
        assert_eq!(redacted, vec![ids[2]]);
        assert_eq!(
            store.graph().node(ids[2]).unwrap().key(),
            format!("[redacted:{}]", ids[2].index())
        );
        assert!(store.graph().node(ids[2]).unwrap().attrs().is_empty());
        assert!(store.keys().get("http://films/kane").is_empty());
        // Unknown keys are a no-op.
        assert!(store.redact_key("http://never/").unwrap().is_empty());
        drop(store);
        let store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        assert!(store.keys().get("http://films/kane").is_empty());
        assert!(store
            .graph()
            .node(ids[2])
            .unwrap()
            .key()
            .starts_with("[redacted:"));
        // Structure still intact for lineage.
        assert_eq!(store.graph().edge_count(), 2);
    }

    #[test]
    fn snapshot_after_redaction_leaves_no_url_bytes_on_disk() {
        let dir = TempDir::new("redact-snap");
        let (mut store, _) = build(&dir);
        store.redact_key("http://films/kane").unwrap();
        store.snapshot().unwrap();
        // Scan every byte the store has on disk for the secret URL.
        let mut disk = Vec::new();
        for entry in std::fs::read_dir(&dir.0).unwrap() {
            disk.extend(std::fs::read(entry.unwrap().path()).unwrap());
        }
        let needle = b"films/kane";
        let found = disk.windows(needle.len()).any(|w| w == needle.as_slice());
        assert!(!found, "redacted URL must not survive compaction");
        // And the store still works after the compact-interner swap.
        drop(store);
        let mut store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        assert_eq!(store.graph().node_count(), 3);
        let v = store.add_visit("http://new/", t(100)).unwrap();
        drop(store);
        let store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        assert_eq!(store.graph().node(v).unwrap().key(), "http://new/");
    }

    #[test]
    fn snapshot_compacts_dead_strings() {
        let dir = TempDir::new("compact-strings");
        let (mut store, _) = build(&dir);
        let before = store.interner().len();
        store.redact_key("http://se/?q=rosebud").unwrap();
        store.snapshot().unwrap();
        // The old URL is gone; redaction placeholders were added, so just
        // assert the specific string is absent.
        assert!(store.interner().lookup("http://se/?q=rosebud").is_none());
        let _ = before;
    }

    #[test]
    fn snapshot_format_mismatch_is_rejected() {
        let dir = TempDir::new("snap-version");
        let (mut store, _) = build(&dir);
        store.snapshot().unwrap();
        drop(store);
        // Corrupt the header frame's payload to an alien version.
        let path = dir.0.join("snapshot.bps");
        let mut wal = Wal::open(&path, SyncPolicy::OsManaged).unwrap();
        let frames = wal.read_all().unwrap().frames;
        assert_eq!(frames[0], b"BPSNAP\x02".to_vec());
        drop(wal);
        let rebuilt = {
            let alien = Wal::open(dir.0.join("alien.bps"), SyncPolicy::OsManaged);
            let mut alien = alien.unwrap();
            alien.append(b"BPSNAP\x63").unwrap();
            for frame in &frames[1..] {
                alien.append(frame).unwrap();
            }
            dir.0.join("alien.bps")
        };
        std::fs::rename(rebuilt, &path).unwrap();
        let err = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap_err();
        assert!(err.to_string().contains("format mismatch"), "{err}");
    }

    #[test]
    fn batches_are_atomic_frames() {
        let dir = TempDir::new("batch");
        let mut store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        // One batch with a visit + attr + edge-worthy second node.
        store.begin_batch();
        let a = store.add_visit("http://a/", t(1)).unwrap();
        store.set_node_attr(a, "title", "A").unwrap();
        let b = store.add_visit("http://b/", t(2)).unwrap();
        store.add_edge(b, a, EdgeKind::Link, t(2)).unwrap();
        store.commit_batch().unwrap();
        // A second, separate batch.
        store.begin_batch();
        store.add_visit("http://c/", t(3)).unwrap();
        store.commit_batch().unwrap();
        drop(store);

        // The log holds exactly two frames: cut the file before the second
        // frame's end and the FIRST batch must survive completely.
        let log = dir.0.join("log.wal");
        let mut wal = Wal::open(&log, SyncPolicy::OsManaged).unwrap();
        let contents = wal.read_all().unwrap();
        assert_eq!(contents.frames.len(), 2, "one frame per batch");
        drop(wal);
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..bytes.len() - 3]).unwrap();

        let store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        assert_eq!(
            store.graph().node_count(),
            2,
            "batch 1 intact, batch 2 gone"
        );
        assert_eq!(store.graph().edge_count(), 1);
        assert_eq!(
            store.graph().node(a).unwrap().attrs().get_str("title"),
            Some("A")
        );
        assert!(store.keys().get("http://c/").is_empty());
    }

    #[test]
    fn empty_and_nested_batches_are_harmless() {
        let dir = TempDir::new("batch-edge");
        let mut store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        store.begin_batch();
        store.begin_batch(); // nesting is a no-op
        store.commit_batch().unwrap(); // empty batch writes nothing
        store.commit_batch().unwrap(); // double-commit is a no-op
        assert_eq!(store.size_report().log_bytes, 0);
        // Snapshot mid-batch flushes it first.
        store.begin_batch();
        store.add_visit("http://x/", t(1)).unwrap();
        store.snapshot().unwrap();
        drop(store);
        let store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        assert_eq!(store.keys().get("http://x/").len(), 1);
    }

    #[test]
    fn v1_snapshots_still_recover() {
        let dir = TempDir::new("snap-v1");
        let (store, ids) = build(&dir);
        let fingerprint: Vec<String> = store
            .graph()
            .nodes()
            .map(|(_, n)| format!("{n:?}"))
            .collect();
        drop(store);
        // Hand-craft a v1 snapshot (header + literal op stream) from the
        // log the build left behind, as an old binary would have written.
        let log_frames = {
            let mut wal = Wal::open(dir.0.join(LOG_FILE), SyncPolicy::OsManaged).unwrap();
            wal.read_all().unwrap().frames
        };
        let mut ops = Vec::new();
        let mut codec = Codec::new();
        for frame in &log_frames {
            let mut pos = 0;
            while pos < frame.len() {
                ops.push(codec.decode(frame, &mut pos).unwrap());
            }
        }
        {
            let mut snap = Wal::open(dir.0.join(SNAPSHOT_FILE), SyncPolicy::OsManaged).unwrap();
            snap.append(SNAPSHOT_HEADER_V1).unwrap();
            let mut codec = Codec::new();
            let mut batch = Vec::new();
            for op in &ops {
                codec.encode(op, &mut batch);
            }
            snap.append(&batch).unwrap();
            snap.sync().unwrap();
        }
        // Empty the log: everything now lives in the v1 snapshot.
        Wal::open(dir.0.join(LOG_FILE), SyncPolicy::OsManaged)
            .unwrap()
            .reset()
            .unwrap();

        let store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        let recovered: Vec<String> = store
            .graph()
            .nodes()
            .map(|(_, n)| format!("{n:?}"))
            .collect();
        assert_eq!(recovered, fingerprint);
        assert_eq!(store.graph().edge_count(), 2);
        assert_eq!(store.keys().get("http://films/kane"), &[ids[2]]);
    }

    #[test]
    fn write_groups_keep_per_batch_frames() {
        let dir = TempDir::new("group");
        let obs = Obs::isolated();
        let mut store =
            ProvenanceStore::open_with_obs(&dir.0, SyncPolicy::Always, obs.clone()).unwrap();
        store.begin_write_group();
        assert!(store.group_active());
        for i in 0..3 {
            store.begin_batch();
            store.add_visit(&format!("http://g{i}/"), t(i)).unwrap();
            store.commit_batch().unwrap();
        }
        // Nothing on disk until the group commits.
        assert_eq!(store.size_report().log_bytes, 0);
        store.commit_write_group().unwrap();
        assert!(!store.group_active());
        // Double-commit and empty groups are no-ops.
        store.commit_write_group().unwrap();
        store.begin_write_group();
        store.commit_write_group().unwrap();
        assert_eq!(obs.counter("wal.group_commit.groups").get(), 1);
        assert_eq!(obs.counter("wal.group_commit.events").get(), 3);
        assert_eq!(obs.counter("wal.appends_total").get(), 3);
        drop(store);

        // Each batch kept its own frame inside the group.
        let mut wal = Wal::open(dir.0.join(LOG_FILE), SyncPolicy::OsManaged).unwrap();
        assert_eq!(wal.read_all().unwrap().frames.len(), 3);
    }

    /// Cutting a group-committed log at every byte offset recovers a
    /// complete prefix of batches, and the recovered store is
    /// bit-identical to one built from only those batches.
    #[test]
    fn torn_write_group_recovers_bit_identical_prefix_state() {
        let visits = ["http://a/", "http://b/", "http://c/", "http://d/"];
        let reference = |dir: &TempDir, n: usize| -> ProvenanceStore {
            let mut store = ProvenanceStore::open(&dir.0, SyncPolicy::OsManaged).unwrap();
            for (i, url) in visits.iter().take(n).enumerate() {
                store.begin_batch();
                let v = store.add_visit(url, t(i64::try_from(i).unwrap())).unwrap();
                store
                    .set_node_attr(v, "n", i64::try_from(i).unwrap())
                    .unwrap();
                store.commit_batch().unwrap();
            }
            store
        };
        let fingerprint = |store: &ProvenanceStore| -> String {
            use std::fmt::Write;
            let mut s = String::new();
            for (id, n) in store.graph().nodes() {
                let _ = writeln!(s, "N {id} {n:?}");
            }
            for (id, e) in store.graph().edges() {
                let _ = writeln!(s, "E {id} {e:?}");
            }
            let _ = writeln!(s, "I {:?}", store.interner().strings());
            s
        };

        // Write all four visits as ONE write group; note frame boundaries.
        let dir = TempDir::new("torn-group");
        let mut store = ProvenanceStore::open(&dir.0, SyncPolicy::OsManaged).unwrap();
        store.begin_write_group();
        for (i, url) in visits.iter().enumerate() {
            store.begin_batch();
            let v = store.add_visit(url, t(i64::try_from(i).unwrap())).unwrap();
            store
                .set_node_attr(v, "n", i64::try_from(i).unwrap())
                .unwrap();
            store.commit_batch().unwrap();
        }
        store.commit_write_group().unwrap();
        drop(store);
        let log = dir.0.join(LOG_FILE);
        let bytes = std::fs::read(&log).unwrap();
        let mut wal = Wal::open(&log, SyncPolicy::OsManaged).unwrap();
        let frames = wal.read_all().unwrap().frames;
        assert_eq!(frames.len(), visits.len());
        drop(wal);
        let mut boundaries = vec![0usize];
        for frame in &frames {
            boundaries.push(boundaries.last().unwrap() + 8 + frame.len());
        }

        // Reference fingerprints for every complete prefix.
        let expected: Vec<String> = (0..=visits.len())
            .map(|n| {
                let rdir = TempDir::new(&format!("torn-group-ref{n}"));
                let store = reference(&rdir, n);
                fingerprint(&store)
            })
            .collect();

        for cut in 0..=bytes.len() {
            std::fs::write(&log, &bytes[..cut]).unwrap();
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            let store = ProvenanceStore::open(&dir.0, SyncPolicy::OsManaged).unwrap();
            assert_eq!(
                fingerprint(&store),
                expected[complete],
                "cut at byte {cut} must recover exactly {complete} batches"
            );
        }
    }

    #[test]
    fn interner_survives_recovery() {
        let dir = TempDir::new("intern");
        let (store, _) = build(&dir);
        let len_before = store.interner().len();
        drop(store);
        let store = ProvenanceStore::open(&dir.0, SyncPolicy::Always).unwrap();
        assert_eq!(store.interner().len(), len_before);
        assert!(store.interner().lookup("rosebud").is_some());
    }
}
