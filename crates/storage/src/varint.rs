//! LEB128 variable-length integers and ZigZag signed encoding.
//!
//! The provenance store's record format is varint-heavy: node/edge ids are
//! small dense integers, timestamps are delta-encoded (§3.1 — time stamps
//! are the bulk of per-visit metadata, and consecutive events are close in
//! time), and string ids come from the interner. Varints keep E1's overhead
//! figure honest.

use crate::cast::{offset_u64, usize_from_u64};
use crate::error::{StorageError, StorageResult};

/// Appends `value` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = value.to_le_bytes()[0] & 0x7f;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `value` using ZigZag + LEB128 (small magnitudes stay small in
/// either sign — timestamp deltas can be negative when events from
/// different tabs interleave).
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag_encode(value));
}

/// Reads an unsigned LEB128 varint from `buf` at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// Returns [`StorageError::Corrupt`] on truncation or on a varint longer
/// than 10 bytes.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> StorageResult<u64> {
    let mut result = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| StorageError::corrupt(offset_u64(*pos), "truncated varint"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(StorageError::corrupt(
                offset_u64(*pos),
                "varint overflows u64",
            ));
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if shift > 63 {
            return Err(StorageError::corrupt(offset_u64(*pos), "varint too long"));
        }
    }
}

/// Reads a ZigZag-encoded signed varint.
///
/// # Errors
///
/// Same conditions as [`read_u64`].
pub fn read_i64(buf: &[u8], pos: &mut usize) -> StorageResult<i64> {
    Ok(zigzag_decode(read_u64(buf, pos)?))
}

/// Reads a `u32`-sized varint.
///
/// # Errors
///
/// Adds a range check on top of [`read_u64`].
pub fn read_u32(buf: &[u8], pos: &mut usize) -> StorageResult<u32> {
    let v = read_u64(buf, pos)?;
    u32::try_from(v).map_err(|_| StorageError::corrupt(offset_u64(*pos), "varint exceeds u32"))
}

/// Appends a length-prefixed byte string.
pub fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_u64(out, offset_u64(bytes.len()));
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte string.
///
/// # Errors
///
/// Returns [`StorageError::Corrupt`] on truncation.
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> StorageResult<&'a [u8]> {
    let len = usize_from_u64(read_u64(buf, pos)?).ok_or_else(|| {
        StorageError::corrupt(offset_u64(*pos), "byte-string length exceeds address space")
    })?;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| StorageError::corrupt(offset_u64(*pos), "truncated byte string"))?;
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

/// Appends a length-prefixed UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_bytes(out, s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
///
/// # Errors
///
/// Returns [`StorageError::Corrupt`] on truncation or invalid UTF-8.
pub fn read_str<'a>(buf: &'a [u8], pos: &mut usize) -> StorageResult<&'a str> {
    let at = offset_u64(*pos);
    std::str::from_utf8(read_bytes(buf, pos)?)
        .map_err(|_| StorageError::corrupt(at, "invalid utf-8 in string"))
}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    // Bit-exact reinterpretation via the byte representation keeps the
    // codec free of `as` casts (L003) at zero cost.
    u64::from_ne_bytes(((v << 1) ^ (v >> 63)).to_ne_bytes())
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    let half = i64::from_ne_bytes((v >> 1).to_ne_bytes());
    let sign = i64::from_ne_bytes((v & 1).to_ne_bytes());
    half ^ -sign
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn u64_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_values_encode_in_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 128);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn zigzag_keeps_small_negatives_small() {
        let mut buf = Vec::new();
        write_i64(&mut buf, -1);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_i64(&mut buf, -64);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_i64(&mut buf, -65);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn i64_roundtrip_boundaries() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 1_000_000, -1_000_000] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn truncated_varint_is_corrupt() {
        let buf = vec![0x80u8, 0x80];
        let mut pos = 0;
        assert!(matches!(
            read_u64(&buf, &mut pos),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn overlong_varint_is_corrupt() {
        let buf = vec![0xffu8; 11];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn u32_range_check() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1);
        let mut pos = 0;
        assert!(read_u32(&buf, &mut pos).is_err());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"hello");
        write_bytes(&mut buf, b"");
        let mut pos = 0;
        assert_eq!(read_bytes(&buf, &mut pos).unwrap(), b"hello");
        assert_eq!(read_bytes(&buf, &mut pos).unwrap(), b"");
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_bytes_is_corrupt() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 100); // claims 100 bytes, provides none
        let mut pos = 0;
        assert!(read_bytes(&buf, &mut pos).is_err());
    }

    #[test]
    fn str_roundtrip_and_utf8_check() {
        let mut buf = Vec::new();
        write_str(&mut buf, "héllo");
        let mut pos = 0;
        assert_eq!(read_str(&buf, &mut pos).unwrap(), "héllo");

        let mut bad = Vec::new();
        write_bytes(&mut bad, &[0xff, 0xfe]);
        let mut pos = 0;
        assert!(read_str(&bad, &mut pos).is_err());
    }

    proptest! {
        #[test]
        fn u64_roundtrip(v: u64) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn i64_roundtrip(v: i64) {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }

        #[test]
        fn sequences_roundtrip(values in prop::collection::vec(any::<i64>(), 0..50)) {
            let mut buf = Vec::new();
            for &v in &values {
                write_i64(&mut buf, v);
            }
            let mut pos = 0;
            for &v in &values {
                prop_assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
            }
            prop_assert_eq!(pos, buf.len());
        }
    }
}
