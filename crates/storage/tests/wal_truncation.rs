//! Exhaustive torn-group recovery: a frame-group truncated at *every*
//! byte offset recovers exactly the complete prefix of its events.
//!
//! Group commit batches many event frames into one contiguous `write`,
//! so a crash can now land mid-group, not just mid-frame. The recovery
//! contract is prefix-exact: whatever byte the write tore at, replay
//! yields the longest run of whole, checksum-clean frames and nothing
//! else — no partial event, no resurrected bytes past the tear. These
//! tests don't sample tear points; they enumerate every byte offset of
//! the encoded group (including offset 0 and mid-header tears), for
//! several seeded payload mixes, and check the replayed frames are
//! bit-identical to the expected prefix.

use bp_storage::{SyncPolicy, Wal};
use std::fs;
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bp-wal-trunc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Deterministic splitmix-style PRNG so each payload mix reproduces from
/// its seed alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Event-shaped payloads of seed-determined sizes, including empty and
/// one-byte frames (the smallest legal events) so tears land inside
/// headers as often as inside payloads.
fn payloads(seed: u64, count: usize) -> Vec<Vec<u8>> {
    let mut rng = Rng(seed ^ 0x5eed);
    (0..count)
        .map(|i| {
            let len = (rng.next() % 41) as usize; // 0..=40 bytes
            (0..len)
                .map(|j| (seed as u8) ^ (i as u8) ^ (j as u8))
                .collect()
        })
        .collect()
}

/// On-disk length of one frame: 4-byte length + 4-byte CRC + payload.
fn frame_len(payload: &[u8]) -> u64 {
    8 + payload.len() as u64
}

/// How many whole frames fit in the first `cut` bytes of the group.
fn expected_prefix(group: &[Vec<u8>], cut: u64) -> usize {
    let mut end = 0u64;
    for (i, p) in group.iter().enumerate() {
        end += frame_len(p);
        if end > cut {
            return i;
        }
    }
    group.len()
}

#[test]
fn every_byte_truncation_of_a_frame_group_recovers_the_complete_prefix() {
    for seed in [3u64, 17, 91] {
        let dir = TempDir::new(&format!("group-{seed}"));
        let group = payloads(seed, 24);
        let wal_path = dir.file("full.wal");
        {
            let mut wal = Wal::open(&wal_path, SyncPolicy::OsManaged).unwrap();
            let receipt = wal.append_group(&group).unwrap();
            assert_eq!(receipt.frames, group.len());
        }
        let full = fs::read(&wal_path).unwrap();
        let total: u64 = group.iter().map(|p| frame_len(p)).sum();
        assert_eq!(
            full.len() as u64,
            total,
            "frame layout drifted (seed {seed})"
        );

        for cut in 0..=full.len() {
            let torn_path = dir.file("torn.wal");
            fs::write(&torn_path, &full[..cut]).unwrap();
            let mut wal = Wal::open(&torn_path, SyncPolicy::OsManaged).unwrap();
            let want = expected_prefix(&group, cut as u64);
            let contents = wal.read_all().unwrap();
            // Bit-identical prefix, nothing more.
            assert_eq!(
                contents.frames.len(),
                want,
                "cut at byte {cut} (seed {seed})"
            );
            for (i, frame) in contents.frames.iter().enumerate() {
                assert_eq!(frame, &group[i], "frame {i} at cut {cut} (seed {seed})");
            }
            // The open itself truncated the torn remainder, so the log is
            // immediately appendable and the new frame lands after the
            // surviving prefix.
            let tear_mid_frame = {
                let clean: u64 = group[..want].iter().map(|p| frame_len(p)).sum();
                cut as u64 > clean
            };
            assert_eq!(
                wal.truncated_on_open(),
                tear_mid_frame,
                "torn-tail detection at cut {cut} (seed {seed})"
            );
            wal.append(b"post-recovery").unwrap();
            let after = wal.read_all().unwrap();
            assert_eq!(after.frames.len(), want + 1);
            assert_eq!(after.frames[want], b"post-recovery");
            assert!(!after.torn_tail, "reopened log must be clean");
        }
    }
}

#[test]
fn bitflips_inside_a_group_stop_replay_at_the_corrupt_frame() {
    // Corruption, not truncation: flip one byte at every offset of the
    // group. The flipped frame (header or payload) must fail its CRC or
    // length check, and replay must keep exactly the frames before it.
    let dir = TempDir::new("bitflip");
    let group = payloads(7, 12);
    let wal_path = dir.file("full.wal");
    {
        let mut wal = Wal::open(&wal_path, SyncPolicy::OsManaged).unwrap();
        wal.append_group(&group).unwrap();
    }
    let full = fs::read(&wal_path).unwrap();
    let mut frame_starts = Vec::new();
    let mut off = 0u64;
    for p in &group {
        frame_starts.push(off);
        off += frame_len(p);
    }
    for flip in 0..full.len() {
        let mut corrupt = full.clone();
        corrupt[flip] ^= 0x40;
        let torn_path = dir.file("corrupt.wal");
        fs::write(&torn_path, &corrupt).unwrap();
        let mut wal = Wal::open(&torn_path, SyncPolicy::OsManaged).unwrap();
        let contents = wal.read_all().unwrap();
        // The frame containing the flipped byte is the first casualty;
        // everything before it survives bit-identical. (Replay may stop
        // there even if later bytes happen to re-align — stopping early
        // is the contract, scavenging is not.)
        let victim = frame_starts
            .iter()
            .rposition(|&s| s <= flip as u64)
            .unwrap();
        assert!(
            contents.frames.len() <= victim,
            "flip at {flip}: replay ran past the corrupt frame"
        );
        for (i, frame) in contents.frames.iter().enumerate() {
            assert_eq!(frame, &group[i], "flip at {flip}: prefix not intact");
        }
    }
}
