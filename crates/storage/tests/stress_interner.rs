//! Deterministic-interleaving stress tests for the sharded string
//! interner: seeded schedules over a shared vocabulary, yield-injection
//! at pseudorandom points, and exact invariants once every thread has
//! joined — every distinct string gets exactly one id, ids are dense,
//! and every id resolves back to its string, under any interleaving.
//!
//! The interner trades the plain variant's `&mut self` exclusivity for
//! FNV-partitioned shards with per-shard locks (capture no longer
//! serializes against queries); these tests pin the contract that the
//! sharding must not break: intern is an atomic get-or-assign even when
//! many threads race the same string across shard boundaries.

use bp_storage::ShardedInterner;
use std::collections::HashSet;
use std::sync::Arc;

/// A splitmix-style PRNG: deterministic per seed, no global state, so a
/// failing schedule is reproducible from its seed alone.
struct Schedule(u64);

impl Schedule {
    fn new(seed: u64) -> Self {
        Schedule(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Yields at seed-determined points to perturb the interleaving.
    fn maybe_yield(&mut self) {
        if self.next().is_multiple_of(8) {
            std::thread::yield_now();
        }
    }
}

/// The shared vocabulary: URL-shaped strings with deliberate hash
/// diversity (every thread interns from the same pool, so the same
/// string races across threads constantly).
fn vocabulary(words: usize) -> Vec<String> {
    (0..words)
        .map(|i| format!("http://host{}/path/{i}", i % 13))
        .collect()
}

#[test]
fn racing_interns_assign_exactly_one_dense_id_per_string() {
    for seed in [1u64, 7, 42] {
        let interner = Arc::new(ShardedInterner::new());
        let vocab = Arc::new(vocabulary(257));
        let threads: Vec<_> = (0..8u64)
            .map(|thread| {
                let interner = Arc::clone(&interner);
                let vocab = Arc::clone(&vocab);
                std::thread::spawn(move || {
                    let mut schedule = Schedule::new(seed * 1013 + thread);
                    let mut observed: Vec<(usize, u32)> = Vec::new();
                    for _ in 0..4_000 {
                        let word = (schedule.next() as usize) % vocab.len();
                        let id = interner.intern(&vocab[word]);
                        observed.push((word, id));
                        schedule.maybe_yield();
                    }
                    observed
                })
            })
            .collect();
        let observations: Vec<(usize, u32)> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        // One id per word, globally: no thread ever saw a second id for
        // a word another thread (or itself) interned first.
        let mut id_of_word: Vec<Option<u32>> = vec![None; vocab.len()];
        for (word, id) in observations {
            match id_of_word[word] {
                None => id_of_word[word] = Some(id),
                Some(prev) => assert_eq!(prev, id, "word {word} got two ids (seed {seed})"),
            }
        }
        // Exact count: the schedules cover the whole vocabulary at this
        // volume, so len() is the vocabulary size — and ids are dense.
        let ids: HashSet<u32> = id_of_word.iter().filter_map(|&id| id).collect();
        assert_eq!(
            ids.len(),
            vocab.len(),
            "duplicate ids collapse (seed {seed})"
        );
        assert_eq!(
            interner.len(),
            vocab.len(),
            "no phantom entries (seed {seed})"
        );
        let max = ids.iter().max().copied().unwrap();
        assert_eq!(max as usize, vocab.len() - 1, "ids are dense (seed {seed})");
        // Every id resolves back to exactly its string.
        for (word, id) in id_of_word.iter().enumerate() {
            let id = id.unwrap();
            assert_eq!(interner.resolve(id).as_deref(), Some(vocab[word].as_str()));
        }
        // strings() lists the table in id order with no gaps.
        let strings = interner.strings();
        assert_eq!(strings.len(), vocab.len());
        for (id, s) in strings.iter().enumerate() {
            assert_eq!(interner.intern(s) as usize, id, "id-order listing");
        }
    }
}

#[test]
fn more_threads_than_shards_stay_exact() {
    // 48 threads over 16 shards: several threads contend per shard lock;
    // the get-or-assign must stay atomic and payload accounting exact.
    let interner = Arc::new(ShardedInterner::new());
    let vocab = Arc::new(vocabulary(64));
    let threads: Vec<_> = (0..48u64)
        .map(|thread| {
            let interner = Arc::clone(&interner);
            let vocab = Arc::clone(&vocab);
            std::thread::spawn(move || {
                let mut schedule = Schedule::new(0x5eed + thread);
                for _ in 0..1_000 {
                    let word = (schedule.next() as usize) % vocab.len();
                    let id = interner.intern(&vocab[word]);
                    assert!((id as usize) < vocab.len());
                    schedule.maybe_yield();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(interner.len(), vocab.len());
    let expected_payload: usize = vocab.iter().map(String::len).sum();
    assert_eq!(interner.payload_bytes(), expected_payload, "payload exact");
}

#[test]
fn concurrent_readers_see_a_consistent_table() {
    // Writers intern fresh strings while readers repeatedly audit the
    // prefix they can see: every visible id must resolve, and resolved
    // strings must intern back to the same id (no torn publishes).
    let interner = Arc::new(ShardedInterner::new());
    let writers: Vec<_> = (0..4u64)
        .map(|thread| {
            let interner = Arc::clone(&interner);
            std::thread::spawn(move || {
                let mut schedule = Schedule::new(0xabcd + thread);
                for i in 0..2_000u64 {
                    interner.intern(&format!("t{thread}-{i}"));
                    schedule.maybe_yield();
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4u64)
        .map(|thread| {
            let interner = Arc::clone(&interner);
            std::thread::spawn(move || {
                let mut schedule = Schedule::new(0xf00d + thread);
                for _ in 0..2_000 {
                    let len = interner.len();
                    if len > 0 {
                        let probe = u32::try_from(schedule.next() % len as u64).unwrap();
                        let s = interner
                            .resolve(probe)
                            .expect("ids below len always resolve");
                        assert_eq!(interner.intern(&s), probe, "intern(resolve(id)) == id");
                    }
                    schedule.maybe_yield();
                }
            })
        })
        .collect();
    for t in writers.into_iter().chain(readers) {
        t.join().unwrap();
    }
    assert_eq!(interner.len(), 4 * 2_000);
}
