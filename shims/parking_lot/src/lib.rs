//! Offline drop-in shim for the `parking_lot` API surface this workspace
//! uses, backed by `std::sync`. The build environment has no access to a
//! crates registry, so the real crate cannot be fetched; this shim keeps
//! call sites source-compatible (`lock()`/`read()`/`write()` return guards
//! directly, no `Result`). Poisoning is deliberately transparent: a
//! panicked writer does not wedge every later lock acquisition, matching
//! parking_lot's behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError, TryLockError};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access; many readers may hold it concurrently.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_stays_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_variants() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
        let l = RwLock::new(0);
        let r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(r);
        assert!(l.try_write().is_some());
    }
}
