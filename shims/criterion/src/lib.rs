//! Offline drop-in shim for the `criterion` API surface this workspace's
//! benches use. The build environment has no crates-registry access, so the
//! real crate cannot be fetched. This is a genuine (if simple) wall-clock
//! harness: per benchmark it warms up, takes `sample_size` timed samples,
//! and prints min/median/mean per iteration. No statistical analysis,
//! plots, or baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup re-run per sample).
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation printed alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is only a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}
impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { label: s.clone() }
    }
}

/// Per-iteration timing callback holder.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, excluding nothing (the routine is the unit).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up plus rough calibration: target ~5ms per sample.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let per_sample =
            ((Duration::from_millis(5).as_nanos() / probe.as_nanos()).clamp(1, 10_000)) as u32;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample);
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let rate = throughput
            .map(|t| {
                let secs = median.as_secs_f64().max(f64::EPSILON);
                match t {
                    Throughput::Bytes(b) => {
                        format!("  {:>10.1} MiB/s", b as f64 / secs / (1 << 20) as f64)
                    }
                    Throughput::Elements(n) => format!("  {:>10.0} elem/s", n as f64 / secs),
                }
            })
            .unwrap_or_default();
        println!("{label:<50} min {min:>10.2?}  median {median:>10.2?}  mean {mean:>10.2?}{rate}");
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepts CLI arguments (ignored by the shim).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&id.label, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            throughput: None,
        }
    }

    /// Finalizes the run (printing already happened incrementally).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates following benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&format!("  {}/{}", self.name, id.label), self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&format!("  {}/{}", self.name, id.label), self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.throughput(Throughput::Elements(10));
        group.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }

    criterion_group!(benches, work);

    #[test]
    fn harness_runs_every_shape() {
        benches();
    }

    #[test]
    fn calibrated_iter_records_requested_samples() {
        let mut b = Bencher {
            sample_size: 7,
            samples: Vec::new(),
        };
        b.iter(|| black_box(3u64.pow(2)));
        assert_eq!(b.samples.len(), 7);
    }
}
