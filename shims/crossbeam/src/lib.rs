//! Offline drop-in shim for the `crossbeam::channel` API surface this
//! workspace uses, backed by `std::sync::mpsc`. The build environment has
//! no crates-registry access, so the real crate cannot be fetched.
//!
//! Crossbeam exposes one `Sender` type for both bounded and unbounded
//! channels; std splits them into `Sender`/`SyncSender`. The shim unifies
//! them behind an enum so `channel::unbounded()` and `channel::bounded(n)`
//! interoperate exactly like the real crate at the call sites we have
//! (single consumer; crossbeam's multi-consumer cloning of `Receiver` is
//! not provided).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels in the crossbeam API shape.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SenderInner<T> {
        fn clone(&self) -> Self {
            match self {
                SenderInner::Unbounded(s) => SenderInner::Unbounded(s.clone()),
                SenderInner::Bounded(s) => SenderInner::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel; clonable across threads.
    pub struct Sender<T> {
        inner: SenderInner<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking if the channel is bounded and full.
        ///
        /// # Errors
        ///
        /// Returns the value back when the receiving side has hung up.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                SenderInner::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is empty and all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }

        /// Blocking iterator over messages until disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderInner::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a bounded channel holding at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderInner::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_multi_producer_in_order_per_sender() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn bounded_ack_round_trip() {
        let (tx, rx) = channel::bounded(1);
        tx.send("ack").unwrap();
        assert_eq!(rx.recv().unwrap(), "ack");
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }

    #[test]
    fn receiver_borrowing_iter_drains_available() {
        let (tx, rx) = channel::unbounded();
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!((&rx).into_iter().count(), 3);
    }
}
