//! Offline drop-in shim for the `proptest` API surface this workspace
//! uses. The build environment has no crates-registry access, so the real
//! crate cannot be fetched; this is a small, self-contained property-test
//! engine that keeps the existing test files source-compatible:
//!
//! - [`Strategy`] with `prop_map` / `prop_filter`, implemented for integer
//!   and float ranges, tuples, [`Just`], boxed strategies, and `&str`
//!   treated as a mini regex pattern (`[a-z]{3,8}`, `.{0,200}`, …);
//! - [`any`] for the primitive types the tests draw;
//! - `prop::collection::vec` and `prop::option::of`;
//! - the [`proptest!`], [`prop_oneof!`], and `prop_assert*` macros;
//! - [`ProptestConfig`] / [`TestCaseError`].
//!
//! Differences from the real crate: no shrinking (failures print the full
//! generated inputs instead), and cases are generated from a seed derived
//! deterministically from the test's module path, so runs are reproducible
//! without `proptest-regressions` files (which are ignored).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic generator
// ---------------------------------------------------------------------------

/// The random source handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from an arbitrary tag (e.g. the test name).
    pub fn from_tag(tag: &str) -> Self {
        // FNV-1a over the tag.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (unbiased; `bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, regenerating (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter.
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer and float ranges ---------------------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// Tuples ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

// Pattern strings ------------------------------------------------------------

/// One element of a parsed mini-regex: a set of candidate chars plus a
/// repetition count range.
#[derive(Debug)]
struct PatternPart {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Alphabet used for `.`: mostly printable ASCII with a sprinkling of
/// multibyte characters so encoders meet non-ASCII input.
fn dot_alphabet() -> Vec<char> {
    let mut set: Vec<char> = (' '..='~').collect();
    set.extend(['\t', 'é', 'ß', 'Ж', '中', '🦀', 'λ', 'ñ', 'Ü']);
    set
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    loop {
        let c = chars.next().expect("unterminated [class] in pattern");
        if c == ']' {
            break;
        }
        if chars.peek() == Some(&'-') {
            // Either a range `x-y` or a literal '-' right before ']'.
            let mut ahead = chars.clone();
            ahead.next();
            match ahead.peek() {
                Some(&end) if end != ']' => {
                    chars.next();
                    chars.next();
                    out.extend(c..=end);
                    continue;
                }
                _ => {}
            }
        }
        out.push(c);
    }
    assert!(!out.is_empty(), "empty [class] in pattern");
    out
}

fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
    let mut parts = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices = match c {
            '.' => dot_alphabet(),
            '[' => parse_class(&mut chars),
            '\\' => vec![chars.next().expect("dangling escape in pattern")],
            other => vec![other],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {m,n} in pattern"),
                    hi.trim().parse().expect("bad {m,n} in pattern"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad {n} in pattern");
                    (n, n)
                }
            }
        } else if chars.peek() == Some(&'*') {
            chars.next();
            (0, 8)
        } else if chars.peek() == Some(&'+') {
            chars.next();
            (1, 8)
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted {{m,n}} in pattern");
        parts.push(PatternPart { choices, min, max });
    }
    parts
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for part in parse_pattern(self) {
            let span = (part.max - part.min) as u64;
            let count = part.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            for _ in 0..count {
                out.push(part.choices[rng.below(part.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// A strategy over the full domain of `T` (biased toward boundary values
/// for integers, and including NaN/infinities for floats, like the real
/// crate's `any`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8 boundary bias.
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        2 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw-bit reinterpretation covers NaN, infinities, subnormals.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        let set = dot_alphabet();
        set[rng.below(set.len() as u64) as usize]
    }
}

// ---------------------------------------------------------------------------
// Collections / option
// ---------------------------------------------------------------------------

/// `prop::collection` — strategies over containers.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// Anything convertible to a `(min, max)` element-count range.
    pub trait SizeRange {
        /// Lower and upper (inclusive) bounds on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange + fmt::Debug> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let (lo, hi) = self.size.bounds();
            let span = (hi - lo) as u64;
            let len = lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy, R: SizeRange + fmt::Debug>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// `prop::option` — strategies over `Option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option`s (roughly 1-in-5 `None`).
    #[derive(Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Character strategies (the `proptest::char` module shape).
pub mod char {
    use super::{Strategy, TestRng};

    /// Strategy producing arbitrary valid `char`s, biased toward ASCII.
    #[derive(Debug)]
    pub struct AnyChar;

    impl Strategy for AnyChar {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            // Mostly printable ASCII, sometimes any scalar value (skipping
            // the surrogate gap by rejection).
            if rng.below(4) != 0 {
                return (0x20 + rng.below(0x5f) as u32) as u8 as char;
            }
            loop {
                if let Some(c) = std::char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }

    /// `proptest::char::any()`.
    pub fn any() -> AnyChar {
        AnyChar
    }
}

/// Weighted union used by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: fmt::Debug> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T: fmt::Debug> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (weight, strat) in &self.arms {
            let w = u64::from(*weight);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed above")
    }
}

// ---------------------------------------------------------------------------
// Runner / config / errors
// ---------------------------------------------------------------------------

/// Test-runner configuration (the subset the workspace touches).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The inputs were rejected (filter exhaustion etc.).
    Reject(String),
}

impl TestCaseError {
    /// A falsification with the given message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl fmt::Display) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runs `case` for every generated input set; used by [`proptest!`].
///
/// `generate_and_run` draws inputs from the rng, returning the inputs'
/// debug rendering alongside the case outcome.
pub fn run_cases(
    config: &ProptestConfig,
    tag: &str,
    mut generate_and_run: impl FnMut(
        &mut TestRng,
    ) -> (String, std::thread::Result<Result<(), TestCaseError>>),
) {
    let mut rng = TestRng::from_tag(tag);
    for case in 0..config.cases {
        let (inputs, outcome) = generate_and_run(&mut rng);
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError::Reject(reason))) => {
                panic!("proptest {tag}: case {case} rejected: {reason}\ninputs: {inputs}")
            }
            Ok(Err(TestCaseError::Fail(reason))) => {
                panic!("proptest {tag}: case {case} FAILED: {reason}\ninputs: {inputs}")
            }
            Err(payload) => {
                eprintln!("proptest {tag}: case {case} panicked\ninputs: {inputs}");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: `fn name(x in strategy, …) { body }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: the config expression is hoisted
/// to repetition depth 0, and each test function is handed to the
/// parameter normalizer.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::__proptest_fn! { ($config) ($(#[$meta])*) $name () ($($params)*) $body }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: normalizes each parameter —
/// `pat in strategy` stays as-is, `ident: Type` becomes
/// `ident in any::<Type>()` — then emits the test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fn {
    // Normalize `pat in strategy`.
    ($cfg:tt $meta:tt $name:ident ($($acc:tt)*) ($pat:pat_param in $strat:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_fn! { $cfg $meta $name ($($acc)* [$pat][$strat]) ($($rest)*) $body }
    };
    ($cfg:tt $meta:tt $name:ident ($($acc:tt)*) ($pat:pat_param in $strat:expr) $body:block) => {
        $crate::__proptest_fn! { $cfg $meta $name ($($acc)* [$pat][$strat]) () $body }
    };
    // Normalize `ident: Type` (sugar for `ident in any::<Type>()`).
    ($cfg:tt $meta:tt $name:ident ($($acc:tt)*) ($arg:ident : $ty:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_fn! { $cfg $meta $name ($($acc)* [$arg][$crate::any::<$ty>()]) ($($rest)*) $body }
    };
    ($cfg:tt $meta:tt $name:ident ($($acc:tt)*) ($arg:ident : $ty:ty) $body:block) => {
        $crate::__proptest_fn! { $cfg $meta $name ($($acc)* [$arg][$crate::any::<$ty>()]) () $body }
    };
    // All parameters normalized: emit the test.
    (($config:expr) ($(#[$meta:meta])*) $name:ident ($([$pat:pat_param][$strat:expr])+) () $body:block) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    let __vals = ($($crate::Strategy::generate(&($strat), __rng),)+);
                    let __inputs = format!("{:#?}", __vals);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            let ($($pat,)+) = __vals;
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        }),
                    );
                    (__inputs, __outcome)
                },
            );
        }
    };
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r,
            )));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), l,
            )));
        }
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace alias matching `proptest::prelude::prop::…`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_tag("ranges");
        for _ in 0..500 {
            let v = crate::Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = crate::Strategy::generate(&(-4i64..=4), &mut rng);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut rng = crate::TestRng::from_tag("patterns");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z]{3,8}", &mut rng);
            assert!((3..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = crate::Strategy::generate(&"[a-z0-9:/._-]{1,30}", &mut rng);
            assert!((1..=30).contains(&t.chars().count()));
            assert!(
                t.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ":/._-".contains(c)),
                "{t:?}"
            );
            let d = crate::Strategy::generate(&".{0,20}", &mut rng);
            assert!(d.chars().count() <= 20);
        }
    }

    #[test]
    fn oneof_weights_zero_weight_never_picked() {
        let mut rng = crate::TestRng::from_tag("oneof");
        let strat = prop_oneof![
            3 => Just(1u8),
            0 => Just(2u8),
            1 => Just(3u8),
        ];
        let mut seen = [0u32; 4];
        for _ in 0..400 {
            seen[crate::Strategy::generate(&strat, &mut rng) as usize] += 1;
        }
        assert_eq!(seen[2], 0);
        assert!(seen[1] > seen[3]);
    }

    #[test]
    fn vec_and_option_strategies() {
        let mut rng = crate::TestRng::from_tag("vec");
        for _ in 0..200 {
            let v = crate::Strategy::generate(&prop::collection::vec(0u8..5, 1..4), &mut rng);
            assert!((1..=3).contains(&v.len()));
            let o = crate::Strategy::generate(&prop::option::of(Just(7u8)), &mut rng);
            assert!(o.is_none() || o == Some(7));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: tuple inputs, map/filter combinators, asserts.
        #[test]
        fn macro_end_to_end(
            xs in prop::collection::vec((0u32..10).prop_map(|x| x * 2), 0..6),
            flag in any::<bool>(),
            f in any::<f64>().prop_filter("no NaN", |f| !f.is_nan()),
        ) {
            prop_assert!(xs.iter().all(|x| x % 2 == 0));
            prop_assert!(u8::from(flag) <= 1);
            prop_assert_ne!(f.to_bits(), f64::NAN.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "FAILED")]
    fn failing_property_reports_inputs() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
