//! Offline drop-in shim for the `rand` 0.8 trait surface this workspace
//! uses. The build environment has no crates-registry access, so the real
//! crate cannot be fetched. Only the APIs the workspace calls are provided:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64` with the same SplitMix64 expansion rand uses), and
//! [`distributions::Distribution`]. Value streams are *not* bit-compatible
//! with the real crate; everything downstream only relies on determinism
//! given a seed and on reasonable uniformity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable by [`Rng::gen`] (rand's `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one uniform value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Reject the tail that would bias the modulus.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

/// Integer types uniformly samplable within a range. The blanket
/// [`SampleRange`] impls below are generic over this trait so that type
/// inference can flow from the call site's expected value type back into
/// the range's literals, exactly like rand's `SampleUniform` does.
pub trait SampleUniform: Copy + PartialOrd {
    /// `self - lower` reinterpreted as an unsigned span.
    fn span_from(self, lower: Self) -> u64;
    /// `self + offset`, where `offset` is within the type's span.
    fn offset_by(self, offset: u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn span_from(self, lower: Self) -> u64 {
                self.wrapping_sub(lower) as u64
            }
            fn offset_by(self, offset: u64) -> Self {
                self.wrapping_add(offset as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.span_from(self.start);
        self.start.offset_by(uniform_below(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi.span_from(lo);
        if span == u64::MAX {
            return lo.offset_by(rng.next_u64());
        }
        lo.offset_by(uniform_below(rng, span + 1))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface (auto-implemented for bit sources).
pub trait Rng: RngCore {
    /// One uniform value of an inferred type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// One uniform value within `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::standard_sample(self) < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed bytes (e.g. `[u8; 32]` for ChaCha).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like rand 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele et al.), the expansion rand uses.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Explicit distributions (the `rand::distributions` module shape).
pub mod distributions {
    use super::Rng;

    /// A source of values of type `T` given a generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence: uniform enough for API tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(4);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
