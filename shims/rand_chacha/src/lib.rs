//! Offline drop-in shim for `rand_chacha`: a real ChaCha8 block cipher in
//! counter mode driving the shimmed [`rand`] traits. Deterministic given a
//! seed (the property every caller in this workspace relies on), though the
//! byte stream is not guaranteed identical to the upstream crate's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn roughly_uniform_buckets() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for &count in &buckets {
            assert!((700..1300).contains(&count), "skewed: {buckets:?}");
        }
    }

    #[test]
    fn block_boundary_continues_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let mut again = ChaCha8Rng::seed_from_u64(1);
        let second: Vec<u32> = (0..40).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
        // Crosses the 16-word block boundary with distinct blocks.
        assert_ne!(&first[..16], &first[16..32]);
    }
}
