//! Time-contextual history search (§2.3).
//!
//! The wine enthusiast wants to find one specific wine page she saw weeks
//! ago. A plain history search for "wine" returns dozens of pages — but
//! she remembers she was *also shopping for plane tickets at the time*.
//! Because this browser records page close times and temporal-overlap
//! relationships (§3.2), "wine associated with plane tickets" pins the
//! page down.
//!
//! Run with:
//! ```text
//! cargo run --example time_contextual
//! ```

use bp_core::{CaptureConfig, ProvenanceBrowser};
use bp_query::{time_contextual_search, TimeContextConfig};
use bp_sim::scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("bp-example-timectx-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (_web, scenario) = scenario::wine_and_tickets(99);
    let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default())?;
    browser.ingest_all(&scenario.events)?;

    // The frustrating baseline: every wine page she ever visited.
    let all_wine = browser.text_index().search("wine");
    println!(
        "plain history search for \"wine\": {} matching objects — too many\n",
        all_wine.len()
    );

    // The natural query: "wine associated with plane tickets".
    let result = time_contextual_search(
        &browser,
        "wine",
        "plane tickets",
        &TimeContextConfig::default(),
    );
    println!(
        "\"wine associated with plane tickets\": {} hits in {:?}",
        result.hits.len(),
        result.elapsed
    );
    for hit in &result.hits {
        println!(
            "  {:>7.3}  {}  {}",
            hit.score,
            hit.key,
            hit.title.as_deref().unwrap_or("")
        );
    }

    let target = &scenario.markers.target_url;
    assert!(
        result.contains_key(target),
        "the remembered page must surface"
    );
    assert!(
        result.hits.len() < all_wine.len(),
        "time context must narrow the candidates"
    );
    println!(
        "\nfound the remembered bottle page ({target})\n\
         narrowed from {} candidates to {} (§2.3).",
        all_wine.len(),
        result.hits.len()
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
