//! Download lineage forensics (§2.4).
//!
//! A simulated user is tricked into a drive-by download: a search leads
//! through a familiar forum and a URL shortener to an unfamiliar file host
//! serving `codec-pack.exe`. This example answers both of the paper's
//! §2.4 questions:
//!
//! 1. *"Find the first ancestor of this file that the user is likely to
//!    recognize"* — the path query that explains how the file arrived;
//! 2. *"Find all descendants of this page that are downloads"* — the
//!    audit query run once the host is deemed untrusted.
//!
//! Run with:
//! ```text
//! cargo run --example download_lineage
//! ```

use bp_core::{CaptureConfig, ProvenanceBrowser};
use bp_graph::traverse::Budget;
use bp_query::{
    downloads_descending_from, find_download, first_recognizable_ancestor, full_lineage,
    LineageConfig,
};
use bp_sim::scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("bp-example-lineage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Build the drive-by scenario: background browsing + the attack chain.
    let (_web, scenario) = scenario::driveby(2026);
    let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default())?;
    browser.ingest_all(&scenario.events)?;
    println!(
        "history: {} nodes, {} edges over {} events\n",
        browser.graph().node_count(),
        browser.graph().edge_count(),
        scenario.events.len()
    );

    // Question 1: how did codec-pack.exe get here?
    let payload = &scenario.markers.download_path;
    let download = find_download(&browser, payload).expect("the download was captured");
    let answer = first_recognizable_ancestor(&browser, download, &LineageConfig::default())
        .expect("a recognizable ancestor exists");
    println!("Q1: how did {payload} get here?");
    println!(
        "    first recognizable ancestor: {} ({} visits, {} hops, answered in {:?})",
        answer.url,
        answer.visit_count,
        answer.path.hops(),
        answer.elapsed
    );
    println!("    full chain back to it:");
    for &node in &answer.path.nodes {
        let n = browser.graph().node(node)?;
        println!("      [{}] {}", n.kind(), n.key());
    }
    assert_eq!(answer.url, scenario.markers.recognizable_url);

    // The complete lineage, for the curious.
    let (lineage, truncated) = full_lineage(&browser, download, &Budget::new());
    println!(
        "    (complete lineage: {} ancestors{})",
        lineage.len() - 1,
        if truncated { ", truncated" } else { "" }
    );

    // Question 2: the host is untrusted — what else came from it?
    let host = &scenario.markers.untrusted_url;
    let suspicious = downloads_descending_from(&browser, host, &Budget::new());
    println!("\nQ2: all downloads descending from untrusted {host}:");
    for (_, path) in &suspicious {
        println!("      {path}");
    }
    assert!(suspicious.len() >= 3, "payload + the later installers");
    println!(
        "\n{} files to scan — a single query instead of manual forensics.",
        suspicious.len()
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
