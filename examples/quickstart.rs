//! Quickstart: capture a tiny browsing history and query it.
//!
//! Reproduces the paper's §2.1 "rosebud" moment end to end: the user
//! searches the web for *rosebud*, clicks through to a Citizen Kane page
//! (whose own text never contains the word), and later finds that page
//! again with a contextual *history* search — something a purely textual
//! history search cannot do.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use bp_core::{BrowserEvent, CaptureConfig, NavigationCause, ProvenanceBrowser, TabId};
use bp_graph::Timestamp;
use bp_query::{contextual_history_search, textual_history_search, ContextualConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("bp-example-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Open a provenance-aware browser profile.
    let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default())?;

    // 2. Browse: search "rosebud", click the Citizen Kane result.
    let t = |s: i64| Timestamp::from_secs(s);
    browser.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))?;
    browser.ingest(&BrowserEvent::navigate(
        t(1),
        TabId(0),
        "http://search.example/?q=rosebud",
        Some("rosebud — search"),
        NavigationCause::SearchQuery {
            query: "rosebud".into(),
        },
    ))?;
    browser.ingest(&BrowserEvent::navigate(
        t(30),
        TabId(0),
        "http://films.example/citizen-kane",
        Some("Citizen Kane (1941) — a classic of American cinema"),
        NavigationCause::Link,
    ))?;
    browser.ingest(&BrowserEvent::navigate(
        t(500),
        TabId(0),
        "http://cooking.example/pasta",
        Some("Fresh pasta recipes"),
        NavigationCause::Typed,
    ))?;

    println!(
        "captured {} nodes and {} edges (acyclic: {})\n",
        browser.graph().node_count(),
        browser.graph().edge_count(),
        browser.graph().verify_acyclic()
    );

    // 3. A textual history search for "rosebud" misses Citizen Kane...
    let config = ContextualConfig::default();
    let textual = textual_history_search(&browser, "rosebud", &config);
    println!(
        "textual search for \"rosebud\" ({} hits):",
        textual.hits.len()
    );
    for hit in &textual.hits {
        println!("  {:>7.3}  {}", hit.score, hit.key);
    }
    assert!(!textual.contains_key("http://films.example/citizen-kane"));

    // 4. ...but the contextual search follows provenance and finds it.
    let contextual = contextual_history_search(&browser, "rosebud", &config);
    println!(
        "\ncontextual search for \"rosebud\" ({} hits, {:?}):",
        contextual.hits.len(),
        contextual.elapsed
    );
    for hit in &contextual.hits {
        println!(
            "  {:>7.3}  {}  (text {:.2} + context {:.2})",
            hit.score, hit.key, hit.text_score, hit.context_score
        );
    }
    assert!(contextual.contains_key("http://films.example/citizen-kane"));
    println!("\nCitizen Kane found via provenance — the §2.1 scenario works.");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
