//! The navigation history tree (§3.1, after Ayers & Stasko).
//!
//! "If both pages and links are versioned as new instances, and only link
//! relationships are considered, the result is a tree structure" — usable
//! for visualizing recent history *and* for compact storage. This example
//! simulates a browsing day, renders the tree, and shows the parent-pointer
//! encoding's size next to the general edge encodings.
//!
//! Run with:
//! ```text
//! cargo run --example history_tree
//! ```

use bp_core::{CaptureConfig, ProvenanceBrowser};
use bp_graph::tree::HistoryTree;
use bp_sim::session::{SessionGenerator, UserProfile};
use bp_sim::web::{SyntheticWeb, WebConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("bp-example-tree-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // One day of simulated browsing.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let web = SyntheticWeb::generate(
        &WebConfig {
            pages_per_topic: 60,
            ..WebConfig::default()
        },
        &mut rng,
    );
    let mut generator =
        SessionGenerator::new(&web, UserProfile::generic(), ChaCha8Rng::seed_from_u64(6));
    let events = generator.generate(1);

    let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default())?;
    browser.ingest_all(&events)?;
    let graph = browser.graph();

    let tree = HistoryTree::extract(graph);
    println!(
        "history: {} nodes, {} edges; navigation tree: {} trees, {} tree edges\n",
        graph.node_count(),
        graph.edge_count(),
        tree.roots().len(),
        tree.edge_count()
    );

    // The Ayers & Stasko view (truncated).
    println!("{}", tree.render_ascii(graph, 4, 40));

    // The storage view: parent pointers vs general encodings.
    let tree_bytes = tree.encode().len();
    let factorized = bp_storage::factorize(graph).encoded_size();
    let raw = bp_storage::raw_structure_size(graph);
    println!("edge-structure encodings:");
    println!(
        "  raw (src,dst,kind) triples : {raw} bytes for {} edges",
        graph.edge_count()
    );
    println!("  factorized (Chapman-style) : {factorized} bytes");
    println!(
        "  navigation-tree subset     : {tree_bytes} bytes for {} edges ({:.2} bytes/edge)",
        tree.edge_count(),
        tree_bytes as f64 / tree.edge_count().max(1) as f64
    );

    // And it round-trips exactly.
    assert_eq!(HistoryTree::decode(&tree.encode()).as_ref(), Some(&tree));
    println!("\ntree encoding round-trips exactly (§3.1's storage idea, verified).");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
