//! Privacy through local processing and redaction (§4).
//!
//! The paper's closing argument: "the approach we take is to use browser
//! provenance to increase user privacy by processing the data on the
//! user's machine." This example shows the two privacy mechanisms this
//! implementation provides:
//!
//! 1. personalization that never ships history anywhere (see also the
//!    `personalized_search` example), and
//! 2. **redaction** — scrubbing a sensitive URL from the store: content
//!    leaves the graph, the text index, and (after compaction) the bytes
//!    on disk, while the surrounding lineage structure survives.
//!
//! Run with:
//! ```text
//! cargo run --example privacy_redaction
//! ```

use bp_core::{BrowserEvent, CaptureConfig, NavigationCause, ProvenanceBrowser, TabId};
use bp_graph::Timestamp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("bp-example-privacy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default())?;
    let t = |s: i64| Timestamp::from_secs(s);
    let secret = "http://clinic.example/appointment-results";

    browser.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))?;
    browser.ingest(&BrowserEvent::navigate(
        t(1),
        TabId(0),
        "http://news.example/morning",
        Some("Morning news"),
        NavigationCause::Typed,
    ))?;
    browser.ingest(&BrowserEvent::navigate(
        t(60),
        TabId(0),
        secret,
        Some("Appointment results — Clinic"),
        NavigationCause::Link,
    ))?;
    browser.ingest(&BrowserEvent::navigate(
        t(300),
        TabId(0),
        "http://recipes.example/dinner",
        Some("Dinner recipes"),
        NavigationCause::Typed,
    ))?;

    println!("before redaction:");
    println!(
        "  search 'appointment' hits: {}",
        browser.text_index().search("appointment").len()
    );
    println!(
        "  search 'clinic' hits     : {}",
        browser.text_index().search("clinic").len()
    );
    println!(
        "  visits of the page       : {}",
        browser.visit_count(secret)
    );

    // The user redacts the sensitive page.
    let scrubbed = browser.redact(secret)?;
    browser.snapshot()?; // compaction scrubs the string table on disk too
    println!("\nredacted {scrubbed} history objects and compacted the store");

    println!("\nafter redaction:");
    println!(
        "  search 'appointment' hits: {}",
        browser.text_index().search("appointment").len()
    );
    println!(
        "  search 'clinic' hits     : {}",
        browser.text_index().search("clinic").len()
    );
    println!(
        "  visits of the page       : {}",
        browser.visit_count(secret)
    );
    assert!(browser.text_index().search("appointment").is_empty());
    assert_eq!(browser.visit_count(secret), 0);

    // Graph structure (the *shape* of the session) survives for lineage.
    println!(
        "  graph: {} nodes, {} edges (structure preserved, acyclic: {})",
        browser.graph().node_count(),
        browser.graph().edge_count(),
        browser.graph().verify_acyclic()
    );

    // Nothing on disk contains the URL anymore.
    let mut disk = Vec::new();
    for entry in std::fs::read_dir(&dir)? {
        disk.extend(std::fs::read(entry?.path())?);
    }
    let gone = !disk
        .windows(b"clinic.example".len())
        .any(|w| w == b"clinic.example".as_slice());
    println!("  on-disk bytes free of the URL: {gone}");
    assert!(gone);

    println!("\nThe sensitive page is unfindable locally and absent from disk (§4).");
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
