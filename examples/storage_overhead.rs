//! Storage-overhead comparison (experiment E1, §4).
//!
//! The paper reports: "The total storage overhead of this schema over
//! Places is 39.5%, but on real data, this represents less than 5 MB
//! because Places is quite conservative." This example ingests the *same*
//! simulated event stream into both stores — the Firefox Places baseline
//! and the homogeneous provenance graph store — and prints the measured
//! overhead at a reduced scale (the full 79-day figure is produced by the
//! bench report; see EXPERIMENTS.md).
//!
//! Run with:
//! ```text
//! cargo run --example storage_overhead
//! ```

use bp_core::{CaptureConfig, ProvenanceBrowser};
use bp_places::{PlacesDb, PlacesIngester};
use bp_sim::calibrate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("bp-example-overhead-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let days = 14;
    let web = calibrate::paper_web(42);
    let events = calibrate::days_history(&web, 42, days);
    println!("simulated {days} days of browsing: {} events", events.len());

    // Baseline: what Firefox Places would store.
    let mut places = PlacesDb::new();
    let mut ingester = PlacesIngester::new();
    ingester.ingest_all(&mut places, &events)?;
    let places_bytes = places.encoded_size();

    // The provenance store, same events.
    let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default())?;
    browser.ingest_all(&events)?;
    browser.snapshot()?; // compacted figure, like a settled database
    let report = browser.size_report();
    let prov_bytes = report.total_bytes() as usize;

    let overhead = 100.0 * (prov_bytes as f64 - places_bytes as f64) / places_bytes as f64;
    println!(
        "\n  Places baseline : {:>10} bytes ({} places, {} visits)",
        places_bytes,
        places.places().len(),
        places.visits().len()
    );
    println!(
        "  provenance store: {:>10} bytes ({} nodes, {} edges)",
        prov_bytes, report.node_count, report.edge_count
    );
    println!("  overhead        : {overhead:>9.1}%   (paper reports 39.5%)");
    println!(
        "  absolute        : {:>10.2} MB  (paper: < 5 MB at 79 days)",
        prov_bytes as f64 / 1_048_576.0
    );

    assert!(
        prov_bytes > places_bytes,
        "provenance records strictly more"
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
