//! Client-side web-search personalization (§2.2).
//!
//! Two users type the same ambiguous query — "rosebud" — into the same
//! search engine. The gardener means the flower; the cinephile means the
//! sled. Each user's provenance-aware browser expands the query *locally*
//! from their own history before it leaves the machine, so the engine
//! sees only e.g. "rosebud garden" and learns nothing about their history.
//!
//! Run with:
//! ```text
//! cargo run --example personalized_search
//! ```

use bp_core::{CaptureConfig, ProvenanceBrowser};
use bp_query::{personalize_query, PersonalizeConfig};
use bp_sim::scenario;
use bp_sim::session::{SessionGenerator, UserProfile};
use bp_sim::web::{SyntheticWeb, TOPICS};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn browse(web: &SyntheticWeb, profile: UserProfile, seed: u64, tag: &str) -> ProvenanceBrowser {
    let dir = std::env::temp_dir().join(format!(
        "bp-example-personalize-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut generator = SessionGenerator::new(web, profile, ChaCha8Rng::seed_from_u64(seed));
    let events = generator.generate(7);
    let mut browser =
        ProvenanceBrowser::open(&dir, CaptureConfig::default()).expect("fresh profile opens");
    browser
        .ingest_all(&events)
        .expect("simulated events are valid");
    browser
}

fn topic_of(web: &SyntheticWeb, results: &[usize]) -> Vec<&'static str> {
    results
        .iter()
        .take(5)
        .map(|&id| TOPICS[web.page(id).topic].name)
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let web = scenario::standard_web(7);

    // A week in each user's life.
    let gardener = browse(&web, UserProfile::gardener(), 101, "gardener");
    let cinephile = browse(&web, UserProfile::cinephile(), 202, "cinephile");

    let config = PersonalizeConfig::default();
    let query = "rosebud";

    // Unpersonalized: the engine resolves the ambiguity however it likes.
    let plain = web.search(query, 10);
    println!("engine results for {query:?} (no personalization):");
    println!("  top-5 topics: {:?}\n", topic_of(&web, &plain));

    for (name, browser) in [("gardener", &gardener), ("cinephile", &cinephile)] {
        let expanded = personalize_query(browser, query, &config);
        let outgoing = expanded.to_query_string();
        println!("{name}: query sent to engine = {outgoing:?}");
        println!(
            "  expansion terms from local history: {:?}",
            expanded.added_terms
        );
        // Privacy: only the expanded string leaves the machine.
        assert!(!outgoing.contains("http"), "no URLs leak to the engine");
        let personalized = web.search(&outgoing, 10);
        println!("  top-5 topics now: {:?}\n", topic_of(&web, &personalized));
        let _ = std::fs::remove_dir_all(browser.store().dir());
    }

    println!(
        "Same engine, same query, different users — disambiguated locally,\n\
         with zero history shared with the engine (§2.2)."
    );
    Ok(())
}
