//! Live integration tests for `browserprov serve` — the observability
//! plane is exercised over real sockets against a real daemon process.
//!
//! Each test boots its own daemon on an OS-assigned port (discovered via
//! the `<profile>/serve.port` file), drives it over HTTP, and shuts it
//! down with SIGTERM, asserting a clean exit. The soak duration defaults
//! to 60 seconds per the acceptance bar; set `BP_SERVE_SOAK_SECS` to
//! shorten it during local iteration.

use bp_obs::ClockHandle;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A serve daemon under test. Killed on drop so a failing assertion
/// never leaks a background process.
struct ServeChild {
    child: Child,
    profile: PathBuf,
    port: u16,
}

impl ServeChild {
    fn spawn(tag: &str, extra: &[&str]) -> ServeChild {
        let profile =
            std::env::temp_dir().join(format!("bp-serve-live-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&profile);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_browserprov"));
        cmd.arg("serve")
            .args(["--profile"])
            .arg(&profile)
            .args(["--port", "0"])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        let child = cmd.spawn().expect("spawn browserprov serve");
        // The port file is written right after bind, before the first
        // replay cycle, so this resolves quickly even in debug builds.
        let port_file = profile.join("serve.port");
        let waited = ClockHandle::real().start();
        let port = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(port) = text.trim().parse::<u16>() {
                    break port;
                }
            }
            assert!(
                waited.elapsed() < Duration::from_secs(60),
                "serve.port never appeared in {}",
                profile.display()
            );
            std::thread::sleep(Duration::from_millis(50));
        };
        ServeChild {
            child,
            profile,
            port,
        }
    }

    fn get(&self, target: &str) -> Result<(u16, String), String> {
        http_get(self.port, target)
    }

    /// Polls until `check` passes or the timeout elapses; returns the
    /// winning response body.
    fn wait_for(
        &self,
        target: &str,
        timeout: Duration,
        check: impl Fn(u16, &str) -> bool,
    ) -> String {
        let waited = ClockHandle::real().start();
        let mut last = String::from("(no response)");
        while waited.elapsed() < timeout {
            if let Ok((status, body)) = self.get(target) {
                if check(status, &body) {
                    return body;
                }
                last = format!("status {status}: {body}");
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        panic!("timed out waiting on {target}; last: {last}");
    }

    /// SIGTERM, then asserts the daemon exits zero within the timeout.
    fn terminate_cleanly(mut self) {
        let pid = self.child.id().to_string();
        let ok = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("send SIGTERM")
            .success();
        assert!(ok, "kill -TERM {pid} failed");
        let waited = ClockHandle::real().start();
        loop {
            match self.child.try_wait().expect("wait on serve") {
                Some(status) => {
                    assert!(status.success(), "serve exited {status} after SIGTERM");
                    break;
                }
                None => {
                    assert!(
                        waited.elapsed() < Duration::from_secs(30),
                        "serve did not exit within 30s of SIGTERM"
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
        let profile = std::mem::take(&mut self.profile);
        std::mem::forget(self);
        let _ = std::fs::remove_dir_all(profile);
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.profile);
    }
}

fn http_get(port: u16, target: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| e.to_string())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| e.to_string())?;
    let status: u16 = raw
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|x| x.1.to_owned())
        .unwrap_or_default();
    Ok((status, body))
}

/// Reads an unlabeled sample (`name value`) out of Prometheus text.
fn metric(body: &str, name: &str) -> Option<f64> {
    body.lines().find_map(|line| {
        let mut parts = line.split_ascii_whitespace();
        (parts.next() == Some(name))
            .then(|| parts.next())??
            .parse()
            .ok()
    })
}

fn soak_secs() -> u64 {
    std::env::var("BP_SERVE_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// The acceptance soak: scrape `/metrics` every 250 ms for the full soak
/// window and require every scrape to parse, counters to be monotone,
/// and the daemon to keep making progress (replay cycles + SLO samples
/// both advance). Ends with a clean SIGTERM.
#[test]
fn soak_metrics_scrapes_stay_consistent() {
    // The soak replays the standard 79-day history (the serve default);
    // the first cycle takes a while in debug builds, hence the long
    // readiness allowance.
    let serve = ServeChild::spawn("soak", &[]);
    serve.wait_for("/readyz", Duration::from_secs(180), |s, _| s == 200);

    let mut last_requests = 0.0f64;
    let mut last_samples = 0.0f64;
    let mut last_cycles = 0.0f64;
    let mut scrapes = 0u64;
    let soak = ClockHandle::real().start();
    let soak_window = Duration::from_secs(soak_secs());
    while soak.elapsed() < soak_window {
        let (status, body) = serve.get("/metrics").expect("scrape /metrics");
        assert_eq!(status, 200, "scrape {scrapes} failed");
        // A counter is registered on first increment, so very early
        // scrapes may not carry every family yet; absent reads as 0 and
        // the end-of-soak assertions still require all three to appear.
        let requests = metric(&body, "bp_serve_http_requests_total").unwrap_or(0.0);
        let samples = metric(&body, "bp_slo_samples_total").unwrap_or(0.0);
        let cycles = metric(&body, "bp_serve_replay_cycles_total").unwrap_or(0.0);
        assert!(
            requests >= last_requests,
            "bp_serve_http_requests_total went backwards: {last_requests} -> {requests}"
        );
        assert!(
            samples >= last_samples,
            "bp_slo_samples_total went backwards: {last_samples} -> {samples}"
        );
        assert!(
            cycles >= last_cycles,
            "bp_serve_replay_cycles_total went backwards: {last_cycles} -> {cycles}"
        );
        (last_requests, last_samples, last_cycles) = (requests, samples, cycles);
        scrapes += 1;
        std::thread::sleep(Duration::from_millis(250));
    }
    assert!(scrapes >= 4, "soak made only {scrapes} scrapes");
    assert!(last_samples > 0.0, "no SLO samples recorded during soak");
    assert!(last_cycles > 0.0, "no replay cycles completed during soak");
    // The scrapes themselves are the daemon's request traffic.
    assert!(last_requests >= scrapes as f64 - 1.0);
    serve.terminate_cleanly();
}

/// `/healthz` must flip to 503 when the profile directory stops being
/// writable, and recover once it is writable again. Root can write
/// through any permission bits, so the test blocks the probe path itself:
/// a directory where the probe file goes makes the write fail with
/// EISDIR for every uid.
#[test]
fn healthz_flips_unhealthy_when_profile_unwritable() {
    let serve = ServeChild::spawn("healthz", &["--days", "2"]);
    serve.wait_for("/healthz", Duration::from_secs(60), |s, body| {
        s == 200 && body.trim() == "ok"
    });

    let probe = serve.profile.join(".healthz.probe");
    let _ = std::fs::remove_file(&probe);
    std::fs::create_dir(&probe).expect("block the probe path");
    serve.wait_for("/healthz", Duration::from_secs(10), |s, _| s == 503);
    let (_, body) = serve.get("/healthz").expect("unhealthy body");
    assert!(
        body.contains("unhealthy"),
        "503 body should explain itself: {body}"
    );

    std::fs::remove_dir(&probe).expect("unblock the probe path");
    serve.wait_for("/healthz", Duration::from_secs(10), |s, _| s == 200);
    serve.terminate_cleanly();
}

/// A forced worker panic (via the gated `/debug/panicz` endpoint) must
/// leave a complete flight dump on disk while the daemon survives and
/// keeps serving.
#[test]
fn forced_worker_panic_writes_complete_flight_dump() {
    let serve = ServeChild::spawn("panic", &["--days", "2", "--allow-debug-panic"]);
    serve.wait_for("/readyz", Duration::from_secs(60), |s, _| s == 200);

    let (status, _) = serve.get("/debug/panicz").expect("trigger debug panic");
    assert_eq!(status, 202);

    let dump_path = serve.profile.join("flight.dump");
    let waited = ClockHandle::real().start();
    let dump = loop {
        if let Ok(text) = std::fs::read_to_string(&dump_path) {
            if !text.is_empty() {
                break text;
            }
        }
        assert!(
            waited.elapsed() < Duration::from_secs(10),
            "flight.dump never appeared"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(
        dump.starts_with("# bp-flight dump v1"),
        "dump header missing: {}",
        dump.lines().next().unwrap_or_default()
    );
    assert!(
        dump.contains("debug panic requested"),
        "panic event missing from flight dump"
    );
    // Every retained line after the header must be a complete JSON
    // object — a torn dump would betray the recorder.
    for line in dump.lines().skip(1).filter(|l| !l.is_empty()) {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "torn flight-dump line: {line}"
        );
    }

    // The daemon itself survived the worker panic.
    let (status, _) = serve.get("/healthz").expect("daemon survived panic");
    assert_eq!(status, 200);
    serve.terminate_cleanly();
}

/// The request-tracing acceptance path, end to end: a forced deadline
/// miss must leave a retained trace in `/tracez` findable by `?min_ms=`
/// and `?id=`, the same trace ID stamped on the structured log line in
/// the flight recorder, a histogram exemplar in `/metrics.json` pointing
/// at a retained trace, and the fast-burn alert line naming the worst
/// retained offenders.
#[test]
fn deadline_miss_traces_are_retrievable_end_to_end() {
    let serve = ServeChild::spawn(
        "tracing",
        &[
            "--days",
            "2",
            "--inject-latency-us",
            "300000",
            "--query-interval-ms",
            "20",
        ],
    );
    serve.wait_for("/readyz", Duration::from_secs(60), |s, _| s == 200);

    // 1. A deadline-missed trace is retained and searchable by latency
    //    floor; the same ID resolves via `?id=`. The retention ring
    //    churns quickly under the injected-latency barrage, so pick the
    //    newest match and retry the pair until a lookup lands.
    let waited = ClockHandle::real().start();
    let trace_id = loop {
        assert!(
            waited.elapsed() < Duration::from_secs(60),
            "no deadline-miss trace became retrievable by id"
        );
        let found = serve
            .get("/tracez?min_ms=250")
            .ok()
            .filter(|(status, _)| *status == 200)
            .and_then(|(_, body)| {
                let line = body.lines().rfind(|l| l.contains("deadline_miss"))?;
                let id = line.split_ascii_whitespace().next()?.to_owned();
                assert_eq!(id.len(), 16, "trace IDs render as 16 hex digits: {line}");
                let (status, by_id) = serve.get(&format!("/tracez?id={id}")).ok()?;
                (status == 200 && by_id.contains(&id) && by_id.contains("deadline_miss"))
                    .then_some(id)
            });
        if let Some(id) = found {
            break id;
        }
        std::thread::sleep(Duration::from_millis(100));
    };

    // 2. The same ID is stamped on the structured deadline-miss log line
    //    held by the flight recorder (fetched promptly: the flight ring
    //    holds ~4k events and the miss barrage churns it).
    let (status, flight) = serve.get("/debug/flightz").expect("flight dump");
    assert_eq!(status, 200);
    let stamp = format!("\"trace_id\":\"{trace_id}\"");
    assert!(
        flight.contains(&stamp),
        "flight recorder lost the trace stamp {trace_id}"
    );

    // 3. `/metrics.json` carries histogram exemplars for the query-latency
    //    families, each pointing at a trace by its canonical ID.
    let body = serve.wait_for("/metrics.json", Duration::from_secs(30), |s, body| {
        s == 200 && body.contains("\"exemplars\":")
    });
    let doc = bp_obs::json::parse(&body).expect("metrics.json parses");
    let histograms = doc.get("histograms").expect("histograms object");
    let exemplar_id = [
        "query.context.latency_us",
        "query.textual.latency_us",
        "query.timectx.latency_us",
    ]
    .iter()
    .find_map(|name| {
        histograms
            .get(name)?
            .get("exemplars")?
            .as_array()?
            .first()?
            .get("trace_id")?
            .as_str()
            .map(str::to_owned)
    })
    .expect("a query-latency histogram carries an exemplar");
    assert_eq!(exemplar_id.len(), 16, "{exemplar_id}");

    // 4. The fast-burn alert line names the worst retained offenders.
    serve.wait_for("/metrics", Duration::from_secs(60), |s, body| {
        s == 200 && metric(body, "bp_slo_alerts_total").unwrap_or(0.0) >= 1.0
    });
    let (status, flight) = serve.get("/debug/flightz").expect("flight after alert");
    assert_eq!(status, 200);
    let alert_line = flight
        .lines()
        .find(|l| l.contains("SLO fast burn:") && l.contains("\"worst_traces\""))
        .expect("fast-burn alert line with worst_traces reached the flight recorder");
    let worst = alert_line
        .split("\"worst_traces\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("worst_traces parses");
    assert!(
        worst.split(',').all(|id| id.len() == 16),
        "worst_traces must be canonical trace IDs: {worst}"
    );

    serve.terminate_cleanly();
}

/// `--inject-latency-us 300000` pushes every query past the 200 ms
/// deadline; the fast-burn rule must trip exactly once (the alert is
/// latched) and the burn-rate gauges must report the saturated burn.
#[test]
fn injected_latency_trips_fast_burn_rule_exactly_once() {
    let serve = ServeChild::spawn(
        "burn",
        &[
            "--days",
            "2",
            "--inject-latency-us",
            "300000",
            "--query-interval-ms",
            "20",
        ],
    );
    serve.wait_for("/readyz", Duration::from_secs(60), |s, _| s == 200);

    // Wait until the SLO engine has evaluated enough all-miss samples to
    // fire the alert.
    let body = serve.wait_for("/metrics", Duration::from_secs(60), |s, body| {
        s == 200 && metric(body, "bp_slo_alerts_total").unwrap_or(0.0) >= 1.0
    });
    assert_eq!(metric(&body, "bp_slo_alerts_total"), Some(1.0));
    // Gauges are scaled thousandths; an all-miss 99% objective burns at
    // 100x, far past the 14.4x fast threshold.
    let burn_5m = metric(&body, "bp_slo_burn_rate_5m").expect("5m burn gauge");
    assert!(burn_5m >= 14_400.0, "5m burn rate too low: {burn_5m}");

    // Keep scraping: the alert is latched, so the counter must stay at
    // exactly one while misses continue.
    let latched = ClockHandle::real().start();
    while latched.elapsed() < Duration::from_secs(5) {
        let (status, body) = serve.get("/metrics").expect("follow-up scrape");
        assert_eq!(status, 200);
        assert_eq!(
            metric(&body, "bp_slo_alerts_total"),
            Some(1.0),
            "fast-burn alert fired more than once"
        );
        std::thread::sleep(Duration::from_millis(250));
    }
    serve.terminate_cleanly();
}
