//! End-to-end integration: simulator → capture → store → all four
//! use-case queries, on one multi-day history.

use bp_core::{CaptureConfig, ProvenanceBrowser};
use bp_graph::stats::stats;
use bp_graph::traverse::Budget;
use bp_graph::NodeKind;
use bp_query::{
    contextual_history_search, downloads_descending_from, find_download,
    first_recognizable_ancestor, personalize_query, time_contextual_search, ContextualConfig,
    LineageConfig, PersonalizeConfig, TimeContextConfig,
};
use bp_sim::calibrate;
use std::path::PathBuf;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bp-it-e2e-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn week_browser(tag: &str, seed: u64) -> (TempDir, ProvenanceBrowser) {
    let dir = TempDir::new(tag);
    let web = calibrate::paper_web(seed);
    let events = calibrate::days_history(&web, seed, 7);
    let mut browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    let n = browser.ingest_all(&events).unwrap();
    assert_eq!(n, events.len());
    (dir, browser)
}

#[test]
fn full_pipeline_produces_a_healthy_graph() {
    let (_dir, browser) = week_browser("healthy", 11);
    let s = stats(browser.graph());
    assert!(
        s.nodes > 500,
        "a week of browsing is substantial: {}",
        s.nodes
    );
    assert!(s.edges > s.nodes / 2);
    assert!(browser.graph().verify_acyclic());
    // Every §3.3 object kind shows up.
    for kind in [
        NodeKind::PageVisit,
        NodeKind::Page,
        NodeKind::SearchTerm,
        NodeKind::Bookmark,
        NodeKind::Download,
        NodeKind::FormEntry,
        NodeKind::Tab,
    ] {
        assert!(
            browser.graph().nodes_of_kind(kind).count() > 0,
            "missing node kind {kind}"
        );
    }
    // No silent drops: every search term node has at least one descendant
    // (the results page it generated).
    for term in browser.graph().nodes_of_kind(NodeKind::SearchTerm) {
        assert!(browser.graph().in_degree(term) > 0, "orphan search term");
    }
}

#[test]
fn all_four_use_case_queries_run_within_the_paper_bound() {
    let (_dir, browser) = week_browser("queries", 12);

    // §2.1 — contextual history search.
    let contextual =
        contextual_history_search(&browser, "news report", &ContextualConfig::default());
    assert!(!contextual.hits.is_empty());
    assert!(
        contextual.elapsed.as_millis() < 200,
        "contextual took {:?}",
        contextual.elapsed
    );

    // §2.2 — personalization.
    let expanded = personalize_query(&browser, "report", &PersonalizeConfig::default());
    let _ = expanded.to_query_string();

    // §2.3 — time-contextual search. Subject and companion both exist in
    // a generic user's vocabulary.
    let timectx =
        time_contextual_search(&browser, "news", "software", &TimeContextConfig::default());
    assert!(timectx.elapsed.as_millis() < 200, "{:?}", timectx.elapsed);

    // §2.4 — lineage over a real simulated download, if the week had one.
    let download = browser.graph().nodes_of_kind(NodeKind::Download).next();
    if let Some(dl) = download {
        let answer = first_recognizable_ancestor(
            &browser,
            dl,
            &LineageConfig {
                recognizable_visits: 1,
                ..LineageConfig::default()
            },
        );
        assert!(answer.is_some(), "every download has at least its page");
        let answer = answer.unwrap();
        assert!(answer.elapsed.as_millis() < 200);
        assert!(answer.path.hops() >= 1);
    }
}

#[test]
fn lineage_and_descendants_are_mutually_consistent() {
    let (_dir, browser) = week_browser("consistency", 13);
    let downloads: Vec<_> = browser.graph().nodes_of_kind(NodeKind::Download).collect();
    for dl in downloads.iter().take(5) {
        let path = browser.graph().node(*dl).unwrap().key().to_owned();
        assert_eq!(find_download(&browser, &path), Some(*dl));
        // The download's direct source page must list it as a descendant.
        let (lineage, _) = bp_query::full_lineage(&browser, *dl, &Budget::new());
        let source_url = lineage
            .iter()
            .find(|(n, _)| browser.graph().node(*n).unwrap().kind() == NodeKind::PageVisit)
            .map(|(_, url)| url.clone());
        if let Some(url) = source_url {
            let descendants = downloads_descending_from(&browser, &url, &Budget::new());
            assert!(
                descendants.iter().any(|(n, _)| n == dl),
                "download must descend from its own source page"
            );
        }
    }
}

#[test]
fn text_index_covers_every_visit() {
    let (_dir, browser) = week_browser("coverage", 14);
    // Every visit's URL tokens must be findable — no silently unindexed
    // history (the §3.3 "at the very least" expectation).
    let mut checked = 0;
    for (id, node) in browser.graph().nodes() {
        if node.kind() != NodeKind::PageVisit || checked > 50 {
            continue;
        }
        let tokens = bp_text::significant_tokens(node.key());
        let Some(token) = tokens.first() else {
            continue;
        };
        let hits = browser.text_index().search(token);
        assert!(
            hits.iter().any(|(doc, _)| *doc == id.index()),
            "visit {id} not indexed under {token:?}"
        );
        checked += 1;
    }
    assert!(checked > 10);
}

#[test]
fn deadline_budget_bounds_worst_case_queries() {
    let (_dir, browser) = week_browser("bound", 15);
    let config = ContextualConfig {
        budget: Budget::new().with_deadline(std::time::Duration::from_millis(200)),
        ..ContextualConfig::default()
    };
    // Query matching very many documents (every URL contains "example").
    let r = contextual_history_search(&browser, "example news game wine", &config);
    // Generous envelope: deadline 200 ms plus scheduling slack.
    assert!(
        r.elapsed.as_millis() < 400,
        "bounded query ran {:?}",
        r.elapsed
    );
}
