//! The four §2 scenarios, end to end: simulator ground truth → capture →
//! query → the paper's claimed outcome.

use bp_core::{CaptureConfig, ProvenanceBrowser};
use bp_graph::traverse::Budget;
use bp_query::{
    contextual_history_search, downloads_descending_from, find_download,
    first_recognizable_ancestor, personalize_query, textual_history_search, time_contextual_search,
    ContextualConfig, LineageConfig, PersonalizeConfig, TimeContextConfig,
};
use bp_sim::scenario;
use std::path::PathBuf;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bp-it-scenario-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn ingest(events: &[bp_core::BrowserEvent], tag: &str) -> (TempDir, ProvenanceBrowser) {
    let dir = TempDir::new(tag);
    let mut browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    browser.ingest_all(events).unwrap();
    (dir, browser)
}

#[test]
fn s21_contextual_search_finds_what_textual_misses() {
    let (_web, s) = scenario::rosebud(31);
    let (_dir, browser) = ingest(&s.events, "rosebud");
    let config = ContextualConfig::default();

    let textual = textual_history_search(&browser, &s.markers.query, &config);
    assert!(
        !textual.contains_key(&s.markers.target_url),
        "textual search must miss the Kane page (it contains no 'rosebud')"
    );

    let contextual = contextual_history_search(&browser, &s.markers.query, &config);
    assert!(
        contextual.contains_key(&s.markers.target_url),
        "contextual search must find it: {:?}",
        contextual.top_keys(10)
    );
    assert!(contextual.elapsed.as_millis() < 200);
}

#[test]
fn s22_personalization_disambiguates_rosebud() {
    let (web, s) = scenario::gardener(32);
    let (_dir, browser) = ingest(&s.events, "gardener");

    let expanded = personalize_query(&browser, &s.markers.query, &PersonalizeConfig::default());
    assert!(
        !expanded.is_unchanged(),
        "a week of gardening must drive expansion"
    );
    // The expanded query improves the rank of gardening pages at the
    // engine without sending it any history.
    let outgoing = expanded.to_query_string();
    assert!(!outgoing.contains("http"));
    let plain: Vec<usize> = web.search(&s.markers.query, 10);
    let personalized: Vec<usize> = web.search(&outgoing, 10);
    let gardening_frac = |ids: &[usize]| {
        ids.iter()
            .filter(|&&id| web.page(id).url.contains("gardening"))
            .count() as f64
            / ids.len().max(1) as f64
    };
    assert!(
        gardening_frac(&personalized) >= gardening_frac(&plain),
        "personalization must not reduce topical precision: {:?} -> {:?}",
        gardening_frac(&plain),
        gardening_frac(&personalized)
    );
}

#[test]
fn s23_wine_associated_with_plane_tickets() {
    let (_web, s) = scenario::wine_and_tickets(33);
    let (_dir, browser) = ingest(&s.events, "wine");

    let result = time_contextual_search(
        &browser,
        &s.markers.query,
        &s.markers.companion_query,
        &TimeContextConfig::default(),
    );
    assert!(
        result.contains_key(&s.markers.target_url),
        "the remembered wine page must surface: {:?}",
        result.top_keys(10)
    );
    // The whole point: far fewer hits than a plain wine search.
    let plain = browser.text_index().search(&s.markers.query);
    assert!(result.hits.len() < plain.len());
    assert!(result.elapsed.as_millis() < 200);
}

#[test]
fn s24_download_lineage_and_untrusted_descendants() {
    let (_web, s) = scenario::driveby(34);
    let (_dir, browser) = ingest(&s.events, "driveby");

    let dl = find_download(&browser, &s.markers.download_path).expect("download captured");
    let answer = first_recognizable_ancestor(&browser, dl, &LineageConfig::default())
        .expect("a recognizable ancestor exists");
    assert_eq!(
        answer.url, s.markers.recognizable_url,
        "the familiar forum is the first recognizable ancestor"
    );
    assert!(answer.elapsed.as_millis() < 200);

    let suspicious = downloads_descending_from(&browser, &s.markers.untrusted_url, &Budget::new());
    assert!(
        suspicious.len() >= 3,
        "payload plus the later installers: {suspicious:?}"
    );
    assert!(suspicious
        .iter()
        .any(|(_, p)| p == &s.markers.download_path));
}

#[test]
fn scenarios_survive_restart() {
    // The scenario answers must hold after close/reopen (recovery).
    let (_web, s) = scenario::driveby(35);
    let dir = TempDir::new("restart");
    {
        let mut browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        browser.ingest_all(&s.events).unwrap();
    }
    let browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    let dl = find_download(&browser, &s.markers.download_path).unwrap();
    let answer = first_recognizable_ancestor(&browser, dl, &LineageConfig::default()).unwrap();
    assert_eq!(answer.url, s.markers.recognizable_url);
}
