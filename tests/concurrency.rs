//! Concurrency integration: the background capture pipeline ingests a
//! realistic stream while reader threads query the same store.

use bp_core::{
    BrowserEvent, CaptureConfig, CapturePipeline, NavigationCause, ProvenanceBrowser, TabId,
};
use bp_graph::{NodeKind, Timestamp};
use bp_obs::Obs;
use bp_query::{contextual_history_search, ContextualConfig};
use bp_sim::calibrate;
use bp_storage::SyncPolicy;
use std::path::PathBuf;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bp-it-conc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn pipeline_ingests_simulated_days_with_concurrent_queries() {
    let dir = TempDir::new("pipeline");
    let web = calibrate::paper_web(71);
    let events = calibrate::days_history(&web, 71, 2);
    let browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    let pipeline = CapturePipeline::start(browser);

    // Reader threads run contextual searches while capture proceeds.
    let readers: Vec<_> = (0..3)
        .map(|i| {
            let shared = pipeline.shared();
            std::thread::spawn(move || {
                let queries = ["news", "wine", "software"];
                let mut total_hits = 0usize;
                for _ in 0..50 {
                    let guard = shared.read();
                    let r = contextual_history_search(
                        &guard,
                        queries[i % queries.len()],
                        &ContextualConfig::default(),
                    );
                    total_hits += r.hits.len();
                    assert!(guard.graph().verify_acyclic());
                }
                total_hits
            })
        })
        .collect();

    for event in &events {
        assert!(pipeline.submit(event.clone()));
    }
    pipeline.flush();
    for reader in readers {
        reader.join().unwrap();
    }
    assert_eq!(pipeline.rejected_events(), 0, "simulated streams are valid");
    assert!(pipeline.failure().is_none());

    let browser = pipeline.shutdown();
    let nodes = browser.graph().node_count();
    assert!(nodes > 200, "two days of history captured: {nodes}");
    drop(browser);

    // Everything the pipeline captured survives recovery.
    let reopened = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    assert_eq!(reopened.graph().node_count(), nodes);
    assert!(reopened.graph().verify_acyclic());
    assert!(reopened.graph().nodes_of_kind(NodeKind::PageVisit).count() > 0);
}

/// The tentpole's exactness claim: with an isolated registry, the capture
/// counters agree with the submitted stream to the event, even when four
/// producer threads race into the queue.
#[test]
fn pipeline_metrics_are_exact_under_concurrent_ingest() {
    let dir = TempDir::new("metrics");
    let obs = Obs::isolated();
    let browser = ProvenanceBrowser::open_with_obs(
        &dir.0,
        CaptureConfig::default(),
        SyncPolicy::OsManaged,
        obs.clone(),
    )
    .unwrap();
    let pipeline = CapturePipeline::start(browser);

    // Four producers, one tab each: a tab open plus 100 navigations.
    // Timestamps are striped per tab (each tab's stream is internally
    // ordered; nothing requires global order across tabs).
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let pipeline = &pipeline;
            s.spawn(move || {
                let tab = TabId(t);
                let base = i64::from(t) * 1_000_000;
                assert!(pipeline.submit(BrowserEvent::tab_opened(
                    Timestamp::from_secs(base),
                    tab,
                    None
                )));
                for i in 0..100 {
                    assert!(pipeline.submit(BrowserEvent::navigate(
                        Timestamp::from_secs(base + i + 1),
                        tab,
                        format!("http://t{t}.example/p{i}"),
                        Some("concurrent page"),
                        NavigationCause::Link,
                    )));
                }
            });
        }
    });
    // One deliberately invalid event: a navigation in a never-opened tab.
    pipeline.submit(BrowserEvent::navigate(
        Timestamp::from_secs(9_000_000),
        TabId(9),
        "http://invalid.example/",
        None,
        NavigationCause::Link,
    ));
    pipeline.flush();

    assert_eq!(
        obs.counter("capture.events_total").get(),
        404,
        "4 tab opens + 400 navigations, exactly"
    );
    assert_eq!(obs.counter("capture.events_rejected").get(), 1);
    assert_eq!(
        obs.gauge("capture.queue_depth").get(),
        0,
        "flush drains the queue"
    );
    assert_eq!(obs.histogram("capture.batch_ops").snapshot().count, 404);
    assert!(
        obs.counter("wal.appends_total").get() >= 404,
        "every applied event commits at least one log frame"
    );
    assert!(obs.counter("capture.flushes").get() >= 1);

    assert_eq!(pipeline.rejected_events(), 1);
    let browser = pipeline.shutdown();
    assert_eq!(
        browser.graph().nodes_of_kind(NodeKind::PageVisit).count(),
        400
    );
    assert!(browser.graph().verify_acyclic());
}

#[test]
fn two_pipelines_on_distinct_profiles_do_not_interfere() {
    let dir_a = TempDir::new("a");
    let dir_b = TempDir::new("b");
    let web = calibrate::paper_web(72);
    let events_a = calibrate::days_history(&web, 72, 1);
    let events_b = calibrate::days_history(&web, 73, 1);
    let pipe_a = CapturePipeline::start(
        ProvenanceBrowser::open(&dir_a.0, CaptureConfig::default()).unwrap(),
    );
    let pipe_b = CapturePipeline::start(
        ProvenanceBrowser::open(&dir_b.0, CaptureConfig::firefox_like()).unwrap(),
    );
    for e in &events_a {
        pipe_a.submit(e.clone());
    }
    for e in &events_b {
        pipe_b.submit(e.clone());
    }
    pipe_a.flush();
    pipe_b.flush();
    let a = pipe_a.shutdown();
    let b = pipe_b.shutdown();
    assert!(a.graph().node_count() > 0);
    assert!(b.graph().node_count() > 0);
    // Different capture configs leave different fingerprints.
    assert!(a
        .graph()
        .edges()
        .any(|(_, e)| e.kind() == bp_graph::EdgeKind::TypedLocation));
    assert!(!b
        .graph()
        .edges()
        .any(|(_, e)| e.kind() == bp_graph::EdgeKind::TypedLocation));
}
