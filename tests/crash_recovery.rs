//! Crash-recovery integration: the durable store survives restarts,
//! snapshots, and torn log tails with zero committed-data loss.

use bp_core::{CaptureConfig, ProvenanceBrowser};
use bp_sim::calibrate;
use std::io::Write as _;
use std::path::PathBuf;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bp-it-crash-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn fingerprint(browser: &ProvenanceBrowser) -> (usize, usize, usize, String) {
    let g = browser.graph();
    let sample: String = g
        .nodes()
        .take(200)
        .map(|(id, n)| format!("{id}:{n};"))
        .collect();
    (
        g.node_count(),
        g.edge_count(),
        browser.store().interner().len(),
        sample,
    )
}

#[test]
fn restart_preserves_everything() {
    let dir = TempDir::new("restart");
    let web = calibrate::paper_web(21);
    let events = calibrate::days_history(&web, 21, 3);
    let before = {
        let mut browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        browser.ingest_all(&events).unwrap();
        fingerprint(&browser)
    };
    let browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    assert_eq!(fingerprint(&browser), before);
    assert!(browser.graph().verify_acyclic());
}

#[test]
fn snapshot_then_more_events_then_restart() {
    let dir = TempDir::new("snapshot");
    let web = calibrate::paper_web(22);
    let day1 = calibrate::days_history(&web, 22, 1);
    let mut generator_events = calibrate::days_history(&web, 22, 2);
    let day2: Vec<_> = generator_events.split_off(day1.len());
    assert!(!day2.is_empty());

    let before = {
        let mut browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        browser.ingest_all(&day1).unwrap();
        browser.snapshot().unwrap();
        browser.ingest_all(&day2).unwrap();
        fingerprint(&browser)
    };
    let browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    assert_eq!(fingerprint(&browser), before);
    // And the snapshot actually holds data.
    assert!(browser.size_report().snapshot_bytes > 0);
    assert!(browser.size_report().log_bytes > 0);
}

#[test]
fn torn_log_tail_is_discarded_quietly() {
    let dir = TempDir::new("torn");
    let web = calibrate::paper_web(23);
    let events = calibrate::days_history(&web, 23, 2);
    let before = {
        let mut browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        browser.ingest_all(&events).unwrap();
        browser.sync().unwrap();
        fingerprint(&browser)
    };
    // Simulate a crash mid-append: garbage at the log tail.
    let log = dir.0.join("log.wal");
    let mut f = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
    f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
    drop(f);

    let browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    assert_eq!(fingerprint(&browser), before, "committed data intact");
}

#[test]
fn truncated_log_recovers_a_prefix_and_accepts_new_writes() {
    let dir = TempDir::new("prefix");
    let web = calibrate::paper_web(24);
    let events = calibrate::days_history(&web, 24, 1);
    {
        let mut browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        browser.ingest_all(&events).unwrap();
        browser.sync().unwrap();
    }
    // Chop the log mid-frame.
    let log = dir.0.join("log.wal");
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..bytes.len() * 2 / 3]).unwrap();

    let mut browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    let recovered_nodes = browser.graph().node_count();
    assert!(recovered_nodes > 0, "a prefix survives");
    assert!(browser.graph().verify_acyclic());
    // The store keeps working after the amputation.
    let more = calibrate::days_history(&web, 25, 1);
    browser.ingest_all(&more).unwrap();
    assert!(browser.graph().node_count() > recovered_nodes);
    // And the post-recovery writes survive another restart.
    let after = fingerprint(&browser);
    drop(browser);
    let browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    assert_eq!(fingerprint(&browser), after);
}

#[test]
fn repeated_snapshot_cycles_are_stable() {
    let dir = TempDir::new("cycles");
    let web = calibrate::paper_web(26);
    let mut browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    for day in 0..3 {
        let events = {
            // Each day continues the same deterministic stream.
            let all = calibrate::days_history(&web, 26, day + 1);
            let prev = if day == 0 {
                0
            } else {
                calibrate::days_history(&web, 26, day).len()
            };
            all[prev..].to_vec()
        };
        browser.ingest_all(&events).unwrap();
        browser.snapshot().unwrap();
    }
    let before = fingerprint(&browser);
    drop(browser);
    let browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    assert_eq!(fingerprint(&browser), before);
    assert_eq!(browser.size_report().log_bytes, 0, "fully compacted");
}
