//! Query-language integration: the `ql` surface run end-to-end against a
//! simulated multi-day history, checking it agrees with the library calls
//! it wraps and stays inside the latency budget.

use bp_core::{CaptureConfig, ProvenanceBrowser};
use bp_graph::traverse::Budget;
use bp_graph::NodeKind;
use bp_query::ql;
use bp_sim::calibrate;
use std::path::PathBuf;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bp-it-ql-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn browser(tag: &str) -> (TempDir, ProvenanceBrowser) {
    let dir = TempDir::new(tag);
    let web = calibrate::paper_web(81);
    let events = calibrate::days_history(&web, 81, 3);
    let mut b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    b.ingest_all(&events).unwrap();
    (dir, b)
}

#[test]
fn node_scans_match_graph_counts() {
    let (_dir, b) = browser("scan");
    for kind in [
        NodeKind::PageVisit,
        NodeKind::SearchTerm,
        NodeKind::Download,
        NodeKind::Bookmark,
    ] {
        let rows = ql::run(
            &b,
            &format!("nodes where type = {}", kind.label()),
            &Budget::new(),
        )
        .unwrap();
        assert_eq!(
            rows.rows.len(),
            b.graph().nodes_of_kind(kind).count(),
            "scan must agree with the graph for {kind}"
        );
    }
}

#[test]
fn ancestor_queries_agree_with_traversals() {
    let (_dir, b) = browser("anc");
    let download = b
        .graph()
        .nodes_of_kind(NodeKind::Download)
        .next()
        .expect("history has downloads");
    let rows = ql::run(
        &b,
        &format!("ancestors(#{})", download.index()),
        &Budget::new(),
    )
    .unwrap();
    let traversal = bp_graph::traverse::ancestors(b.graph(), download);
    assert_eq!(
        rows.rows.len(),
        traversal.len() - 1,
        "QL ancestors = BFS ancestors minus the start node"
    );
    // Depth filters are monotone.
    let d1 = ql::run(
        &b,
        &format!("ancestors(#{}) where depth <= 1", download.index()),
        &Budget::new(),
    )
    .unwrap();
    let d3 = ql::run(
        &b,
        &format!("ancestors(#{}) where depth <= 3", download.index()),
        &Budget::new(),
    )
    .unwrap();
    assert!(d1.rows.len() <= d3.rows.len());
    assert!(d3.rows.len() <= rows.rows.len());
}

#[test]
fn printable_queries_execute_identically() {
    let (_dir, b) = browser("print");
    let download = b
        .graph()
        .nodes_of_kind(NodeKind::Download)
        .next()
        .expect("history has downloads");
    let source = format!(
        "ancestors(#{}) where type = visit and visits >= 2 limit 5",
        download.index()
    );
    let parsed = ql::parse(&source).unwrap();
    let reprinted = parsed.to_string();
    let a = ql::execute(&b, &parsed, &Budget::new()).unwrap();
    let b2 = ql::run(&b, &reprinted, &Budget::new()).unwrap();
    assert_eq!(a.rows, b2.rows, "printed query is semantically identical");
}

#[test]
fn queries_stay_inside_the_paper_latency_bound() {
    let (_dir, b) = browser("latency");
    let download = b
        .graph()
        .nodes_of_kind(NodeKind::Download)
        .next()
        .expect("history has downloads");
    for q in [
        "nodes where type = search_term".to_owned(),
        format!("ancestors(#{})", download.index()),
        "descendants(#0) where type = download".to_string(),
        format!("overlapping(#{}) where type = visit", download.index()),
    ] {
        let rows = ql::run(&b, &q, &Budget::new()).unwrap();
        assert!(
            rows.elapsed.as_millis() < 200,
            "{q} took {:?}",
            rows.elapsed
        );
    }
}

#[test]
fn budget_truncation_is_reported_through_the_ql() {
    let (_dir, b) = browser("budget");
    let download = b
        .graph()
        .nodes_of_kind(NodeKind::Download)
        .next()
        .expect("history has downloads");
    let rows = ql::run(
        &b,
        &format!("ancestors(#{})", download.index()),
        &Budget::new().with_max_nodes(3),
    )
    .unwrap();
    assert!(rows.truncated);
    assert!(rows.rows.len() <= 3);
}
