//! Parity between the Places baseline and the provenance store: both
//! ingest the identical event stream, so everything Places records must
//! agree with the provenance graph's view — and the provenance store must
//! record strictly more (the §3.2–3.3 gaps).

use bp_core::{CaptureConfig, EventKind, NavigationCause, ProvenanceBrowser};
use bp_graph::NodeKind;
use bp_places::{PlacesDb, PlacesIngester};
use bp_sim::calibrate;
use std::collections::HashSet;
use std::path::PathBuf;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bp-it-parity-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn build(
    seed: u64,
    days: u32,
    tag: &str,
) -> (
    TempDir,
    ProvenanceBrowser,
    PlacesDb,
    Vec<bp_core::BrowserEvent>,
) {
    let web = calibrate::paper_web(seed);
    let events = calibrate::days_history(&web, seed, days);
    let dir = TempDir::new(tag);
    let mut browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
    browser.ingest_all(&events).unwrap();
    let mut places = PlacesDb::new();
    let mut ingester = PlacesIngester::new();
    ingester.ingest_all(&mut places, &events).unwrap();
    (dir, browser, places, events)
}

#[test]
fn unique_urls_agree() {
    let (_dir, browser, places, events) = build(51, 3, "urls");
    // URLs Places knows = URLs navigated or downloaded-from or embedded.
    let mut expected: HashSet<String> = HashSet::new();
    for e in &events {
        match &e.kind {
            EventKind::Navigate { url, .. } | EventKind::EmbedLoad { url, .. } => {
                expected.insert(url.clone());
            }
            _ => {}
        }
    }
    assert_eq!(places.places().len(), expected.len());
    // The provenance store's Page objects cover the same URL set for
    // top-level navigations (embeds become visits without page objects,
    // so Pages ⊆ Places URLs).
    let graph = browser.graph();
    for page in graph.nodes_of_kind(NodeKind::Page) {
        let url = graph.node(page).unwrap().key().to_owned();
        assert!(
            expected.contains(&url),
            "page object {url} unknown to Places"
        );
    }
}

#[test]
fn visit_counts_agree_for_top_level_navigations() {
    let (_dir, browser, places, events) = build(52, 3, "counts");
    // Count navigations per URL from the raw stream (downloads also bump
    // Places' visit table, so compare against navigations only).
    let mut nav_counts: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    for e in &events {
        if let EventKind::Navigate { url, .. } = &e.kind {
            *nav_counts.entry(url.as_str()).or_insert(0) += 1;
        }
    }
    for (url, &count) in nav_counts.iter().take(200) {
        assert_eq!(
            browser.visit_count(url),
            count,
            "provenance visit versions for {url}"
        );
        let place = places.history_search(url);
        let _ = place; // substring search is lossy; the count check above
                       // is the real assertion
    }
}

#[test]
fn provenance_store_records_strictly_more_objects() {
    let (_dir, browser, places, _events) = build(53, 3, "more");
    let graph = browser.graph();
    // Places rows ≈ places + visits + bookmarks + inputs + annos.
    let places_rows = places.places().len()
        + places.visits().len()
        + places.bookmarks().len()
        + places.input_history().len()
        + places.annos().len();
    let prov_objects = graph.node_count() + graph.edge_count();
    assert!(
        prov_objects > places_rows,
        "provenance ({prov_objects}) must exceed Places ({places_rows})"
    );
    // The specific §3.3 gaps: Places has no search terms or form entries.
    assert!(graph.nodes_of_kind(NodeKind::SearchTerm).count() > 0);
    assert!(graph.nodes_of_kind(NodeKind::FormEntry).count() > 0);
}

#[test]
fn typed_navigations_connected_only_in_the_provenance_store() {
    let (_dir, browser, places, events) = build(54, 3, "typed");
    // Find a typed navigation that had a previous page in the same tab.
    let mut last_url: std::collections::HashMap<u32, String> = std::collections::HashMap::new();
    let mut witnessed = false;
    for e in &events {
        if let EventKind::Navigate {
            tab, url, cause, ..
        } = &e.kind
        {
            if matches!(cause, NavigationCause::Typed) && last_url.contains_key(&tab.0) {
                witnessed = true;
            }
            last_url.insert(tab.0, url.clone());
        }
    }
    assert!(witnessed, "the stream contains typed navs with context");
    // Provenance store has typed-location edges; Places' typed visits
    // have from_visit = 0.
    let graph = browser.graph();
    let typed_edges = graph
        .edges()
        .filter(|(_, e)| e.kind() == bp_graph::EdgeKind::TypedLocation)
        .count();
    assert!(typed_edges > 0, "§3.2 relationships captured");
    let typed_with_referrer = places
        .visits()
        .iter()
        .filter(|(_, row)| {
            row[3].as_int() == Some(bp_places::Transition::Typed as i64)
                && row[0].as_int() != Some(0)
        })
        .count();
    assert_eq!(typed_with_referrer, 0, "Places drops the relationship");
}

#[test]
fn storage_overhead_is_same_order_as_baseline() {
    let (_dir, mut browser, places, _events) = build(55, 5, "overhead");
    browser.snapshot().unwrap();
    let prov = browser.size_report().total_bytes() as f64;
    let base = places.encoded_size() as f64;
    let ratio = prov / base;
    // The paper reports 1.395× the relational baseline. The columnar
    // snapshot (delta timestamps, front-coded URLs, factorized edges) can
    // land *below* 1× despite recording strictly more objects — the bound
    // that matters is staying within the paper's order of magnitude, and
    // not being so small that data must have been dropped.
    assert!(
        ratio > 0.3,
        "implausibly small store suggests lost history: {ratio:.3}x"
    );
    assert!(
        ratio < 4.0,
        "same order of magnitude as the baseline (paper: 1.395x): {ratio:.3}x"
    );
}
